//! Generality: DeepThermo's machinery is not BCC/quaternary-specific.
//! Sample an FCC ternary alloy end to end and check its physics.

use deepthermo::hamiltonian::{EnergyModel, PairHamiltonian, KB_EV_PER_K};
use deepthermo::lattice::{Composition, Configuration, Species, Structure, Supercell};
use deepthermo::metropolis::MetropolisSampler;
use deepthermo::proposal::{LocalSwap, ProposalContext};
use deepthermo::rewl::{run_rewl, KernelSpec, RewlConfig};
use deepthermo::thermo::canonical_curve;
use deepthermo::wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An FCC ternary with an L1₂-flavored ordering tendency.
fn fcc_ternary() -> (
    Supercell,
    deepthermo::lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::fcc(), 2); // 32 sites
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(3, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(
        3,
        2,
        &[
            (0, 0, 1, -0.030),
            (0, 0, 2, -0.012),
            (0, 1, 2, -0.020),
            (1, 0, 1, 0.010),
            (1, 1, 2, 0.006),
        ],
    );
    (cell, nt, comp, h)
}

#[test]
fn fcc_ternary_dos_reweighting_matches_metropolis() {
    let (_, nt, comp, h) = fcc_ternary();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&h, &nt, &comp, 40, 0.02, &mut rng);

    let cfg = RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 48,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-5,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 300_000,
        seed: 9,
        kernel: KernelSpec::LocalSwap,
        ..RewlConfig::default()
    };
    let out = run_rewl(&h, &nt, &comp, range, &cfg).unwrap();
    assert!(out.converged, "FCC REWL did not converge");

    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));
    let (mut energies, mut ln_g) = (Vec::new(), Vec::new());
    for (b, &vis) in out.mask.iter().enumerate() {
        if vis {
            energies.push(dos.grid().center(b));
            ln_g.push(dos.ln_g_bin(b));
        }
    }

    for &t in &[900.0f64, 1800.0] {
        let wl_u = canonical_curve(&energies, &ln_g, &[t], KB_EV_PER_K)[0].u;
        let mut rng2 = ChaCha8Rng::seed_from_u64(t as u64);
        let c0 = Configuration::random(&comp, &mut rng2);
        let mut sampler = MetropolisSampler::new(t, c0, &h, &nt, Box::new(LocalSwap::new()), 3);
        let stats = sampler.run(&h, &nt, &ctx, 400, 3000, 3, |_, _| {});
        assert!(
            (wl_u - stats.mean_energy).abs() < 0.08,
            "T={t}: WL {wl_u} vs Metropolis {}",
            stats.mean_energy
        );
    }
}

#[test]
fn fcc_first_shell_coordination_feeds_the_hamiltonian() {
    let (_, nt, comp, h) = fcc_ternary();
    assert_eq!(nt.coordination(0), 12, "FCC z1");
    assert_eq!(nt.coordination(1), 6, "FCC z2");
    // Mean random-alloy energy must match the analytic value.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let mut mean = 0.0;
    let n = 200;
    for _ in 0..n {
        mean += h.total_energy(&Configuration::random(&comp, &mut rng), &nt);
    }
    mean /= n as f64;
    let analytic = h.random_alloy_energy_per_site(&nt, &comp.fractions()) * 32.0;
    assert!((mean - analytic).abs() < 0.3, "{mean} vs {analytic}");
    // Unlike pairs are favored in shell 1: ordered checkerboard-like
    // arrangements must undercut the random mean. Use the strongest pair.
    assert!(h.v(0, Species(0), Species(1)) < h.v(0, Species(0), Species(0)));
}
