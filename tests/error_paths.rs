//! Every [`DeepThermoError`] variant a user can hit must be reachable
//! through the public API — and arrive as a typed error, not a panic.

use deepthermo::hpc::FaultPlan;
use deepthermo::surrogate::{SerializeError, SurrogateModel};
use deepthermo::{ConfigError, DeepThermo, DeepThermoConfig, DeepThermoError};

#[test]
fn inconsistent_config_is_a_typed_error() {
    let mut cfg = DeepThermoConfig::quick_demo();
    cfg.rewl.num_windows = 0;
    match DeepThermo::nbmotaw(cfg) {
        Err(DeepThermoError::Config(ConfigError::NoWindows)) => {}
        Ok(_) => panic!("expected Config(NoWindows), got Ok"),
        Err(other) => panic!("expected Config(NoWindows), got {other:?}"),
    }

    let mut cfg = DeepThermoConfig::quick_demo();
    cfg.rewl.overlap = 2.0;
    assert!(matches!(
        DeepThermo::nbmotaw(cfg),
        Err(DeepThermoError::Config(ConfigError::BadOverlap(_)))
    ));
}

#[test]
fn mismatched_model_is_a_typed_error() {
    // A binary Hamiltonian against the quaternary NbMoTaW material.
    let h = deepthermo::hamiltonian::PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    match DeepThermo::with_model(DeepThermoConfig::quick_demo(), h) {
        Err(DeepThermoError::Config(ConfigError::SpeciesMismatch {
            model: 2,
            material: 4,
        })) => {}
        Ok(_) => panic!("expected SpeciesMismatch, got Ok"),
        Err(other) => panic!("expected SpeciesMismatch, got {other:?}"),
    }
}

#[test]
fn unusable_checkpoint_dir_is_an_io_error() {
    // A plain file where the checkpoint directory should go.
    let blocker = std::env::temp_dir().join(format!("dt-error-paths-{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").unwrap();
    let runner = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo()).unwrap();
    match runner.run_resumable(blocker.join("snapshots")) {
        Err(DeepThermoError::Io { path, message }) => {
            assert!(path.ends_with("snapshots"));
            assert!(!message.is_empty());
        }
        other => panic!("expected Io, got {other:?}"),
    }
    std::fs::remove_file(&blocker).unwrap();
}

#[test]
fn corrupt_model_text_converts_into_the_workspace_error() {
    let err = SurrogateModel::load("dtsur v1\nnot a real body").unwrap_err();
    let wrapped = DeepThermoError::from(err);
    assert!(matches!(wrapped, DeepThermoError::Model(_)));
    assert!(wrapped.to_string().contains("model"));
    // The source chain bottoms out in the typed serializer error.
    let source = std::error::Error::source(&wrapped).expect("wrapped errors keep their source");
    assert!(source.downcast_ref::<SerializeError>().is_some());
}

#[test]
fn root_rank_death_surfaces_as_a_sampling_error() {
    let mut cfg = DeepThermoConfig::quick_demo();
    cfg.rewl.faults = FaultPlan::none().kill_at_round(0, 2);
    let runner = DeepThermo::nbmotaw(cfg).unwrap();
    match runner.run() {
        Err(DeepThermoError::Sampling(e)) => {
            assert!(e.to_string().contains("rank 0"), "cause: {e}");
        }
        other => panic!("expected Sampling, got {other:?}"),
    }
}
