//! Reproducibility guarantees: same seed ⇒ identical results, across the
//! whole pipeline, including thread-parallel runs.

use deepthermo::{DeepThermo, DeepThermoConfig};

#[test]
fn pipeline_is_bitwise_deterministic() {
    let run = |seed: u64| {
        let report = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo().with_seed(seed))
            .unwrap()
            .run()
            .unwrap();
        (
            report.dos.ln_g().to_vec(),
            report.mask.clone(),
            report.transition_temperature,
            report.total_moves,
            report.sweeps,
        )
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a.0, b.0, "ln g must be bit-identical for equal seeds");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
    assert_eq!(a.4, b.4);

    let c = run(124);
    assert_ne!(a.0, c.0, "different seeds must explore differently");
}

#[test]
fn deep_kernel_pipeline_is_deterministic_too() {
    use deepthermo::proposal::DeepProposalConfig;
    use deepthermo::rewl::DeepSpec;
    let spec = DeepSpec {
        proposal: DeepProposalConfig {
            k: 6,
            hidden: vec![16],
        },
        deep_weight: 0.2,
        train_every_sweeps: 200,
        epochs_per_round: 1,
        buffer_capacity: 32,
        sample_every_sweeps: 10,
        sync_weights: true,
        ..DeepSpec::default()
    };
    let run = |seed: u64| {
        let mut cfg = DeepThermoConfig::quick_demo()
            .with_deep(spec.clone())
            .with_seed(seed);
        cfg.rewl.max_sweeps = 20_000;
        cfg.rewl.wl.ln_f_final = 1e-2;
        let report = DeepThermo::nbmotaw(cfg).unwrap().run().unwrap();
        (report.dos.ln_g().to_vec(), report.total_moves)
    };
    let a = run(55);
    let b = run(55);
    assert_eq!(a, b, "deep pipeline must be deterministic (incl. training)");
}
