//! The material layer end to end: a second alloy defined as *data* (a
//! `dtmat v1` file, not code) flows through surrogate training,
//! deep-proposal REWL, DOS convergence, artifact export, and serving —
//! side by side with NbMoTaW in one registry.

use deepthermo::hamiltonian::Material;
use deepthermo::lattice::Supercell;
use deepthermo::proposal::DeepProposalConfig;
use deepthermo::rewl::{DeepSpec, KernelSpec};
use deepthermo::surrogate::{
    Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel, TrainingOptions,
};
use deepthermo::{DeepThermo, DeepThermoConfig, MaterialSpec};
use dt_serve::http::Request;
use dt_serve::{AppState, ArtifactRegistry};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A non-equiatomic CrCoNi-flavored FCC ordering alloy with 4 EPI
/// shells, written the way a user would ship it: as a text file.
const CR40CO30NI30: &str = "\
# Cr-rich CrCoNi variant, defined as data rather than code.
dtmat v1
name cr40co30ni30
display Cr40Co30Ni30
structure fcc
shells 4
species Cr Co Ni
ratios 4 3 3
epi 0 Cr Cr 0.03
epi 0 Cr Co -0.024
epi 0 Cr Ni -0.028
epi 0 Co Co 0.004
epi 0 Co Ni -0.002
epi 0 Ni Ni 0.002
epi 1 Cr Cr -0.012
epi 1 Cr Co 0.008
epi 1 Cr Ni 0.01
epi 2 Cr Co -0.003
epi 2 Cr Ni -0.002
epi 3 Cr Cr 0.002
epi 3 Co Ni -0.002
end
";

fn material_from_disk(dir: &std::path::Path) -> Material {
    let path = dir.join("cr40co30ni30.dtmat");
    std::fs::write(&path, CR40CO30NI30).unwrap();
    Material::resolve(path.to_str().unwrap()).unwrap()
}

#[test]
fn second_alloy_definition_is_data_not_code() {
    let dir = tempdir("dtmat-def");
    let mat = material_from_disk(&dir);
    assert_eq!(mat.key(), "cr40co30ni30");
    assert_eq!(mat.structure().name(), "fcc");
    assert_eq!(mat.num_shells(), 4);
    assert_eq!(mat.num_species(), 3);
    assert!(!mat.is_equiatomic());
    assert_eq!(mat.composition_summary(), "40/30/30");

    // The 40/30/30 ratios apportion exactly over the supercell.
    let comp = mat.composition(108).unwrap();
    assert_eq!(comp.counts().iter().sum::<usize>(), 108);
    assert!(comp.counts()[0] > comp.counts()[1]);
    assert!(comp.counts()[1] >= comp.counts()[2]);

    // Round trip: serialize → parse gives the same material (EPIs and
    // all), so the on-disk format loses nothing.
    let back = Material::parse(&mat.serialize()).unwrap();
    assert_eq!(back, mat);
}

#[test]
fn second_alloy_trains_samples_and_serves_alongside_nbmotaw() {
    let dir = tempdir("alloy-agnostic");
    let mat = material_from_disk(&dir);

    // --- Surrogate training on the second alloy -----------------------
    // The pair-correlation descriptor spans the 4-shell EPI exactly, so
    // a trained surrogate must recover the energy surface accurately.
    let cell = Supercell::cubic(mat.structure().clone(), 2);
    let nt = cell.try_neighbor_table(mat.num_shells()).unwrap();
    let comp = mat.composition(cell.num_sites()).unwrap();
    let descriptor = PairCorrelationDescriptor {
        num_species: mat.num_species(),
        num_shells: mat.num_shells(),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let data = Dataset::generate(
        mat.hamiltonian(),
        &nt,
        &comp,
        descriptor,
        240,
        SamplingStrategy::Annealed,
        &mut rng,
    );
    let (train, test) = data.split(0.8);
    let opts = TrainingOptions {
        hidden: vec![32],
        epochs: 250,
        ..TrainingOptions::default()
    };
    let (_, report) = SurrogateModel::train(descriptor, &train, &test, &opts, &mut rng);
    assert!(report.test_r2 > 0.95, "surrogate R² = {}", report.test_r2);

    // --- Deep-proposal REWL to DOS convergence -------------------------
    let mut cfg = DeepThermoConfig::quick_demo().with_seed(23);
    cfg.material = MaterialSpec::new(mat.clone(), 2);
    cfg.rewl.num_bins = 32;
    cfg.rewl.kernel = KernelSpec::Deep(Box::new(DeepSpec {
        proposal: DeepProposalConfig {
            k: 6,
            hidden: vec![16],
        },
        deep_weight: 0.2,
        ..DeepSpec::default()
    }));
    let runner = DeepThermo::from_material(cfg).unwrap();
    let run = runner.run().unwrap();
    assert!(run.converged, "CrCoNi-flavored REWL did not converge");

    // Physics sanity: hot entropy per atom approaches (from below) the
    // ideal-mixing bound of the *non-equiatomic* composition.
    let n = comp.num_sites() as f64;
    let s_max = comp.ln_num_configurations() / n;
    let s_hot = run.thermo.last().unwrap().s / n;
    assert!(s_hot < s_max + 0.05, "S/atom hot = {s_hot} vs max {s_max}");
    assert!(s_hot > 0.6 * s_max, "S/atom hot = {s_hot} vs max {s_max}");

    // --- Export + serve both materials from one registry ---------------
    let registry_dir = dir.join("registry");
    runner.export_artifact(&run, &registry_dir).unwrap();
    dt_serve::fixture::fixture_artifact("nbmotaw")
        .save(&registry_dir)
        .unwrap();

    let registry = ArtifactRegistry::open(&registry_dir).unwrap();
    assert_eq!(registry.len(), 2);
    let state = AppState::new(registry, 16).unwrap();

    // /v1/artifacts reports each artifact's material identity.
    let listing = state.handle(&get("/v1/artifacts"));
    assert_eq!(listing.status, 200, "{}", listing.body);
    assert!(listing.body.contains("\"material_key\":\"cr40co30ni30\""));
    assert!(listing.body.contains("\"material_key\":\"nbmotaw\""));
    assert!(listing.body.contains("\"material\":\"Cr40Co30Ni30\""));

    // /v1/thermo answers for both materials.
    for id in ["cr40co30ni30-l2-seed23", "fixture-nbmotaw"] {
        let body = format!("{{\"artifact\":\"{id}\",\"temperatures\":[600,1200,2400]}}");
        let resp = state.handle(&post("/v1/thermo", &body));
        assert_eq!(resp.status, 200, "{id}: {}", resp.body);
        assert!(resp.body.contains("\"u\":["), "{id}: {}", resp.body);
    }
}

fn get(target: &str) -> Request {
    Request {
        method: "GET".into(),
        target: target.into(),
        http11: true,
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn post(target: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        target: target.into(),
        http11: true,
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}
