//! Cross-crate integration: the full DeepThermo pipeline produces the same
//! physics whether it samples with classical local swaps or with deep
//! global proposals, and both agree with exact enumeration where that is
//! possible.

use deepthermo::hamiltonian::{exact::ExactDos, PairHamiltonian, KB_EV_PER_K};
use deepthermo::lattice::{Composition, Structure, Supercell};
use deepthermo::rewl::{run_rewl, DeepSpec, KernelSpec, RewlConfig};
use deepthermo::thermo::canonical_curve;
use deepthermo::wanglandau::{LnfSchedule, WlParams};
use deepthermo::{DeepThermo, DeepThermoConfig};

/// Binary enumerable reference system (BCC L=2, 16 sites).
fn binary_system() -> (
    Supercell,
    deepthermo::lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

fn rewl_cfg(kernel: KernelSpec, seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 5e-6,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 300_000,
        seed,
        kernel,
        ..RewlConfig::default()
    }
}

#[test]
fn canonical_curve_from_sampled_dos_matches_exact() {
    let (_, nt, comp, h) = binary_system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    let out = run_rewl(
        &h,
        &nt,
        &comp,
        (-0.645, -0.155),
        &rewl_cfg(KernelSpec::LocalSwap, 21),
    )
    .unwrap();
    assert!(out.converged);
    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));

    let mut energies = Vec::new();
    let mut ln_g = Vec::new();
    for (b, &vis) in out.mask.iter().enumerate() {
        if vis {
            energies.push(dos.grid().center(b));
            ln_g.push(dos.ln_g_bin(b));
        }
    }
    let temps = [400.0, 800.0, 1600.0, 3200.0];
    let curve = canonical_curve(&energies, &ln_g, &temps, KB_EV_PER_K);
    for (p, &t) in curve.iter().zip(&temps) {
        let beta = 1.0 / (KB_EV_PER_K * t);
        let exact_u = exact.mean_energy(beta);
        assert!(
            (p.u - exact_u).abs() < 0.01,
            "T={t}: sampled U {} vs exact {exact_u}",
            p.u
        );
        let exact_cv = exact.heat_capacity(beta);
        assert!(
            (p.cv - exact_cv).abs() < 0.2 * exact_cv.max(0.5),
            "T={t}: sampled Cv {} vs exact {exact_cv}",
            p.cv
        );
    }
}

#[test]
fn deep_and_local_kernels_sample_the_same_dos() {
    let (_, nt, comp, h) = binary_system();
    let local = run_rewl(
        &h,
        &nt,
        &comp,
        (-0.645, -0.155),
        &rewl_cfg(KernelSpec::LocalSwap, 31),
    )
    .unwrap();
    let deep_spec = DeepSpec {
        proposal: deepthermo::proposal::DeepProposalConfig {
            k: 4,
            hidden: vec![12],
        },
        deep_weight: 0.3,
        ..DeepSpec::default()
    };
    let deep = run_rewl(
        &h,
        &nt,
        &comp,
        (-0.645, -0.155),
        &rewl_cfg(KernelSpec::Deep(Box::new(deep_spec)), 32),
    )
    .unwrap();
    assert!(local.converged && deep.converged);

    let mut dl = local.dos.clone();
    dl.normalize_total(comp.ln_num_configurations(), Some(&local.mask));
    let mut dd = deep.dos.clone();
    dd.normalize_total(comp.ln_num_configurations(), Some(&deep.mask));
    let mut compared = 0;
    for b in 0..local.mask.len() {
        if local.mask[b] && deep.mask[b] {
            let diff = (dl.ln_g_bin(b) - dd.ln_g_bin(b)).abs();
            assert!(diff < 0.6, "bin {b}: |Δ ln g| = {diff}");
            compared += 1;
        }
    }
    // The L=2 binary spectrum has exactly 5 energy levels
    // (-0.64, -0.50, -0.40, -0.34, -0.32), so 5 co-visited bins is full
    // coverage.
    assert!(compared >= 5, "only {compared} co-visited bins");
}

#[test]
fn full_pipeline_physics_is_sane() {
    let report = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo().with_seed(77))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.converged);

    // Entropy per atom must approach ln 4 from below at high T and stay
    // far below it at low T (ordered phase).
    let n = 54.0;
    let s_cold = report.thermo.first().unwrap().s / n;
    let s_hot = report.thermo.last().unwrap().s / n;
    assert!(s_hot > s_cold);
    assert!(s_hot < 4.0f64.ln() + 0.05, "S/atom hot = {s_hot}");
    assert!(s_hot > 0.8 * 4.0f64.ln(), "S/atom hot = {s_hot}");

    // Free energy decreases with T; U increases.
    for w in report.thermo.windows(2) {
        assert!(w[1].f <= w[0].f + 1e-9, "F must not increase with T");
        assert!(w[1].u >= w[0].u - 0.05, "U must not decrease notably");
    }

    // The strongest EPI (Mo-Ta) must give the most negative low-T SRO
    // among unlike pairs on opposite sublattices.
    let low_t_alpha = |label: &str| {
        report
            .sro_curves
            .iter()
            .find(|c| c.label == label)
            .expect("curve")
            .points[0]
            .1
    };
    assert!(low_t_alpha("Mo-Ta") < -0.5);
    assert!(low_t_alpha("Mo-Ta") <= low_t_alpha("Nb-Ta") + 1e-9);
}

#[test]
fn window_exchange_statistics_are_consistent() {
    let (_, nt, comp, h) = binary_system();
    let out = run_rewl(
        &h,
        &nt,
        &comp,
        (-0.645, -0.155),
        &rewl_cfg(KernelSpec::LocalSwap, 41),
    )
    .unwrap();
    // Only initiators (here: window 0) count attempts; accepted ≤ attempts.
    let w0 = &out.windows[0];
    assert!(w0.exchange_attempts > 0);
    assert!(w0.exchange_accepted <= w0.exchange_attempts);
    let w1 = &out.windows[1];
    assert_eq!(w1.exchange_attempts, 0);
    assert_eq!(w1.exchange_accepted, 0);
}
