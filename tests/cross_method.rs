//! Cross-method validation: three independent estimators of the same
//! canonical physics must agree — Wang–Landau reweighting, direct
//! Metropolis, and parallel tempering; plus surrogate-driven sampling
//! against reference-driven sampling.

use deepthermo::hamiltonian::{nbmotaw, EnergyModel, PairHamiltonian, KB_EV_PER_K};
use deepthermo::lattice::{Composition, Configuration, Structure, Supercell};
use deepthermo::metropolis::{MetropolisSampler, ParallelTempering};
use deepthermo::proposal::{LocalSwap, ProposalContext};
use deepthermo::rewl::{run_rewl, KernelSpec, RewlConfig};
use deepthermo::surrogate::{
    Dataset, PairCorrelationDescriptor, SamplingStrategy, SurrogateModel, TrainingOptions,
};
use deepthermo::thermo::canonical_curve;
use deepthermo::wanglandau::{explore_energy_range, LnfSchedule, WlParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn nbmotaw_small() -> (
    Supercell,
    deepthermo::lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 3);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
    (cell, nt, comp, nbmotaw())
}

#[test]
fn wang_landau_metropolis_and_tempering_agree() {
    let (_, nt, comp, h) = nbmotaw_small();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let range = explore_energy_range(&h, &nt, &comp, 40, 0.02, &mut rng);

    // 1. Wang-Landau DOS + reweighting.
    let cfg = RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 64,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-5,
            schedule: LnfSchedule::OneOverT {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 400_000,
        seed: 5,
        kernel: KernelSpec::LocalSwap,
        ..RewlConfig::default()
    };
    let out = run_rewl(&h, &nt, &comp, range, &cfg).unwrap();
    assert!(out.converged);
    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));
    let (mut energies, mut ln_g) = (Vec::new(), Vec::new());
    for (b, &vis) in out.mask.iter().enumerate() {
        if vis {
            energies.push(dos.grid().center(b));
            ln_g.push(dos.ln_g_bin(b));
        }
    }

    // Temperatures safely above the ~1100 K transition, where local-swap
    // Metropolis mixes honestly (at 1200 K, critical slowing-down leaves
    // every estimator seed-biased at the 0.1 eV level).
    let temps = [1400.0, 2000.0];
    let wl_curve = canonical_curve(&energies, &ln_g, &temps, KB_EV_PER_K);

    // 2. Direct Metropolis at each temperature.
    for (point, &t) in wl_curve.iter().zip(&temps) {
        let mut rng2 = ChaCha8Rng::seed_from_u64(100 + t as u64);
        let c0 = Configuration::random(&comp, &mut rng2);
        let mut sampler =
            MetropolisSampler::new(t, c0, &h, &nt, Box::new(LocalSwap::new()), t as u64);
        let stats = sampler.run(&h, &nt, &ctx, 400, 3000, 3, |_, _| {});
        assert!(
            (point.u - stats.mean_energy).abs() < 0.08,
            "T={t}: WL U {} vs Metropolis {}",
            point.u,
            stats.mean_energy
        );
    }

    // 3. Parallel tempering across the same temperatures.
    let ladder = [1400.0, 1600.0, 2000.0];
    let mut init_rng = ChaCha8Rng::seed_from_u64(9);
    let mut pt = ParallelTempering::new(&ladder, &h, &nt, &comp, 13, &mut init_rng);
    let report = pt.run(&h, &nt, &ctx, 1600, 2, 1200);
    let pt_curve = canonical_curve(&energies, &ln_g, &ladder, KB_EV_PER_K);
    for (i, &t) in ladder.iter().enumerate() {
        assert!(
            (report.mean_energy[i] - pt_curve[i].u).abs() < 0.08,
            "T={t}: PT {} vs WL {}",
            report.mean_energy[i],
            pt_curve[i].u
        );
    }
}

#[test]
fn surrogate_driven_sampling_matches_reference_driven() {
    let (_, nt, comp, h) = nbmotaw_small();
    let descriptor = PairCorrelationDescriptor {
        num_species: 4,
        num_shells: 2,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let ds = Dataset::generate(
        &h,
        &nt,
        &comp,
        descriptor,
        320,
        SamplingStrategy::Annealed,
        &mut rng,
    );
    let (train, test) = ds.split(0.8);
    let (surrogate, report) = SurrogateModel::train(
        descriptor,
        &train,
        &test,
        &TrainingOptions::default(),
        &mut rng,
    );
    assert!(report.test_mae < 0.005, "MAE {}", report.test_mae);

    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    for &t in &[800.0f64, 1600.0] {
        let c0 = Configuration::random(&comp, &mut rng);
        let mut on_ref =
            MetropolisSampler::new(t, c0.clone(), &h, &nt, Box::new(LocalSwap::new()), 7);
        let ref_stats = on_ref.run(&h, &nt, &ctx, 300, 1500, 3, |_, _| {});
        let mut on_sur =
            MetropolisSampler::new(t, c0, &surrogate, &nt, Box::new(LocalSwap::new()), 7);
        let sur_stats = on_sur.run(&surrogate, &nt, &ctx, 300, 1500, 3, |_, _| {});
        // Tolerance: the surrogate's ~3 meV/site error is amplified by
        // Boltzmann reweighting at low T; 0.2 eV over 54 sites ≈ 3.7
        // meV/site, consistent with the trained accuracy.
        assert!(
            (ref_stats.mean_energy - sur_stats.mean_energy).abs() < 0.2,
            "T={t}: ref {} vs surrogate {}",
            ref_stats.mean_energy,
            sur_stats.mean_energy
        );
        // The surrogate chain's states must be genuinely equilibrated
        // under the *reference* model too.
        let replay = h.total_energy(on_sur.config(), &nt);
        assert!(
            (replay - ref_stats.mean_energy).abs() < 0.5,
            "T={t}: replayed {replay} vs ref mean {}",
            ref_stats.mean_energy
        );
    }
}
