//! Property tests of the flat-histogram bookkeeping.

use dt_wanglandau::{DosEstimate, EnergyGrid, VisitHistogram};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every in-range energy maps to exactly one bin whose center is
    /// within half a bin width.
    #[test]
    fn binning_is_total_and_centered(
        e_min in -100.0f64..100.0,
        width in 0.001f64..50.0,
        bins in 1usize..200,
        frac in 0.0f64..1.0,
    ) {
        let e_max = e_min + width;
        let grid = EnergyGrid::new(e_min, e_max, bins);
        let e = e_min + frac * width;
        let bin = grid.bin(e).expect("in-range energy must bin");
        prop_assert!(bin < bins);
        prop_assert!((grid.center(bin) - e).abs() <= grid.bin_width() / 2.0 + 1e-12);
        // Outside is outside.
        prop_assert!(grid.bin(e_min - width * 0.01 - 1e-9).is_none());
        prop_assert!(grid.bin(e_max + width * 0.01 + 1e-9).is_none());
    }

    /// Grid slices agree with the parent grid bin-for-bin.
    #[test]
    fn slices_are_consistent(bins in 4usize..100, lo_frac in 0.0f64..0.5, len_frac in 0.1f64..0.5) {
        let grid = EnergyGrid::new(0.0, 1.0, bins);
        let lo = ((bins as f64 * lo_frac) as usize).min(bins - 2);
        let hi = (lo + 2 + (bins as f64 * len_frac) as usize).min(bins);
        let slice = grid.slice(lo, hi);
        for b in 0..slice.num_bins() {
            prop_assert!((slice.center(b) - grid.center(lo + b)).abs() < 1e-12);
        }
        // A point in the slice bins identically (offset by lo).
        let e = slice.center(slice.num_bins() / 2);
        prop_assert_eq!(slice.bin(e).unwrap() + lo, grid.bin(e).unwrap());
    }

    /// Flatness is scale-free: multiplying all visit counts by a constant
    /// leaves the ratio unchanged; an exactly uniform histogram is flat at
    /// any threshold < 1.
    #[test]
    fn flatness_invariances(
        visits in proptest::collection::vec(1u64..50, 2..20),
        scale in 2u64..10,
    ) {
        let mut h1 = VisitHistogram::new(visits.len());
        let mut h2 = VisitHistogram::new(visits.len());
        for (bin, &v) in visits.iter().enumerate() {
            for _ in 0..v {
                h1.record(bin);
            }
            for _ in 0..v * scale {
                h2.record(bin);
            }
        }
        prop_assert!((h1.flatness() - h2.flatness()).abs() < 1e-12);

        let mut uniform = VisitHistogram::new(visits.len());
        for bin in 0..visits.len() {
            for _ in 0..7 {
                uniform.record(bin);
            }
        }
        prop_assert!(uniform.is_flat(0.999));
        prop_assert!((uniform.flatness() - 1.0).abs() < 1e-12);
    }

    /// DOS normalization: `normalize_total` imposes the requested total
    /// and `normalize_min` zeroes the minimum, for any ln g values.
    #[test]
    fn dos_normalizations(
        ln_g in proptest::collection::vec(-50.0f64..50.0, 2..30),
        ln_total in -10.0f64..20.0,
    ) {
        let grid = EnergyGrid::new(0.0, 1.0, ln_g.len());
        let mut dos = DosEstimate::from_parts(grid.clone(), ln_g.clone());
        dos.normalize_total(ln_total, None);
        let total: f64 = dos.ln_g().iter().map(|&v| v.exp()).sum();
        prop_assert!((total.ln() - ln_total).abs() < 1e-9);

        let mut dos2 = DosEstimate::from_parts(grid, ln_g.clone());
        dos2.normalize_min(None);
        let min = dos2.ln_g().iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(min.abs() < 1e-12);
        // Shape (differences) preserved by both normalizations.
        for w in 0..ln_g.len() - 1 {
            let orig = ln_g[w + 1] - ln_g[w];
            prop_assert!((dos.ln_g()[w + 1] - dos.ln_g()[w] - orig).abs() < 1e-9);
            prop_assert!((dos2.ln_g()[w + 1] - dos2.ln_g()[w] - orig).abs() < 1e-9);
        }
    }
}
