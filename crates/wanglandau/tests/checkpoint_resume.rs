//! Functional checkpoint/restore: a run interrupted halfway and resumed
//! from its checkpoint must still converge to the exact DOS.

use dt_hamiltonian::{exact::ExactDos, PairHamiltonian};
use dt_lattice::{Composition, Configuration, Structure, Supercell};
use dt_proposal::{LocalSwap, ProposalContext};
use dt_wanglandau::{EnergyGrid, LnfSchedule, WalkerCheckpoint, WlParams, WlWalker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn interrupted_run_resumes_and_converges() {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let params = WlParams {
        ln_f_initial: 1.0,
        ln_f_final: 5e-6,
        schedule: LnfSchedule::Flatness {
            flatness: 0.8,
            reduction: 0.5,
        },
        sweeps_per_check: 20,
    };

    // Phase 1: run partway.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let grid = EnergyGrid::with_bin_width(-0.645, -0.155, 0.01);
    let mut walker = WlWalker::new(
        grid,
        params.clone(),
        Configuration::random(&comp, &mut rng),
        &h,
        &nt,
        Box::new(LocalSwap::new()),
        3,
    );
    assert!(walker.drive_into_window(&h, &nt, 500));
    let partial = walker.run(&h, &nt, &ctx, 200);
    assert!(!partial.converged, "phase 1 should be interrupted");

    // Serialize / deserialize ("node failure").
    let blob = walker.checkpoint().encode();
    drop(walker);
    let cp = WalkerCheckpoint::decode(&blob).unwrap();

    // Phase 2: resume with a fresh kernel and RNG stream.
    let mut resumed = WlWalker::from_checkpoint(&cp, params, Box::new(LocalSwap::new()), 999);
    assert_eq!(resumed.total_moves(), partial.moves);
    assert!((resumed.ln_f() - partial.ln_f).abs() < 1e-15);
    let progress = resumed.run(&h, &nt, &ctx, 400_000);
    assert!(
        progress.converged,
        "resumed run must converge: {progress:?}"
    );

    // Accuracy against exact enumeration.
    let mask = resumed.visited_mask();
    let mut dos = resumed.dos().clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&mask));
    for (&e, &count) in exact.energies().iter().zip(exact.counts()) {
        let bin = dos.grid().bin(e).expect("level in grid");
        assert!(mask[bin], "level {e} unvisited after resume");
        let err = (dos.ln_g_bin(bin) - (count as f64).ln()).abs();
        assert!(err < 0.4, "level {e}: |Δ ln g| = {err}");
    }
}

#[test]
fn checkpoint_of_running_walker_round_trips() {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut walker = WlWalker::new(
        EnergyGrid::new(-0.645, -0.155, 30),
        WlParams::fast(),
        Configuration::random(&comp, &mut rng),
        &h,
        &nt,
        Box::new(LocalSwap::new()),
        7,
    );
    assert!(walker.drive_into_window(&h, &nt, 500));
    for _ in 0..50 {
        walker.sweep(&h, &nt, &ctx);
    }
    let cp = walker.checkpoint();
    let back = WalkerCheckpoint::decode(&cp.encode()).unwrap();
    assert_eq!(back, cp);
    // The restored DOS and configuration must match exactly.
    assert_eq!(back.dos().ln_g(), walker.dos().ln_g());
    assert_eq!(&back.configuration(), walker.config());
    assert_eq!(back.energy, walker.energy());
}
