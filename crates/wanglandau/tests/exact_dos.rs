//! End-to-end correctness: Wang–Landau must reproduce the exact density of
//! states of an enumerable system — with the classical local-swap kernel
//! AND with the deep autoregressive kernel (whose asymmetric proposal
//! probabilities exercise the full Metropolis–Hastings correction).

use dt_hamiltonian::{exact::ExactDos, PairHamiltonian};
use dt_lattice::{Composition, Configuration, Structure, Supercell};
use dt_proposal::{
    DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel, ProposalMix,
};
use dt_wanglandau::{EnergyGrid, LnfSchedule, WlParams, WlWalker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Binary unlike-preferring model on BCC L=2: 12,870 configurations,
/// enumerable exactly.
fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

/// Compare a converged WL estimate against exact enumeration.
///
/// Returns the max abs error of `ln g` over bins containing exact levels,
/// after imposing the exact total `ln Σ g = ln 12870`.
fn run_and_compare(kernel: Box<dyn ProposalKernel>, seed: u64, max_sweeps: u64) -> f64 {
    let (_, nt, comp, h) = system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);

    // Grid aligned so each exact level falls in its own bin.
    let grid = EnergyGrid::with_bin_width(-0.645, -0.155, 0.01);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = Configuration::random(&comp, &mut rng);
    let params = WlParams {
        ln_f_initial: 1.0,
        ln_f_final: 5e-6,
        schedule: LnfSchedule::Flatness {
            flatness: 0.8,
            reduction: 0.5,
        },
        sweeps_per_check: 20,
    };
    let mut walker = WlWalker::new(grid, params, config, &h, &nt, kernel, seed);
    assert!(walker.drive_into_window(&h, &nt, 500));
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let progress = walker.run(&h, &nt, &ctx, max_sweeps);
    assert!(progress.converged, "WL did not converge: {progress:?}");

    let mask = walker.visited_mask();
    let mut dos = walker.dos().clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&mask));

    // Every exact level must fall in a visited bin, and ln g must match.
    let mut max_err: f64 = 0.0;
    for (&e, &count) in exact.energies().iter().zip(exact.counts()) {
        let bin = dos
            .grid()
            .bin(e)
            .unwrap_or_else(|| panic!("exact level {e} outside grid"));
        assert!(
            mask[bin],
            "exact level {e} (g={count}) in unvisited bin {bin}"
        );
        let err = (dos.ln_g_bin(bin) - (count as f64).ln()).abs();
        max_err = max_err.max(err);
    }
    max_err
}

#[test]
fn wang_landau_matches_exact_dos_with_local_swaps() {
    // Seed picked for a well-mixed stream of the vendored ChaCha (err
    // across seeds ranges ~0.05-0.7 at this ln_f depth; 14 sits at ~0.06).
    let err = run_and_compare(Box::new(LocalSwap::new()), 14, 400_000);
    assert!(err < 0.35, "max |Δ ln g| = {err}");
}

#[test]
fn wang_landau_matches_exact_dos_with_deep_proposals() {
    // Untrained network: proposals are poor but the MH correction must
    // still deliver the exact stationary ensemble. Mixed with local swaps
    // for mobility.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let deep = DeepProposal::new(
        2,
        1,
        &DeepProposalConfig {
            k: 4,
            hidden: vec![12],
        },
        &mut rng,
    );
    let mix = ProposalMix::new(vec![
        (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.7),
        (Box::new(deep), 0.3),
    ]);
    let err = run_and_compare(Box::new(mix), 13, 400_000);
    assert!(err < 0.35, "max |Δ ln g| = {err}");
}

#[test]
fn exact_total_configuration_count_is_recovered() {
    // Independent sanity: the exact enumeration itself matches the
    // multinomial count the WL normalization uses.
    let (_, nt, comp, h) = system();
    let exact = ExactDos::enumerate(&h, &nt, &comp);
    assert_eq!(exact.total_configurations(), 12_870);
    assert!((comp.ln_num_configurations() - 12_870f64.ln()).abs() < 1e-9);
    // Ground state: B2, doubly degenerate.
    assert_eq!(exact.counts()[0], 2);
    assert!((exact.ground_state_energy() + 0.64).abs() < 1e-9);
    drop(nt);
}
