//! Quench-based energy-range discovery.
//!
//! Wang–Landau needs an energy window before sampling starts. The model's
//! analytic bounds are safe but loose; these quenches find the physically
//! reachable range so windows are not dominated by unreachable bins.

use dt_hamiltonian::EnergyModel;
use dt_lattice::{Composition, Configuration, NeighborTable, SiteId};
use rand::{Rng, RngExt};

/// Estimate the reachable `[E_min, E_max]` of a model by greedy quenches.
///
/// Runs `sweeps` sweeps of zero-temperature swap dynamics downhill (for
/// `E_min`) and uphill (for `E_max`) from random starts, returning the
/// extreme energies seen, padded by `pad` bin-widths' worth of margin
/// (fractional: `pad` is a fraction of the discovered range).
pub fn explore_energy_range<M: EnergyModel, R: Rng + ?Sized>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    sweeps: usize,
    pad: f64,
    rng: &mut R,
) -> (f64, f64) {
    let e_min = quench(model, neighbors, comp, sweeps, true, rng);
    let e_max = quench(model, neighbors, comp, sweeps, false, rng);
    let span = (e_max - e_min).max(f64::MIN_POSITIVE);
    (e_min - pad * span, e_max + pad * span)
}

/// Greedy quench: accept swaps that strictly improve the objective
/// (decrease energy when `minimize`, increase otherwise). Returns the final
/// energy.
fn quench<M: EnergyModel, R: Rng + ?Sized>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    sweeps: usize,
    minimize: bool,
    rng: &mut R,
) -> f64 {
    let n = comp.num_sites();
    let mut config = Configuration::random(comp, rng);
    let mut energy = model.total_energy(&config, neighbors);
    for _ in 0..sweeps {
        for _ in 0..n {
            let a = rng.random_range(0..n) as SiteId;
            let b = rng.random_range(0..n) as SiteId;
            if config.species_at(a) == config.species_at(b) {
                continue;
            }
            let d = model.swap_delta(&config, neighbors, a, b);
            let improves = if minimize { d < 0.0 } else { d > 0.0 };
            if improves {
                config.swap(a, b);
                energy += d;
            }
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::PairHamiltonian;
    use dt_lattice::{Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quench_brackets_random_alloy_energy() {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let h = dt_hamiltonian::nbmotaw();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (lo, hi) = explore_energy_range(&h, &nt, &comp, 20, 0.02, &mut rng);
        assert!(lo < hi);
        // A random configuration must land inside the discovered range.
        let c = Configuration::random(&comp, &mut rng);
        use dt_hamiltonian::EnergyModel as _;
        let e = h.total_energy(&c, &nt);
        assert!(e > lo && e < hi, "{lo} < {e} < {hi}");
    }

    #[test]
    fn range_is_tighter_than_analytic_bounds() {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let h = dt_hamiltonian::nbmotaw();
        use dt_hamiltonian::EnergyModel as _;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (lo, hi) = explore_energy_range(&h, &nt, &comp, 20, 0.0, &mut rng);
        assert!(lo >= h.energy_lower_bound(&nt));
        assert!(hi <= h.energy_upper_bound(&nt));
        // The analytic bounds assume every pair takes the extreme value,
        // unreachable under composition constraints: quenches must be
        // strictly tighter.
        assert!(lo > h.energy_lower_bound(&nt) + 1e-9);
        assert!(hi < h.energy_upper_bound(&nt) - 1e-9);
    }

    #[test]
    fn binary_antiferro_quench_finds_ground_state() {
        // B2 ground state of the unlike-preferring binary model is
        // E = -N z/2 |V|; the quench should get all the way there on a
        // small lattice.
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (lo, _) = explore_energy_range(&h, &nt, &comp, 50, 0.0, &mut rng);
        let ground = -0.01 * 16.0 * 8.0 / 2.0;
        assert!((lo - ground).abs() < 0.02, "quench {lo} vs ground {ground}");
    }
}
