//! The Wang–Landau walker.

use std::collections::BTreeMap;
use std::time::Instant;

use dt_hamiltonian::{DeltaWorkspace, EnergyModel};
use dt_lattice::{Configuration, NeighborTable, SiteId};
use dt_proposal::{
    apply_move, move_delta, MoveStats, Proposal, ProposalContext, ProposalKernel, ProposalSlot,
};
use dt_telemetry::{Phase, Telemetry};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::WalkerCheckpoint;
use crate::histogram::{DosEstimate, EnergyGrid, VisitHistogram};
use crate::schedule::{ScheduleState, WlParams};

/// Progress report of a Wang–Landau run.
#[derive(Debug, Clone, PartialEq)]
pub struct WlProgress {
    /// Did `ln f` reach `ln_f_final`?
    pub converged: bool,
    /// Sweeps executed.
    pub sweeps: u64,
    /// Number of `ln f` stage advances.
    pub stages: u32,
    /// Final `ln f`.
    pub ln_f: f64,
    /// Total proposals attempted.
    pub moves: u64,
}

/// First-passage / round-trip statistics of a walker inside its window.
///
/// A *crossing* is the leg from the first touch of one window boundary
/// to the first touch of the opposite one; two crossings make one round
/// trip. Boundaries are the walker's *explored extremes* (lowest and
/// highest ever-visited bins), not the window-edge bins: discrete
/// energy spectra can leave edge bins unreachable, and a boundary no
/// walker can touch would silently zero the statistics. Crossing
/// counts and move counts are deterministic given the seed (and are
/// checkpointed); wall-clock nanoseconds are telemetry-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTripStats {
    /// Completed boundary-to-opposite-boundary crossings.
    pub crossings: u64,
    /// Total moves spent inside completed crossings.
    pub crossing_moves: u64,
    /// Moves spent in the currently open leg (first passage in
    /// progress), or since birth if no boundary was touched yet.
    pub pending_moves: u64,
    /// Wall-clock nanoseconds spent in completed crossings
    /// (nondeterministic; excluded from checkpoints and fingerprints).
    pub crossing_ns: u64,
}

impl RoundTripStats {
    /// Completed round trips (two crossings each).
    pub fn round_trips(&self) -> u64 {
        self.crossings / 2
    }
}

/// A single Wang–Landau walker: configuration, running DOS estimate, visit
/// histogram, proposal kernel, and a private RNG stream.
///
/// One walker maps to one GPU in the paper's deployment; walkers are
/// `Send` so thread-parallel REWL can own one per worker thread.
pub struct WlWalker {
    grid: EnergyGrid,
    dos: DosEstimate,
    hist: VisitHistogram,
    params: WlParams,
    schedule: ScheduleState,
    config: Configuration,
    energy: f64,
    bin: usize,
    kernel: Box<dyn ProposalKernel>,
    workspace: DeltaWorkspace,
    stats: MoveStats,
    total_moves: u64,
    total_sweeps: u64,
    stages: u32,
    rng: ChaCha8Rng,
    tel: Telemetry,
    /// Reused output buffer for the batch-first proposal surface.
    batch_out: Vec<Proposal>,
    /// Last window boundary touched: 0 = none yet, -1 = low extreme,
    /// +1 = high extreme.
    rt_last_boundary: i8,
    rt_crossings: u64,
    rt_crossing_moves: u64,
    /// `total_moves` when the open leg started.
    rt_leg_start_moves: u64,
    /// Running lowest/highest ever-visited bin — the round-trip
    /// boundaries. Mirrors the histogram's `ever_visited` extremes
    /// exactly (updated in lockstep with every record), so restores
    /// rederive them from the checkpointed visit mask instead of
    /// persisting them. `(usize::MAX, 0)` until the first record.
    rt_min_bin: usize,
    rt_max_bin: usize,
    /// Telemetry-only wall-clock companions of the move counters.
    rt_crossing_ns: u64,
    rt_leg_start: Option<Instant>,
}

impl WlWalker {
    /// Build a walker. The starting configuration may lie outside the
    /// energy window; call [`WlWalker::drive_into_window`] before sampling
    /// if so.
    pub fn new<M: EnergyModel>(
        grid: EnergyGrid,
        params: WlParams,
        config: Configuration,
        model: &M,
        neighbors: &NeighborTable,
        kernel: Box<dyn ProposalKernel>,
        seed: u64,
    ) -> Self {
        let energy = model.total_energy(&config, neighbors);
        let bin = grid.bin(energy).unwrap_or(0);
        let num_sites = config.num_sites();
        WlWalker {
            dos: DosEstimate::new(grid.clone()),
            hist: VisitHistogram::new(grid.num_bins()),
            schedule: ScheduleState::new(&params),
            grid,
            params,
            config,
            energy,
            bin,
            kernel,
            workspace: DeltaWorkspace::new(num_sites),
            stats: MoveStats::new(),
            total_moves: 0,
            total_sweeps: 0,
            stages: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            tel: Telemetry::disabled(),
            batch_out: Vec::with_capacity(1),
            rt_last_boundary: 0,
            rt_crossings: 0,
            rt_crossing_moves: 0,
            rt_leg_start_moves: 0,
            rt_min_bin: usize::MAX,
            rt_max_bin: 0,
            rt_crossing_ns: 0,
            rt_leg_start: None,
        }
    }

    /// Is the walker's current energy inside its window?
    pub fn in_window(&self) -> bool {
        self.grid.bin(self.energy).is_some()
    }

    /// Greedy walk that moves the energy toward the window until it lands
    /// inside. Returns `false` if `max_sweeps` of driving did not succeed.
    pub fn drive_into_window<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        max_sweeps: usize,
    ) -> bool {
        let target = 0.5 * (self.grid.e_min() + self.grid.e_max());
        let n = self.config.num_sites();
        // Annealed minimization of |E − target|: pure greed stalls in local
        // minima well short of deep (near-ground-state) windows, so allow
        // uphill distance moves at a temperature that decays per sweep.
        let mut temp = (self.grid.e_max() - self.grid.e_min()).max(1e-12);
        for _ in 0..max_sweeps {
            if self.in_window() {
                return true;
            }
            for _ in 0..n {
                let a = self.rng.random_range(0..n) as SiteId;
                let b = self.rng.random_range(0..n) as SiteId;
                if self.config.species_at(a) == self.config.species_at(b) {
                    continue;
                }
                let d = model.swap_delta(&self.config, neighbors, a, b);
                let dist_old = (self.energy - target).abs();
                let dist_new = (self.energy + d - target).abs();
                let accept = dist_new <= dist_old
                    || self.rng.random::<f64>() < (-(dist_new - dist_old) / temp).exp();
                if accept {
                    self.config.swap(a, b);
                    self.energy += d;
                    if self.in_window() {
                        self.bin = self.grid.bin(self.energy).expect("in window");
                        return true;
                    }
                }
            }
            temp *= 0.95;
        }
        self.in_window()
    }

    /// One Monte Carlo proposal with the Wang–Landau acceptance rule
    /// (including the asymmetric-proposal correction). Returns whether the
    /// move was accepted.
    ///
    /// The proposal is drawn through the batch-first surface
    /// ([`ProposalKernel::propose_batch`] with this walker as the only
    /// slot), so single-walker and lockstep multi-walker sampling run the
    /// same kernel code path.
    pub fn step<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
    ) -> bool {
        debug_assert!(self.in_window(), "step() outside the energy window");
        let mut out = std::mem::take(&mut self.batch_out);
        {
            let mut slots = [ProposalSlot {
                config: &self.config,
                rng: &mut self.rng,
            }];
            self.kernel.propose_batch(&mut slots, ctx, &mut out);
        }
        let proposal = out.pop().expect("kernel produced no proposal");
        let accepted = self.accept_proposal(&proposal, model, neighbors);
        self.stats
            .record(self.kernel.batch_kernel_name(0), accepted);
        self.batch_out = out;
        accepted
    }

    /// The accept/record half of a WL step: evaluate the energy delta,
    /// apply the Wang–Landau acceptance rule to an externally drawn
    /// proposal, and bump the DOS/histogram for the resulting bin.
    /// Acceptance statistics are NOT recorded here — callers attribute
    /// them per kernel name ([`WlWalker::step`] per move,
    /// [`sweep_lockstep`] aggregated per sweep).
    pub fn accept_proposal<M: EnergyModel>(
        &mut self,
        proposal: &Proposal,
        model: &M,
        neighbors: &NeighborTable,
    ) -> bool {
        self.total_moves += 1;
        let delta = {
            let _span = self.tel.span(Phase::EnergyEval);
            move_delta(
                model,
                &self.config,
                neighbors,
                &proposal.mv,
                &mut self.workspace,
            )
        };
        let e_new = self.energy + delta;

        let accepted = match self.grid.bin(e_new) {
            None => false, // outside the window: reject, stay put
            Some(new_bin) => {
                let ln_a = self.dos.ln_g_bin(self.bin) - self.dos.ln_g_bin(new_bin)
                    + proposal.log_q_ratio();
                let accept = ln_a >= 0.0 || self.rng.random::<f64>() < ln_a.exp();
                if accept {
                    apply_move(&mut self.config, &proposal.mv);
                    self.energy = e_new;
                    self.bin = new_bin;
                }
                accept
            }
        };

        // Wang–Landau update of the *current* bin, accepted or not.
        self.dos.bump(self.bin, self.schedule.ln_f());
        self.hist.record(self.bin);
        self.note_boundary();
        accepted
    }

    /// Round-trip bookkeeping: crossing legs open on the first touch of a
    /// boundary bin and close on the first touch of the opposite one.
    /// Re-touching the same boundary leaves the open leg untouched.
    /// Boundaries are the explored extremes (see [`RoundTripStats`]);
    /// no crossings are counted until the explored span reaches 3 bins,
    /// so a walker camped on one energy level reports zero instead of a
    /// stream of trivial legs.
    fn note_boundary(&mut self) {
        self.rt_min_bin = self.rt_min_bin.min(self.bin);
        self.rt_max_bin = self.rt_max_bin.max(self.bin);
        if self.rt_max_bin < self.rt_min_bin + 2 {
            return;
        }
        let side: i8 = if self.bin == self.rt_min_bin {
            -1
        } else if self.bin == self.rt_max_bin {
            1
        } else {
            return;
        };
        if side == self.rt_last_boundary {
            return;
        }
        if self.rt_last_boundary != 0 {
            self.rt_crossings += 1;
            self.rt_crossing_moves += self.total_moves - self.rt_leg_start_moves;
            if let Some(t0) = self.rt_leg_start {
                self.rt_crossing_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        self.rt_last_boundary = side;
        self.rt_leg_start_moves = self.total_moves;
        self.rt_leg_start = Some(Instant::now());
    }

    /// First-passage / round-trip statistics accumulated since birth,
    /// restore, or the last [`WlWalker::reset_round_trip_stats`].
    pub fn round_trip_stats(&self) -> RoundTripStats {
        RoundTripStats {
            crossings: self.rt_crossings,
            crossing_moves: self.rt_crossing_moves,
            pending_moves: self.total_moves - self.rt_leg_start_moves,
            crossing_ns: self.rt_crossing_ns,
        }
    }

    /// Clear round-trip statistics — used when the walker is reassigned
    /// to a different window, where old-window legs are meaningless.
    pub fn reset_round_trip_stats(&mut self) {
        self.rt_last_boundary = 0;
        self.rt_crossings = 0;
        self.rt_crossing_moves = 0;
        self.rt_leg_start_moves = self.total_moves;
        // The explored-extreme boundaries are NOT reset: they mirror the
        // histogram's ever-visited mask (which has no reset), so a
        // checkpoint taken after a reset still restores exactly.
        self.rt_crossing_ns = 0;
        self.rt_leg_start = None;
    }

    /// This walker's view for a batched proposal call: its configuration
    /// and private RNG stream.
    pub fn proposal_slot(&mut self) -> ProposalSlot<'_> {
        ProposalSlot {
            config: &self.config,
            rng: &mut self.rng,
        }
    }

    /// One sweep = `num_sites` proposals.
    pub fn sweep<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
    ) {
        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::MoveBatch);
        for _ in 0..self.config.num_sites() {
            self.step(model, neighbors, ctx);
        }
        self.total_sweeps += 1;
    }

    /// Check flatness and advance the `ln f` schedule; resets the stage
    /// histogram and resyncs the accumulated energy when a stage completes.
    /// Returns `true` when the stage advanced.
    pub fn check_and_advance<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
    ) -> bool {
        // Classic schedule: min/mean flatness. Belardinelli–Pereyra 1/t:
        // phase 1 only requires every (ever-visited) bin to be hit at
        // least once per stage — the strict flatness criterion is exactly
        // what the 1/t method removes.
        let flat = match self.params.schedule {
            crate::schedule::LnfSchedule::Flatness { flatness, .. } => self.hist.is_flat(flatness),
            crate::schedule::LnfSchedule::OneOverT { .. } => self.hist.flatness() > 0.0,
        };
        let advanced = self.schedule.advance(
            self.params.schedule,
            flat,
            self.total_moves,
            self.grid.num_bins(),
        );
        if advanced {
            self.stages += 1;
            self.hist.reset_stage();
            // Guard against floating-point drift of the accumulated energy.
            self.energy = model.total_energy(&self.config, neighbors);
            self.bin = self.grid.bin(self.energy).unwrap_or(self.bin);
        }
        advanced
    }

    /// Run until `ln f` reaches `ln_f_final` or `max_sweeps` is exhausted.
    pub fn run<M: EnergyModel>(
        &mut self,
        model: &M,
        neighbors: &NeighborTable,
        ctx: &ProposalContext<'_>,
        max_sweeps: u64,
    ) -> WlProgress {
        let mut sweeps = 0u64;
        while self.schedule.ln_f() > self.params.ln_f_final && sweeps < max_sweeps {
            for _ in 0..self.params.sweeps_per_check {
                self.sweep(model, neighbors, ctx);
                sweeps += 1;
                if sweeps >= max_sweeps {
                    break;
                }
            }
            self.check_and_advance(model, neighbors);
        }
        WlProgress {
            converged: self.schedule.ln_f() <= self.params.ln_f_final,
            sweeps,
            stages: self.stages,
            ln_f: self.schedule.ln_f(),
            moves: self.total_moves,
        }
    }

    // ---- accessors -------------------------------------------------

    /// The walker's energy grid.
    pub fn grid(&self) -> &EnergyGrid {
        &self.grid
    }

    /// Current DOS estimate.
    pub fn dos(&self) -> &DosEstimate {
        &self.dos
    }

    /// Ever-visited mask (one flag per bin).
    pub fn visited_mask(&self) -> Vec<bool> {
        (0..self.grid.num_bins())
            .map(|b| self.hist.ever_visited(b))
            .collect()
    }

    /// Visit histogram.
    pub fn histogram(&self) -> &VisitHistogram {
        &self.hist
    }

    /// Current `ln f`.
    pub fn ln_f(&self) -> f64 {
        self.schedule.ln_f()
    }

    /// Stage count so far.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Total proposals so far.
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Total sweeps so far.
    pub fn total_sweeps(&self) -> u64 {
        self.total_sweeps
    }

    /// Current configuration.
    pub fn config(&self) -> &Configuration {
        &self.config
    }

    /// Current energy.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// `ln g` at an energy (for replica-exchange acceptance); `None`
    /// outside the window.
    pub fn ln_g_at(&self, energy: f64) -> Option<f64> {
        self.grid.bin(energy).map(|b| self.dos.ln_g_bin(b))
    }

    /// Replace the walker's state (replica exchange). The energy must
    /// correspond to the configuration; the caller guarantees it lies in
    /// this walker's window.
    pub fn set_state(&mut self, config: Configuration, energy: f64) {
        debug_assert!(self.grid.bin(energy).is_some());
        self.bin = self.grid.bin(energy).unwrap_or(self.bin);
        self.config = config;
        self.energy = energy;
    }

    /// Acceptance statistics by kernel.
    pub fn stats(&self) -> &MoveStats {
        &self.stats
    }

    /// Replace the acceptance statistics wholesale — used on
    /// checkpoint restore, where the saved counters belong to this
    /// walker's earlier life ([`WlWalker::from_checkpoint`] starts with
    /// empty statistics otherwise).
    pub fn set_stats(&mut self, stats: MoveStats) {
        self.stats = stats;
    }

    /// Swap in a new proposal kernel (e.g. after retraining the deep
    /// proposal network).
    pub fn set_kernel(&mut self, kernel: Box<dyn ProposalKernel>) {
        self.kernel = kernel;
    }

    /// Attach a telemetry handle; subsequent sweeps record
    /// [`Phase::MoveBatch`] and [`Phase::EnergyEval`] spans into it.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The walker's telemetry handle (disabled unless one was attached).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Borrow the proposal kernel (e.g. to read its achieved batch size).
    pub fn kernel(&self) -> &dyn ProposalKernel {
        &*self.kernel
    }

    /// Borrow the kernel mutably (for in-place retraining).
    pub fn kernel_mut(&mut self) -> &mut dyn ProposalKernel {
        &mut *self.kernel
    }

    /// The walker's private RNG (REWL uses it for exchange decisions).
    pub fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Snapshot the walker for persistence. The RNG stream and proposal
    /// kernel are NOT captured: restores resume with a fresh stream (and
    /// kernel), which preserves correctness (any valid stream is fine) but
    /// not bit-level replay across the checkpoint boundary.
    pub fn checkpoint(&self) -> WalkerCheckpoint {
        WalkerCheckpoint {
            e_min: self.grid.e_min(),
            e_max: self.grid.e_max(),
            num_bins: self.grid.num_bins(),
            ln_g: self.dos.ln_g().to_vec(),
            visits: (0..self.grid.num_bins())
                .map(|b| self.hist.visits(b))
                .collect(),
            ever_visited: self.visited_mask(),
            species: self.config.species().iter().map(|s| s.0).collect(),
            num_species: self.config.num_species(),
            energy: self.energy,
            ln_f: self.schedule.ln_f(),
            total_moves: self.total_moves,
            stages: self.stages,
            one_over_t_phase: self.schedule.in_one_over_t_phase(),
            rt_last_boundary: self.rt_last_boundary,
            rt_crossings: self.rt_crossings,
            rt_crossing_moves: self.rt_crossing_moves,
            rt_leg_start_moves: self.rt_leg_start_moves,
        }
    }

    /// Rebuild a walker from a checkpoint with a (possibly new) kernel and
    /// RNG seed. The DOS, histogram, configuration, energy, and schedule
    /// position are restored exactly.
    pub fn from_checkpoint(
        cp: &WalkerCheckpoint,
        params: WlParams,
        kernel: Box<dyn ProposalKernel>,
        seed: u64,
    ) -> Self {
        let grid = cp.grid();
        let config = cp.configuration();
        let bin = grid.bin(cp.energy).unwrap_or(0);
        let num_sites = config.num_sites();
        WlWalker {
            dos: cp.dos(),
            hist: cp.histogram(),
            schedule: ScheduleState::restore(cp.ln_f, cp.one_over_t_phase),
            grid,
            params,
            config,
            energy: cp.energy,
            bin,
            kernel,
            workspace: DeltaWorkspace::new(num_sites),
            stats: MoveStats::new(),
            total_moves: cp.total_moves,
            total_sweeps: 0,
            stages: cp.stages,
            rng: ChaCha8Rng::seed_from_u64(seed),
            tel: Telemetry::disabled(),
            batch_out: Vec::with_capacity(1),
            rt_last_boundary: cp.rt_last_boundary,
            rt_crossings: cp.rt_crossings,
            rt_crossing_moves: cp.rt_crossing_moves,
            rt_leg_start_moves: cp.rt_leg_start_moves,
            // The round-trip boundaries mirror the ever-visited extremes
            // exactly, so rederive them from the checkpointed mask.
            rt_min_bin: cp
                .ever_visited
                .iter()
                .position(|&v| v)
                .unwrap_or(usize::MAX),
            rt_max_bin: cp.ever_visited.iter().rposition(|&v| v).unwrap_or(0),
            rt_crossing_ns: 0,
            rt_leg_start: None,
        }
    }
}

/// Reusable scratch for [`sweep_lockstep`]: the proposal output buffer
/// and the per-walker, per-kernel acceptance counters aggregated over a
/// sweep.
#[derive(Debug, Default)]
pub struct LockstepState {
    proposals: Vec<Proposal>,
    counts: Vec<BTreeMap<String, (u64, u64)>>,
}

impl LockstepState {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        LockstepState::default()
    }
}

/// One lockstep sweep over a batch of walkers sharing `kernel`: each of
/// the `num_sites` steps draws every walker's proposal through ONE
/// [`ProposalKernel::propose_batch`] call — so a batching kernel (the
/// deep autoregressive proposal) runs each network layer once per decode
/// step as a W-row matmul — then applies each walker's WL acceptance from
/// its own RNG stream.
///
/// Because every kernel draws slot randomness from that slot's own stream
/// in ascending order, and kernels carry no statistical state between
/// proposals, this is bit-identical (configurations, DOS, histograms,
/// RNG positions) to calling [`WlWalker::sweep`] on each walker with its
/// own copy of the kernel.
///
/// Acceptance statistics are aggregated per walker and per component
/// kernel over the whole sweep and flushed once through
/// [`MoveStats::record_n`], yielding the same counters as per-move
/// recording. Each walker's telemetry gets a [`Phase::MoveBatch`] span
/// and a `proposal_batch_rows` gauge recording the achieved batch width.
///
/// # Panics
/// Panics when the walkers' configurations do not share a lattice size
/// (the batch must be a window of walkers on one system).
pub fn sweep_lockstep<M: EnergyModel>(
    walkers: &mut [WlWalker],
    kernel: &mut dyn ProposalKernel,
    model: &M,
    neighbors: &NeighborTable,
    ctx: &ProposalContext<'_>,
    state: &mut LockstepState,
) {
    let w = walkers.len();
    if w == 0 {
        return;
    }
    let steps = walkers[0].config.num_sites();
    assert!(
        walkers.iter().all(|wk| wk.config.num_sites() == steps),
        "lockstep sweep needs a shared lattice across walkers"
    );
    let tels: Vec<Telemetry> = walkers.iter().map(|wk| wk.tel.clone()).collect();
    let _spans: Vec<_> = tels.iter().map(|t| t.span(Phase::MoveBatch)).collect();
    state.counts.resize_with(w, BTreeMap::new);
    for c in &mut state.counts {
        c.clear();
    }
    for _ in 0..steps {
        let mut out = std::mem::take(&mut state.proposals);
        {
            let mut slots: Vec<ProposalSlot<'_>> =
                walkers.iter_mut().map(WlWalker::proposal_slot).collect();
            kernel.propose_batch(&mut slots, ctx, &mut out);
        }
        debug_assert_eq!(out.len(), w, "kernel produced a partial batch");
        for (i, (wk, proposal)) in walkers.iter_mut().zip(&out).enumerate() {
            let accepted = wk.accept_proposal(proposal, model, neighbors);
            let entry = state
                .counts
                .get_mut(i)
                .expect("sized above")
                .entry(kernel.batch_kernel_name(i).to_string())
                .or_insert((0, 0));
            entry.0 += 1;
            entry.1 += u64::from(accepted);
        }
        out.clear();
        state.proposals = out;
    }
    let rows = kernel.last_batch_rows();
    for (wk, counts) in walkers.iter_mut().zip(&state.counts) {
        for (name, &(proposed, accepted)) in counts {
            wk.stats.record_n(name, proposed, accepted);
        }
        wk.tel.set_gauge("proposal_batch_rows", rows as f64);
        wk.total_sweeps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::PairHamiltonian;
    use dt_lattice::{Composition, Structure, Supercell};
    use dt_proposal::LocalSwap;

    fn fixture() -> (Supercell, NeighborTable, Composition, PairHamiltonian) {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, 0.01)]);
        (cell, nt, comp, h)
    }

    fn make_walker(
        nt: &NeighborTable,
        comp: &Composition,
        h: &PairHamiltonian,
        seed: u64,
    ) -> WlWalker {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(comp, &mut rng);
        // Binary antiferro on BCC L=2: energies span [0, N z/2 |V|] for
        // the + coupling; use generous range.
        let grid = EnergyGrid::new(-0.01, 0.65, 33);
        WlWalker::new(
            grid,
            WlParams::fast(),
            config,
            h,
            nt,
            Box::new(LocalSwap::new()),
            seed,
        )
    }

    #[test]
    fn steps_keep_walker_in_window() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 1);
        assert!(w.in_window());
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        for _ in 0..500 {
            w.step(&h, &nt, &ctx);
            assert!(w.in_window());
        }
        assert_eq!(w.total_moves(), 500);
        // Energy bookkeeping must match a full recompute.
        use dt_hamiltonian::EnergyModel as _;
        assert!((w.energy() - h.total_energy(w.config(), &nt)).abs() < 1e-9);
    }

    #[test]
    fn dos_grows_and_histogram_fills() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 2);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        for _ in 0..20 {
            w.sweep(&h, &nt, &ctx);
        }
        assert!(w.histogram().total_visits() > 0);
        assert!(w.dos().ln_g_range(Some(&w.visited_mask())) > 0.0);
        assert!(w.histogram().num_visited() > 3);
    }

    #[test]
    fn run_converges_on_small_system() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 3);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let progress = w.run(&h, &nt, &ctx, 50_000);
        assert!(progress.converged, "{progress:?}");
        assert!(progress.stages >= 10);
        assert!(w.ln_f() <= 1e-4);
    }

    #[test]
    fn drive_into_window_reaches_low_energy_window() {
        let (_, nt, comp, _) = fixture();
        // Unlike-preferring binary: ground state is B2 at E = -0.64; a
        // random start sits near -0.32, well above the target window.
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let config = Configuration::random(&comp, &mut rng);
        // The L=2 spectrum is gapped; include the B2 ground state (-0.64)
        // so the window is certainly reachable while still excluding the
        // random-start energy (≈ -0.32).
        let grid = EnergyGrid::new(-0.65, -0.55, 10);
        let mut w = WlWalker::new(
            grid,
            WlParams::fast(),
            config,
            &h,
            &nt,
            Box::new(LocalSwap::new()),
            4,
        );
        assert!(!w.in_window(), "random start should be outside");
        let reached = w.drive_into_window(&h, &nt, 200);
        assert!(reached, "driver failed to reach window");
        assert!(w.in_window());
    }

    #[test]
    fn stats_are_recorded_under_kernel_name() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 5);
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        for _ in 0..100 {
            w.step(&h, &nt, &ctx);
        }
        let (proposed, _) = w.stats().counts("local-swap");
        assert_eq!(proposed, 100);
    }

    #[test]
    fn telemetry_records_sweep_and_delta_spans() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 8);
        let tel = Telemetry::enabled();
        w.set_telemetry(tel.clone());
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        w.sweep(&h, &nt, &ctx);
        let snap = tel.snapshot(0);
        assert_eq!(snap.phase_stat(Phase::MoveBatch).unwrap().count, 1);
        assert_eq!(
            snap.phase_stat(Phase::EnergyEval).unwrap().count,
            w.config().num_sites() as u64
        );
    }

    #[test]
    fn round_trips_accumulate_and_survive_checkpoint() {
        let (_, nt, comp, h) = fixture();
        // A narrow window over reachable energies (0.32 … 0.40) so the
        // walker touches both boundary bins quickly.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let config = Configuration::random(&comp, &mut rng);
        let grid = EnergyGrid::new(0.31, 0.41, 5);
        let mut w = WlWalker::new(
            grid,
            WlParams::fast(),
            config,
            &h,
            &nt,
            Box::new(LocalSwap::new()),
            11,
        );
        if !w.in_window() {
            assert!(w.drive_into_window(&h, &nt, 500));
        }
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        for _ in 0..2_000 {
            w.sweep(&h, &nt, &ctx);
            if w.round_trip_stats().crossings >= 2 {
                break;
            }
        }
        let rt = w.round_trip_stats();
        assert!(rt.crossings >= 2, "walker never crossed: {rt:?}");
        assert!(rt.crossing_moves > 0);
        assert_eq!(rt.round_trips(), rt.crossings / 2);
        // Deterministic fields survive a checkpoint round trip exactly;
        // wall-clock ns restarts at zero.
        let cp = w.checkpoint();
        let restored =
            WlWalker::from_checkpoint(&cp, WlParams::fast(), Box::new(LocalSwap::new()), 11);
        let rt2 = restored.round_trip_stats();
        assert_eq!(rt2.crossings, rt.crossings);
        assert_eq!(rt2.crossing_moves, rt.crossing_moves);
        assert_eq!(rt2.pending_moves, rt.pending_moves);
        assert_eq!(rt2.crossing_ns, 0);
        // A reset clears the counters and restarts the pending leg.
        let mut w2 = w;
        w2.reset_round_trip_stats();
        let rt3 = w2.round_trip_stats();
        assert_eq!(
            (rt3.crossings, rt3.crossing_moves, rt3.pending_moves),
            (0, 0, 0)
        );
    }

    #[test]
    fn set_state_moves_walker() {
        let (_, nt, comp, h) = fixture();
        let mut w = make_walker(&nt, &comp, &h, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let other = Configuration::random(&comp, &mut rng);
        use dt_hamiltonian::EnergyModel as _;
        let e = h.total_energy(&other, &nt);
        w.set_state(other.clone(), e);
        assert_eq!(w.config(), &other);
        assert_eq!(w.energy(), e);
    }
}
