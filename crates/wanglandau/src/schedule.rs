//! Modification-factor schedules.

/// How `ln f` is annealed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LnfSchedule {
    /// Classic Wang–Landau: multiply `ln f` by `reduction` whenever the
    /// visit histogram is flat at `flatness`.
    Flatness {
        /// Required `min/mean` visit ratio (e.g. 0.8).
        flatness: f64,
        /// Multiplicative reduction (e.g. 0.5 for halving).
        reduction: f64,
    },
    /// Belardinelli–Pereyra `1/t`: behave like `Flatness` until
    /// `ln f < num_bins / t` (t = total MC moves), then follow
    /// `ln f = num_bins / t`, which removes the saturation error of the
    /// pure flatness schedule.
    OneOverT {
        /// Flatness threshold for the initial phase.
        flatness: f64,
        /// Reduction factor for the initial phase.
        reduction: f64,
    },
}

/// Wang–Landau run parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WlParams {
    /// Initial modification factor (`ln f`); 1.0 is standard.
    pub ln_f_initial: f64,
    /// Terminate when `ln f` falls below this (e.g. 1e-8).
    pub ln_f_final: f64,
    /// The annealing schedule.
    pub schedule: LnfSchedule,
    /// Monte Carlo sweeps (N proposals each) between flatness checks.
    pub sweeps_per_check: usize,
}

impl Default for WlParams {
    fn default() -> Self {
        WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-8,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 10,
        }
    }
}

impl WlParams {
    /// Quick-converging parameters for tests and examples.
    pub fn fast() -> Self {
        WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-4,
            schedule: LnfSchedule::Flatness {
                flatness: 0.7,
                reduction: 0.5,
            },
            sweeps_per_check: 5,
        }
    }
}

/// Tracks the annealing state across a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleState {
    ln_f: f64,
    in_one_over_t_phase: bool,
}

impl ScheduleState {
    /// Start a schedule at `ln_f_initial`.
    pub fn new(params: &WlParams) -> Self {
        ScheduleState {
            ln_f: params.ln_f_initial,
            in_one_over_t_phase: false,
        }
    }

    /// Current `ln f`.
    pub fn ln_f(&self) -> f64 {
        self.ln_f
    }

    /// Rebuild a schedule position from checkpointed values.
    pub fn restore(ln_f: f64, in_one_over_t_phase: bool) -> Self {
        ScheduleState {
            ln_f,
            in_one_over_t_phase,
        }
    }

    /// Is the `1/t` phase active?
    pub fn in_one_over_t_phase(&self) -> bool {
        self.in_one_over_t_phase
    }

    /// Advance the schedule after a flatness check.
    ///
    /// * `flat` — did the stage histogram pass the flatness threshold?
    /// * `total_moves` — cumulative MC moves of the walker;
    /// * `num_bins` — bins in the walker's window.
    ///
    /// Returns `true` when the stage advanced (histogram should be reset).
    pub fn advance(
        &mut self,
        schedule: LnfSchedule,
        flat: bool,
        total_moves: u64,
        num_bins: usize,
    ) -> bool {
        match schedule {
            LnfSchedule::Flatness { reduction, .. } => {
                if flat {
                    self.ln_f *= reduction;
                    true
                } else {
                    false
                }
            }
            LnfSchedule::OneOverT { reduction, .. } => {
                let t_floor = num_bins as f64 / (total_moves.max(1) as f64);
                if self.in_one_over_t_phase || self.ln_f <= t_floor {
                    // Once in the 1/t phase, ln f follows the 1/t curve
                    // monotonically (never increases).
                    self.in_one_over_t_phase = true;
                    self.ln_f = self.ln_f.min(t_floor);
                    true
                } else if flat {
                    self.ln_f *= reduction;
                    if self.ln_f <= t_floor {
                        self.in_one_over_t_phase = true;
                        self.ln_f = t_floor.min(self.ln_f);
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The flatness threshold of a schedule (for histogram checks).
    pub fn flatness_threshold(schedule: LnfSchedule) -> f64 {
        match schedule {
            LnfSchedule::Flatness { flatness, .. } | LnfSchedule::OneOverT { flatness, .. } => {
                flatness
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatness_schedule_halves_on_flat() {
        let params = WlParams::default();
        let mut st = ScheduleState::new(&params);
        assert_eq!(st.ln_f(), 1.0);
        assert!(!st.advance(params.schedule, false, 100, 10));
        assert_eq!(st.ln_f(), 1.0);
        assert!(st.advance(params.schedule, true, 200, 10));
        assert_eq!(st.ln_f(), 0.5);
    }

    #[test]
    fn one_over_t_takes_over() {
        let schedule = LnfSchedule::OneOverT {
            flatness: 0.8,
            reduction: 0.5,
        };
        let params = WlParams {
            schedule,
            ..WlParams::default()
        };
        let mut st = ScheduleState::new(&params);
        // Halve a few times while flat; many moves keep bins/t below ln f
        // so the flatness phase stays active.
        for _ in 0..3 {
            st.advance(schedule, true, 100_000, 10);
        }
        assert_eq!(st.ln_f(), 0.125);
        assert!(!st.in_one_over_t_phase());
        // Once ln f ≤ bins/t the 1/t phase takes over (here bins/t = 0.125).
        st.advance(schedule, false, 80, 10);
        assert!(st.in_one_over_t_phase());
        assert!((st.ln_f() - 0.125).abs() < 1e-12);
        // ln f then follows the 1/t curve and never increases.
        st.advance(schedule, false, 1000, 10);
        assert!((st.ln_f() - 0.01).abs() < 1e-12);
        st.advance(schedule, false, 2000, 10);
        assert!((st.ln_f() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn one_over_t_never_increases() {
        let schedule = LnfSchedule::OneOverT {
            flatness: 0.8,
            reduction: 0.5,
        };
        let params = WlParams {
            schedule,
            ..WlParams::default()
        };
        let mut st = ScheduleState::new(&params);
        st.advance(schedule, true, 1_000_000, 10); // deep 1/t
        let lnf = st.ln_f();
        st.advance(schedule, true, 1_000_001, 10);
        assert!(st.ln_f() <= lnf);
    }

    #[test]
    fn threshold_extraction() {
        assert_eq!(
            ScheduleState::flatness_threshold(LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5
            }),
            0.8
        );
    }
}
