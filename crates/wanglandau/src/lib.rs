//! # dt-wanglandau
//!
//! Wang–Landau flat-histogram sampling of the density of states g(E).
//!
//! Wang–Landau biases a random walk by the *inverse* of the running DOS
//! estimate, `π(σ) ∝ 1/g(E(σ))`, so the walker visits all energies with
//! equal frequency and `ln g` converges as the modification factor `ln f`
//! is annealed. It is the engine behind the paper's headline result —
//! directly evaluating a density of states spanning `~e^10,000` for a real
//! material — because it never needs `g` itself, only `ln g`.
//!
//! This crate provides:
//!
//! * [`EnergyGrid`] / [`VisitHistogram`] / [`DosEstimate`] — binning, visit
//!   counting with flatness checks, and the `ln g` accumulator,
//! * [`WlParams`] / [`LnfSchedule`] — the classic flatness-halving schedule
//!   and the `1/t` variant,
//! * [`WlWalker`] — a single walker generic over the [`EnergyModel`] and
//!   any [`ProposalKernel`], with the full Metropolis–Hastings correction
//!   `A = min(1, exp(ln g(E) − ln g(E') + ln q_rev − ln q_fwd))` so the
//!   deep, asymmetric proposals of `dt-proposal` sample the same ensemble
//!   as classical swaps,
//! * [`walker::sweep_lockstep`] — one sweep over a *batch* of walkers
//!   sharing a kernel, drawing every step's proposals through the
//!   batch-first `propose_batch` surface so a deep kernel decodes all
//!   walkers in lockstep (one W-row matmul per decode step) while staying
//!   bit-identical to per-walker sweeps,
//! * [`range::explore_energy_range`] — quench-based range discovery used to
//!   lay out energy windows before sampling.
//!
//! [`EnergyModel`]: dt_hamiltonian::EnergyModel
//! [`ProposalKernel`]: dt_proposal::ProposalKernel

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod histogram;
pub mod range;
pub mod schedule;
pub mod walker;

pub use checkpoint::{CheckpointError, WalkerCheckpoint};
pub use histogram::{DosEstimate, EnergyGrid, VisitHistogram};
pub use range::explore_energy_range;
pub use schedule::{LnfSchedule, WlParams};
pub use walker::{sweep_lockstep, LockstepState, RoundTripStats, WlProgress, WlWalker};
