//! Energy binning, visit histograms, and the `ln g` accumulator.

/// A uniform energy grid over `[e_min, e_max]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyGrid {
    e_min: f64,
    e_max: f64,
    bin_width: f64,
    num_bins: usize,
}

impl EnergyGrid {
    /// Grid with a fixed number of bins.
    ///
    /// # Panics
    /// Panics when `e_max <= e_min` or `num_bins == 0`.
    pub fn new(e_min: f64, e_max: f64, num_bins: usize) -> Self {
        assert!(e_max > e_min, "empty energy range [{e_min}, {e_max}]");
        assert!(num_bins > 0, "need at least one bin");
        EnergyGrid {
            e_min,
            e_max,
            bin_width: (e_max - e_min) / num_bins as f64,
            num_bins,
        }
    }

    /// Grid with a fixed bin width (the last bin may overhang `e_max`).
    pub fn with_bin_width(e_min: f64, e_max: f64, bin_width: f64) -> Self {
        assert!(e_max > e_min, "empty energy range");
        assert!(bin_width > 0.0, "bin width must be positive");
        let num_bins = ((e_max - e_min) / bin_width).ceil().max(1.0) as usize;
        EnergyGrid {
            e_min,
            e_max: e_min + num_bins as f64 * bin_width,
            bin_width,
            num_bins,
        }
    }

    /// Lower edge of the grid.
    pub fn e_min(&self) -> f64 {
        self.e_min
    }

    /// Upper edge of the grid.
    pub fn e_max(&self) -> f64 {
        self.e_max
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Bin index of an energy, or `None` outside the grid. The upper edge
    /// is inclusive (maps to the last bin).
    #[inline]
    pub fn bin(&self, e: f64) -> Option<usize> {
        if e < self.e_min || e > self.e_max {
            return None;
        }
        let idx = ((e - self.e_min) / self.bin_width) as usize;
        Some(idx.min(self.num_bins - 1))
    }

    /// Center energy of a bin.
    pub fn center(&self, bin: usize) -> f64 {
        self.e_min + (bin as f64 + 0.5) * self.bin_width
    }

    /// All bin centers.
    pub fn centers(&self) -> Vec<f64> {
        (0..self.num_bins).map(|b| self.center(b)).collect()
    }

    /// The sub-grid covering bins `[lo, hi)` (used to carve REWL windows
    /// that share bin boundaries with the global grid).
    pub fn slice(&self, lo: usize, hi: usize) -> EnergyGrid {
        assert!(lo < hi && hi <= self.num_bins, "bad slice [{lo}, {hi})");
        EnergyGrid {
            e_min: self.e_min + lo as f64 * self.bin_width,
            e_max: self.e_min + hi as f64 * self.bin_width,
            bin_width: self.bin_width,
            num_bins: hi - lo,
        }
    }
}

/// Visit counts with ever-visited masking and flatness checks.
///
/// Flatness is evaluated over bins that have *ever* been visited during the
/// current `ln f` stage window, which is the standard way to cope with
/// unreachable bins at the edges of an over-estimated energy range.
#[derive(Debug, Clone, PartialEq)]
pub struct VisitHistogram {
    visits: Vec<u64>,
    ever_visited: Vec<bool>,
}

impl VisitHistogram {
    /// Fresh histogram with `num_bins` bins.
    pub fn new(num_bins: usize) -> Self {
        VisitHistogram {
            visits: vec![0; num_bins],
            ever_visited: vec![false; num_bins],
        }
    }

    /// Record a visit.
    #[inline]
    pub fn record(&mut self, bin: usize) {
        self.visits[bin] += 1;
        self.ever_visited[bin] = true;
    }

    /// Record `n` visits to a bin at once — used when restoring a
    /// histogram from a checkpoint, where replaying `record` per visit
    /// would be O(total visits). `n == 0` marks the bin ever-visited
    /// without adding stage visits.
    #[inline]
    pub fn record_n(&mut self, bin: usize, n: u64) {
        self.visits[bin] += n;
        self.ever_visited[bin] = true;
    }

    /// Visits of one bin in the current stage.
    pub fn visits(&self, bin: usize) -> u64 {
        self.visits[bin]
    }

    /// Has the bin ever been visited (across stages)?
    pub fn ever_visited(&self, bin: usize) -> bool {
        self.ever_visited[bin]
    }

    /// Number of ever-visited bins.
    pub fn num_visited(&self) -> usize {
        self.ever_visited.iter().filter(|&&v| v).count()
    }

    /// Flatness ratio `min_visits / mean_visits` over ever-visited bins
    /// (0 when any visited bin has zero visits this stage).
    pub fn flatness(&self) -> f64 {
        let mut min = u64::MAX;
        let mut sum = 0u64;
        let mut n = 0u64;
        for (v, &ever) in self.visits.iter().zip(&self.ever_visited) {
            if ever {
                min = min.min(*v);
                sum += v;
                n += 1;
            }
        }
        if n == 0 || sum == 0 {
            return 0.0;
        }
        let mean = sum as f64 / n as f64;
        min as f64 / mean
    }

    /// Is the histogram flat at `threshold` (e.g. 0.8)?
    pub fn is_flat(&self, threshold: f64) -> bool {
        self.flatness() >= threshold
    }

    /// Reset stage visits (keeps the ever-visited mask).
    pub fn reset_stage(&mut self) {
        self.visits.iter_mut().for_each(|v| *v = 0);
    }

    /// Total visits this stage.
    pub fn total_visits(&self) -> u64 {
        self.visits.iter().sum()
    }
}

/// The running `ln g(E)` estimate over a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct DosEstimate {
    grid: EnergyGrid,
    ln_g: Vec<f64>,
}

impl DosEstimate {
    /// Flat (zero) estimate over a grid.
    pub fn new(grid: EnergyGrid) -> Self {
        let n = grid.num_bins();
        DosEstimate {
            grid,
            ln_g: vec![0.0; n],
        }
    }

    /// Rebuild from raw parts (e.g. after merging windows).
    pub fn from_parts(grid: EnergyGrid, ln_g: Vec<f64>) -> Self {
        assert_eq!(grid.num_bins(), ln_g.len());
        DosEstimate { grid, ln_g }
    }

    /// The grid.
    pub fn grid(&self) -> &EnergyGrid {
        &self.grid
    }

    /// Raw `ln g` values.
    pub fn ln_g(&self) -> &[f64] {
        &self.ln_g
    }

    /// `ln g` of one bin.
    #[inline]
    pub fn ln_g_bin(&self, bin: usize) -> f64 {
        self.ln_g[bin]
    }

    /// Add `ln f` to a bin (the Wang–Landau update).
    #[inline]
    pub fn bump(&mut self, bin: usize, ln_f: f64) {
        self.ln_g[bin] += ln_f;
    }

    /// Shift all values so the minimum over `mask`-true bins is zero.
    /// With no mask, uses all bins.
    pub fn normalize_min(&mut self, mask: Option<&[bool]>) {
        let min = self
            .ln_g
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask.is_none_or(|m| m[i]))
            .map(|(_, &v)| v)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            for v in &mut self.ln_g {
                *v -= min;
            }
        }
    }

    /// Shift all values so `ln Σ_bins g(E) = ln_total` over `mask`-true
    /// bins — e.g. to impose the exact total configuration count
    /// `ln Σ g = ln(N!/Π N_a!)`.
    pub fn normalize_total(&mut self, ln_total: f64, mask: Option<&[bool]>) {
        let cur = log_sum_exp(
            self.ln_g
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask.is_none_or(|m| m[i]))
                .map(|(_, &v)| v),
        );
        if cur.is_finite() {
            let shift = ln_total - cur;
            for v in &mut self.ln_g {
                *v += shift;
            }
        }
    }

    /// The spread `max − min` of `ln g` over `mask`-true bins — the
    /// paper's "range of the density of states" (≈10⁴ for N=8192 NbMoTaW).
    pub fn ln_g_range(&self, mask: Option<&[bool]>) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &v) in self.ln_g.iter().enumerate() {
            if mask.is_none_or(|m| m[i]) {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if min.is_finite() {
            max - min
        } else {
            0.0
        }
    }
}

/// Numerically stable `ln Σ exp(x_i)`.
pub fn log_sum_exp<I: IntoIterator<Item = f64>>(xs: I) -> f64 {
    let xs: Vec<f64> = xs.into_iter().collect();
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|&x| (x - max).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_binning_edges() {
        let g = EnergyGrid::new(-1.0, 1.0, 4);
        assert_eq!(g.bin(-1.0), Some(0));
        assert_eq!(g.bin(-0.51), Some(0));
        assert_eq!(g.bin(-0.5), Some(1));
        assert_eq!(g.bin(1.0), Some(3), "upper edge inclusive");
        assert_eq!(g.bin(1.0001), None);
        assert_eq!(g.bin(-1.0001), None);
        assert_eq!(g.center(0), -0.75);
    }

    #[test]
    fn grid_with_bin_width_covers_range() {
        let g = EnergyGrid::with_bin_width(0.0, 1.0, 0.3);
        assert_eq!(g.num_bins(), 4);
        assert!((g.e_max() - 1.2).abs() < 1e-12);
        assert!(g.bin(1.15).is_some());
    }

    #[test]
    fn grid_slice_shares_boundaries() {
        let g = EnergyGrid::new(0.0, 10.0, 10);
        let s = g.slice(2, 5);
        assert_eq!(s.num_bins(), 3);
        assert!((s.e_min() - 2.0).abs() < 1e-12);
        assert!((s.e_max() - 5.0).abs() < 1e-12);
        assert_eq!(s.bin(2.5), Some(0));
    }

    #[test]
    fn flatness_over_visited_bins_only() {
        let mut h = VisitHistogram::new(4);
        h.record(0);
        h.record(0);
        h.record(1);
        // Bins 2, 3 never visited: excluded.
        assert!((h.flatness() - (1.0 / 1.5)).abs() < 1e-12);
        assert!(!h.is_flat(0.8));
        h.record(1);
        assert!(h.is_flat(0.99));
        assert_eq!(h.num_visited(), 2);
    }

    #[test]
    fn stage_reset_keeps_mask() {
        let mut h = VisitHistogram::new(3);
        h.record(2);
        h.reset_stage();
        assert_eq!(h.visits(2), 0);
        assert!(h.ever_visited(2));
        // A visited bin with zero stage visits ⇒ flatness 0.
        assert_eq!(h.flatness(), 0.0);
    }

    #[test]
    fn dos_normalize_min_and_total() {
        let grid = EnergyGrid::new(0.0, 3.0, 3);
        let mut dos = DosEstimate::from_parts(grid, vec![5.0, 7.0, 6.0]);
        dos.normalize_min(None);
        assert_eq!(dos.ln_g(), &[0.0, 2.0, 1.0]);

        // Impose ln Σ g = ln 100.
        dos.normalize_total(100.0f64.ln(), None);
        let total: f64 = dos.ln_g().iter().map(|&v| v.exp()).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dos_range_with_mask() {
        let grid = EnergyGrid::new(0.0, 3.0, 3);
        let dos = DosEstimate::from_parts(grid, vec![1.0, 50.0, 3.0]);
        assert_eq!(dos.ln_g_range(None), 49.0);
        let mask = [true, false, true];
        assert_eq!(dos.ln_g_range(Some(&mask)), 2.0);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let v = log_sum_exp([1000.0, 1000.0]);
        assert!((v - (1000.0 + 2.0f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(std::iter::empty()), f64::NEG_INFINITY);
    }
}
