//! Walker checkpointing.
//!
//! Production Wang–Landau runs on a real machine survive node failures by
//! periodically persisting each walker's state: the DOS estimate, visit
//! histogram, configuration, and schedule position. The format is a
//! versioned text format (hex-encoded IEEE-754, like `dt-nn`'s model
//! format) so restores are bit-exact.

use std::fmt;

use dt_lattice::{Configuration, Species};

use crate::histogram::{DosEstimate, EnergyGrid, VisitHistogram};

/// Format version tag. v2 added the round-trip line and a trailing `end`
/// sentinel (so byte truncation is always detected); v1 files still
/// decode, with round-trip counters defaulting to zero.
const VERSION: u32 = 2;

/// Errors from [`WalkerCheckpoint::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Header missing or wrong version.
    BadHeader,
    /// A field was malformed or missing.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "bad checkpoint header"),
            CheckpointError::Malformed(w) => write!(f, "malformed checkpoint: {w}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A serializable snapshot of a Wang–Landau walker.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerCheckpoint {
    /// Energy window.
    pub e_min: f64,
    /// Energy window.
    pub e_max: f64,
    /// Bin count.
    pub num_bins: usize,
    /// `ln g` per bin.
    pub ln_g: Vec<f64>,
    /// Stage visits per bin.
    pub visits: Vec<u64>,
    /// Ever-visited mask.
    pub ever_visited: Vec<bool>,
    /// Species per site.
    pub species: Vec<u8>,
    /// Number of species.
    pub num_species: usize,
    /// Current energy.
    pub energy: f64,
    /// Current `ln f`.
    pub ln_f: f64,
    /// Total moves so far.
    pub total_moves: u64,
    /// Stage count so far.
    pub stages: u32,
    /// Is the 1/t schedule phase active?
    pub one_over_t_phase: bool,
    /// Round-trip tracking: last boundary touched (0 none, -1 low,
    /// +1 high).
    pub rt_last_boundary: i8,
    /// Round-trip tracking: completed boundary crossings.
    pub rt_crossings: u64,
    /// Round-trip tracking: moves inside completed crossings.
    pub rt_crossing_moves: u64,
    /// Round-trip tracking: `total_moves` at the open leg's start.
    pub rt_leg_start_moves: u64,
}

impl WalkerCheckpoint {
    /// Serialize to the versioned text format.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "dtwl v{VERSION}").expect("write");
        writeln!(
            s,
            "grid {:016x} {:016x} {}",
            self.e_min.to_bits(),
            self.e_max.to_bits(),
            self.num_bins
        )
        .expect("write");
        writeln!(
            s,
            "state {:016x} {:016x} {} {} {} {}",
            self.energy.to_bits(),
            self.ln_f.to_bits(),
            self.total_moves,
            self.stages,
            self.num_species,
            u8::from(self.one_over_t_phase)
        )
        .expect("write");
        let ln_g: Vec<String> = self
            .ln_g
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        writeln!(s, "ln_g {}", ln_g.join(" ")).expect("write");
        let visits: Vec<String> = self.visits.iter().map(|v| v.to_string()).collect();
        writeln!(s, "visits {}", visits.join(" ")).expect("write");
        let ever: String = self
            .ever_visited
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        writeln!(s, "ever {ever}").expect("write");
        let species: Vec<String> = self.species.iter().map(|v| v.to_string()).collect();
        writeln!(s, "species {}", species.join(" ")).expect("write");
        // Boundary side is encoded unsigned (0 none, 1 low, 2 high) to
        // keep the token grammar uniform.
        writeln!(
            s,
            "rt {} {} {} {}",
            match self.rt_last_boundary {
                -1 => 1,
                1 => 2,
                _ => 0,
            },
            self.rt_crossings,
            self.rt_crossing_moves,
            self.rt_leg_start_moves
        )
        .expect("write");
        writeln!(s, "end").expect("write");
        s
    }

    /// Restore from [`WalkerCheckpoint::encode`] output.
    ///
    /// # Errors
    /// Returns [`CheckpointError`] on structural problems.
    pub fn decode(text: &str) -> Result<Self, CheckpointError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(CheckpointError::BadHeader)?;
        let version: u32 = match header {
            "dtwl v1" => 1,
            "dtwl v2" => 2,
            _ => return Err(CheckpointError::BadHeader),
        };
        let field =
            |lines: &mut std::str::Lines<'_>, name: &str| -> Result<String, CheckpointError> {
                let line = lines
                    .next()
                    .ok_or_else(|| CheckpointError::Malformed(format!("missing {name}")))?;
                line.strip_prefix(&format!("{name} "))
                    .map(String::from)
                    .ok_or_else(|| CheckpointError::Malformed(format!("expected {name} line")))
            };
        let bits = |tok: &str| -> Result<f64, CheckpointError> {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| CheckpointError::Malformed(format!("bad f64: {tok}")))
        };

        let grid = field(&mut lines, "grid")?;
        let mut g = grid.split_whitespace();
        let e_min = bits(
            g.next()
                .ok_or_else(|| CheckpointError::Malformed("e_min".into()))?,
        )?;
        let e_max = bits(
            g.next()
                .ok_or_else(|| CheckpointError::Malformed("e_max".into()))?,
        )?;
        let num_bins: usize = g
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Malformed("num_bins".into()))?;

        let state = field(&mut lines, "state")?;
        let mut st = state.split_whitespace();
        let energy = bits(
            st.next()
                .ok_or_else(|| CheckpointError::Malformed("energy".into()))?,
        )?;
        let ln_f = bits(
            st.next()
                .ok_or_else(|| CheckpointError::Malformed("ln_f".into()))?,
        )?;
        let total_moves: u64 = st
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Malformed("total_moves".into()))?;
        let stages: u32 = st
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Malformed("stages".into()))?;
        let num_species: usize = st
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| CheckpointError::Malformed("num_species".into()))?;
        let one_over_t_phase = st
            .next()
            .and_then(|v| v.parse::<u8>().ok())
            .map(|v| v != 0)
            .ok_or_else(|| CheckpointError::Malformed("phase flag".into()))?;

        let ln_g = field(&mut lines, "ln_g")?
            .split_whitespace()
            .map(bits)
            .collect::<Result<Vec<f64>, _>>()?;
        let visits = field(&mut lines, "visits")?
            .split_whitespace()
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|_| CheckpointError::Malformed(format!("bad visit: {v}")))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        let ever_visited: Vec<bool> = field(&mut lines, "ever")?
            .chars()
            .map(|c| c == '1')
            .collect();
        let species = field(&mut lines, "species")?
            .split_whitespace()
            .map(|v| {
                v.parse::<u8>()
                    .map_err(|_| CheckpointError::Malformed(format!("bad species: {v}")))
            })
            .collect::<Result<Vec<u8>, _>>()?;

        if ln_g.len() != num_bins || visits.len() != num_bins || ever_visited.len() != num_bins {
            return Err(CheckpointError::Malformed("bin-count mismatch".into()));
        }

        // v2: round-trip counters plus a trailing `end` sentinel, both
        // required — the sentinel makes any byte truncation detectable.
        // v1 files predate the adaptive-windows layer: counters are zero.
        let mut rt_last_boundary = 0i8;
        let mut rt_crossings = 0u64;
        let mut rt_crossing_moves = 0u64;
        let mut rt_leg_start_moves = 0u64;
        if version >= 2 {
            let rt = field(&mut lines, "rt")?;
            let vals = rt
                .split_whitespace()
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| CheckpointError::Malformed(format!("bad rt field: {v}")))
                })
                .collect::<Result<Vec<u64>, _>>()?;
            if vals.len() != 4 || vals[0] > 2 {
                return Err(CheckpointError::Malformed("bad rt line".into()));
            }
            rt_last_boundary = match vals[0] {
                1 => -1,
                2 => 1,
                _ => 0,
            };
            rt_crossings = vals[1];
            rt_crossing_moves = vals[2];
            rt_leg_start_moves = vals[3];
            if lines.next() != Some("end") {
                return Err(CheckpointError::Malformed("missing end sentinel".into()));
            }
        }

        Ok(WalkerCheckpoint {
            e_min,
            e_max,
            num_bins,
            ln_g,
            visits,
            ever_visited,
            species,
            num_species,
            energy,
            ln_f,
            total_moves,
            stages,
            one_over_t_phase,
            rt_last_boundary,
            rt_crossings,
            rt_crossing_moves,
            rt_leg_start_moves,
        })
    }

    /// Rebuild the grid described by this checkpoint.
    pub fn grid(&self) -> EnergyGrid {
        EnergyGrid::new(self.e_min, self.e_max, self.num_bins)
    }

    /// Rebuild the DOS estimate.
    pub fn dos(&self) -> DosEstimate {
        DosEstimate::from_parts(self.grid(), self.ln_g.clone())
    }

    /// Rebuild the visit histogram.
    pub fn histogram(&self) -> VisitHistogram {
        let mut h = VisitHistogram::new(self.num_bins);
        // Bulk restore: one `record_n` per bin regardless of how many
        // visits the checkpoint carries (`n == 0` still marks the
        // ever-visited bit for bins visited only in earlier stages).
        for (bin, (&v, &ever)) in self.visits.iter().zip(&self.ever_visited).enumerate() {
            if ever || v > 0 {
                h.record_n(bin, v);
            }
        }
        h
    }

    /// Rebuild the configuration.
    pub fn configuration(&self) -> Configuration {
        Configuration::from_species(
            self.species.iter().map(|&b| Species(b)).collect(),
            self.num_species,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalkerCheckpoint {
        WalkerCheckpoint {
            e_min: -1.5,
            e_max: 0.25,
            num_bins: 3,
            ln_g: vec![0.0, 12.5, 3.25e-300],
            visits: vec![5, 0, 7],
            ever_visited: vec![true, false, true],
            species: vec![0, 1, 2, 3, 0, 1],
            num_species: 4,
            energy: -0.75,
            ln_f: 0.03125,
            total_moves: 123_456,
            stages: 9,
            one_over_t_phase: true,
            rt_last_boundary: -1,
            rt_crossings: 14,
            rt_crossing_moves: 98_765,
            rt_leg_start_moves: 120_000,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let cp = sample();
        let back = WalkerCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn rebuilders_reconstruct_state() {
        let cp = sample();
        assert_eq!(cp.grid().num_bins(), 3);
        assert_eq!(cp.dos().ln_g(), &cp.ln_g[..]);
        let h = cp.histogram();
        assert_eq!(h.visits(0), 5);
        assert!(!h.ever_visited(1));
        assert!(h.ever_visited(2));
        let config = cp.configuration();
        assert_eq!(config.num_sites(), 6);
        assert_eq!(config.species_at(3), Species(3));
    }

    #[test]
    fn rt_line_is_optional_for_old_checkpoints() {
        let cp = sample();
        let text = cp.encode();
        // Shape of a pre-adaptive v1 file: old header, no rt line, no
        // end sentinel.
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("rt ") && *l != "end")
            .map(|l| if l == "dtwl v2" { "dtwl v1" } else { l })
            .collect::<Vec<_>>()
            .join("\n");
        let back = WalkerCheckpoint::decode(&legacy).unwrap();
        assert_eq!(back.rt_last_boundary, 0);
        assert_eq!(back.rt_crossings, 0);
        assert_eq!(back.rt_crossing_moves, 0);
        assert_eq!(back.rt_leg_start_moves, 0);
        // Everything else restores as usual.
        assert_eq!(back.ln_g, cp.ln_g);
        assert_eq!(back.total_moves, cp.total_moves);
    }

    #[test]
    fn rejects_corruption() {
        let cp = sample();
        let text = cp.encode();
        assert_eq!(
            WalkerCheckpoint::decode("nope"),
            Err(CheckpointError::BadHeader)
        );
        let truncated: String = text.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(WalkerCheckpoint::decode(&truncated).is_err());
        let tampered = text.replace("visits 5 0 7", "visits 5 0");
        assert!(matches!(
            WalkerCheckpoint::decode(&tampered),
            Err(CheckpointError::Malformed(_))
        ));
    }
}
