//! Run reports and text/CSV rendering.

use dt_proposal::MoveStats;
use dt_rewl::{RecoveryStats, WindowReport};
use dt_telemetry::RankTelemetry;
use dt_thermo::{MicrocanonicalAccumulator, ThermoPoint};
use dt_wanglandau::DosEstimate;

/// Warren–Cowley SRO of one ordered species pair versus temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct SroCurve {
    /// Shell index.
    pub shell: usize,
    /// Species pair (indices into the material's species set).
    pub pair: (u8, u8),
    /// Human-readable pair label, e.g. `"Mo-Ta"`.
    pub label: String,
    /// `(T, α)` samples.
    pub points: Vec<(f64, f64)>,
}

/// Everything a DeepThermo run produces.
#[derive(Debug, Clone)]
pub struct DeepThermoReport {
    /// Normalized density of states (absolute: `Σ g = multinomial count`).
    pub dos: DosEstimate,
    /// Visited-bin mask aligned with `dos`.
    pub mask: Vec<bool>,
    /// `max ln g − min ln g` over visited bins — the paper's headline
    /// "range of the density of states" (≈10⁴ at N = 8192).
    pub ln_g_range: f64,
    /// Thermodynamic curve over the configured temperature grid.
    pub thermo: Vec<ThermoPoint>,
    /// Heat-capacity-peak estimate of the order–disorder transition (K).
    pub transition_temperature: f64,
    /// Peak `C_v/k_B` (per supercell).
    pub cv_peak: f64,
    /// Warren–Cowley SRO curves for every unlike pair, first shell.
    pub sro_curves: Vec<SroCurve>,
    /// Merged microcanonical pair-probability accumulator, binned on the
    /// DOS grid (`obs_dim = num_shells · m²`). Kept in the report so a
    /// converged run can be exported as a serving artifact and
    /// re-reweighted at any temperature later.
    pub sro: MicrocanonicalAccumulator,
    /// Per-window sampling reports.
    pub windows: Vec<WindowReport>,
    /// Whether every walker converged.
    pub converged: bool,
    /// Total MC moves across walkers.
    pub total_moves: u64,
    /// Sweeps per walker.
    pub sweeps: u64,
    /// Merged acceptance statistics across all walkers.
    pub stats: MoveStats,
    /// Ranks that died during the run (fault tolerance).
    pub lost_ranks: Vec<usize>,
    /// Checkpoint round the run resumed from, if it did.
    pub resumed_from: Option<u64>,
    /// Self-healing counters (supervised respawns, rejoin time,
    /// heartbeat misses); all-zero unless the run recovered a rank.
    pub recovery: RecoveryStats,
    /// Walker migrations performed by the dynamic rebalance planner;
    /// zero unless the run sampled with `rebalance_every > 0`.
    pub walkers_rebalanced: u64,
    /// Per-rank telemetry snapshots; empty unless the run sampled with
    /// `RewlConfig::telemetry` on (see `DeepThermoConfig::with_telemetry`).
    pub telemetry: Vec<RankTelemetry>,
}

impl DeepThermoReport {
    /// CSV of the thermodynamic curve: `T,U,Cv,F,S`.
    pub fn thermo_csv(&self) -> String {
        let mut s = String::from("T_K,U_eV,Cv_per_kB,F_eV,S_per_kB\n");
        for p in &self.thermo {
            s.push_str(&format!(
                "{:.2},{:.6},{:.6},{:.6},{:.6}\n",
                p.t, p.u, p.cv, p.f, p.s
            ));
        }
        s
    }

    /// CSV of the density of states over visited bins: `E,ln_g`.
    pub fn dos_csv(&self) -> String {
        let mut s = String::from("E_eV,ln_g\n");
        for (bin, &visited) in self.mask.iter().enumerate() {
            if visited {
                s.push_str(&format!(
                    "{:.6},{:.6}\n",
                    self.dos.grid().center(bin),
                    self.dos.ln_g_bin(bin)
                ));
            }
        }
        s
    }

    /// CSV of the SRO curves: `T,label,alpha`.
    pub fn sro_csv(&self) -> String {
        let mut s = String::from("T_K,pair,alpha\n");
        for curve in &self.sro_curves {
            for &(t, a) in &curve.points {
                s.push_str(&format!("{t:.2},{},{a:.6}\n", curve.label));
            }
        }
        s
    }

    /// The telemetry snapshots as JSONL (one JSON object per rank, per
    /// line); empty string when telemetry was off.
    pub fn telemetry_jsonl(&self) -> String {
        dt_telemetry::to_jsonl(&self.telemetry)
    }

    /// Human-readable per-rank phase-timing table; header-only when
    /// telemetry was off.
    pub fn phase_table(&self) -> String {
        dt_telemetry::phase_table(&self.telemetry)
    }

    /// Short human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "converged: {} (sweeps/walker: {}, total moves: {})\n",
            self.converged, self.sweeps, self.total_moves
        ));
        if let Some(round) = self.resumed_from {
            s.push_str(&format!("resumed from checkpoint round {round}\n"));
        }
        if !self.lost_ranks.is_empty() {
            s.push_str(&format!(
                "ranks lost during the run: {:?}\n",
                self.lost_ranks
            ));
        }
        if self.recovery.ranks_respawned > 0 {
            s.push_str(&format!(
                "ranks respawned: {} (rejoin {:.1} ms, heartbeat misses: {})\n",
                self.recovery.ranks_respawned,
                self.recovery.rejoin_duration_ns as f64 / 1e6,
                self.recovery.heartbeat_misses
            ));
        }
        s.push_str(&format!("ln g range: {:.1}\n", self.ln_g_range));
        s.push_str(&format!(
            "order-disorder transition: T_c ~ {:.0} K (Cv peak {:.2} kB)\n",
            self.transition_temperature, self.cv_peak
        ));
        for (kernel, proposed, accepted) in self.stats.iter() {
            s.push_str(&format!(
                "kernel {kernel}: {accepted}/{proposed} accepted ({:.1}%)\n",
                100.0 * accepted as f64 / proposed.max(1) as f64
            ));
        }
        if self.walkers_rebalanced > 0 {
            s.push_str(&format!(
                "walkers rebalanced: {}\n",
                self.walkers_rebalanced
            ));
        }
        let any_round_trips = self.windows.iter().any(|w| w.round_trips > 0);
        for w in &self.windows {
            s.push_str(&format!(
                "window {}: exchange rate {:.2} ({} of {})\n",
                w.window,
                w.exchange_rate(),
                w.exchange_accepted,
                w.exchange_attempts
            ));
            if any_round_trips {
                s.push_str(&format!(
                    "  round trips: {} (mean {} moves each)\n",
                    w.round_trips,
                    w.round_trip_moves / w.round_trips.max(1)
                ));
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_wanglandau::EnergyGrid;

    fn dummy() -> DeepThermoReport {
        DeepThermoReport {
            dos: DosEstimate::from_parts(EnergyGrid::new(0.0, 1.0, 2), vec![0.0, 1.0]),
            mask: vec![true, false],
            ln_g_range: 1.0,
            thermo: vec![ThermoPoint {
                t: 300.0,
                u: -1.0,
                cv: 2.0,
                f: -1.5,
                s: 0.5,
            }],
            transition_temperature: 300.0,
            cv_peak: 2.0,
            sro_curves: vec![SroCurve {
                shell: 0,
                pair: (1, 2),
                label: "Mo-Ta".into(),
                points: vec![(300.0, -0.4)],
            }],
            sro: MicrocanonicalAccumulator::new(2, 1),
            windows: vec![],
            converged: true,
            total_moves: 10,
            sweeps: 1,
            stats: MoveStats::new(),
            lost_ranks: vec![],
            resumed_from: None,
            recovery: RecoveryStats::default(),
            walkers_rebalanced: 0,
            telemetry: vec![],
        }
    }

    #[test]
    fn csv_renders_have_headers_and_rows() {
        let r = dummy();
        assert!(r.thermo_csv().starts_with("T_K,"));
        assert_eq!(r.thermo_csv().lines().count(), 2);
        // Only visited bins in the DOS CSV.
        assert_eq!(r.dos_csv().lines().count(), 2);
        assert!(r.sro_csv().contains("Mo-Ta"));
    }

    #[test]
    fn summary_mentions_tc() {
        assert!(dummy().summary().contains("T_c ~ 300"));
    }

    #[test]
    fn summary_surfaces_adaptive_counters_only_when_nonzero() {
        let mut r = dummy();
        r.windows = vec![WindowReport {
            window: 0,
            exchange_attempts: 4,
            exchange_accepted: 2,
            stats: MoveStats::new(),
            converged: true,
            ln_f: 1e-4,
            lost_walkers: 0,
            round_trips: 0,
            round_trip_moves: 0,
        }];
        let s = r.summary();
        assert!(!s.contains("walkers rebalanced"), "{s}");
        assert!(!s.contains("round trips"), "{s}");
        r.walkers_rebalanced = 3;
        r.windows[0].round_trips = 12;
        r.windows[0].round_trip_moves = 600;
        let s = r.summary();
        assert!(s.contains("walkers rebalanced: 3"), "{s}");
        assert!(s.contains("round trips: 12 (mean 50 moves each)"), "{s}");
    }

    #[test]
    fn summary_surfaces_recovery_counters_only_when_nonzero() {
        let mut r = dummy();
        assert!(!r.summary().contains("ranks respawned"));
        r.recovery = RecoveryStats {
            ranks_respawned: 2,
            rejoin_duration_ns: 1_500_000,
            heartbeat_misses: 3,
        };
        let s = r.summary();
        assert!(s.contains("ranks respawned: 2"), "{s}");
        assert!(s.contains("heartbeat misses: 3"), "{s}");
    }
}
