//! The DeepThermo pipeline: material → parallel sampling → thermodynamics.

use dt_hamiltonian::{nbmotaw, EnergyModel, MaterialError, PairHamiltonian, KB_EV_PER_K};
use dt_hpc::{Communicator, Transport};
use dt_lattice::{Composition, NeighborTable, Species, Supercell};
use dt_proposal::MoveStats;
use dt_rewl::{run_rewl, run_rewl_on, RewlOutput};
use dt_thermo::{canonical_curve, find_cv_peak};
use dt_wanglandau::explore_energy_range;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::DeepThermoConfig;
use crate::error::{ConfigError, DeepThermoError};
use crate::report::{DeepThermoReport, SroCurve};

/// A configured DeepThermo run: the material, its energy model, and the
/// sampling plan.
pub struct DeepThermo {
    cfg: DeepThermoConfig,
    cell: Supercell,
    neighbors: NeighborTable,
    comp: Composition,
    model: PairHamiltonian,
}

impl DeepThermo {
    /// The pipeline over the configured material's own EPI Hamiltonian
    /// and composition — the general entry point. The material can come
    /// from the registry or a `dtmat` file; nothing here assumes BCC,
    /// two shells, four species, or an equiatomic composition.
    ///
    /// # Errors
    /// [`DeepThermoError::Config`] when the configuration is
    /// inconsistent; [`DeepThermoError::Material`] when the structure
    /// cannot expose the requested shells or the composition ratios are
    /// invalid.
    pub fn from_material(cfg: DeepThermoConfig) -> Result<Self, DeepThermoError> {
        let model = cfg.material.material().hamiltonian().clone();
        DeepThermo::with_model(cfg, model)
    }

    /// Equiatomic NbMoTaW with the built-in EPI Hamiltonian — a thin
    /// compatibility wrapper; prefer [`DeepThermo::from_material`],
    /// which honors whatever material the config carries.
    ///
    /// # Errors
    /// [`DeepThermoError::Config`] when the configuration is
    /// inconsistent (see [`DeepThermoConfig::validate`]).
    pub fn nbmotaw(cfg: DeepThermoConfig) -> Result<Self, DeepThermoError> {
        let model = nbmotaw();
        DeepThermo::with_model(cfg, model)
    }

    /// Any pair Hamiltonian over the configured material.
    ///
    /// # Errors
    /// [`DeepThermoError::Config`] when the configuration is
    /// inconsistent or the model's species count disagrees with the
    /// material's.
    pub fn with_model(
        cfg: DeepThermoConfig,
        model: PairHamiltonian,
    ) -> Result<Self, DeepThermoError> {
        cfg.validate()?;
        if model.num_species() != cfg.material.species().len() {
            return Err(ConfigError::SpeciesMismatch {
                model: model.num_species(),
                material: cfg.material.species().len(),
            }
            .into());
        }
        let cell = Supercell::cubic(cfg.material.structure().clone(), cfg.material.l());
        let neighbors = cell
            .try_neighbor_table(model.num_shells())
            .map_err(MaterialError::from)?;
        let comp = cfg.material.composition()?;
        Ok(DeepThermo {
            cfg,
            cell,
            neighbors,
            comp,
            model,
        })
    }

    /// The supercell.
    pub fn supercell(&self) -> &Supercell {
        &self.cell
    }

    /// The neighbor table.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// The composition.
    pub fn composition(&self) -> &Composition {
        &self.comp
    }

    /// The energy model.
    pub fn model(&self) -> &PairHamiltonian {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &DeepThermoConfig {
        &self.cfg
    }

    /// Run the full pipeline: range discovery → REWL sampling → DOS
    /// normalization → thermodynamics + SRO curves.
    ///
    /// # Errors
    /// [`DeepThermoError::Sampling`] when the parallel sampler fails
    /// unrecoverably, [`DeepThermoError::NoVisitedBins`] when it
    /// produces nothing to evaluate.
    pub fn run(&self) -> Result<DeepThermoReport, DeepThermoError> {
        // 1. Discover the reachable energy range.
        let range = self.discover_range();

        // 2. Parallel sampling.
        let out = run_rewl(
            &self.model,
            &self.neighbors,
            &self.comp,
            range,
            &self.cfg.rewl,
        )?;
        self.evaluate(out)
    }

    /// Run the full pipeline with periodic cluster checkpoints under
    /// `dir`, resuming from the newest consistent snapshot when one
    /// exists. Range discovery is seeded from the config, so a restarted
    /// run rebuilds the same windows and the snapshot stays valid.
    ///
    /// # Errors
    /// [`DeepThermoError::Io`] when the checkpoint directory cannot be
    /// created, plus everything [`DeepThermo::run`] can return.
    pub fn run_resumable(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<DeepThermoReport, DeepThermoError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| DeepThermoError::Io {
            path: dir.clone(),
            message: e.to_string(),
        })?;
        let range = self.discover_range();
        let mut rewl_cfg = self.cfg.rewl.clone();
        if rewl_cfg.checkpoint.is_none() {
            rewl_cfg.checkpoint = Some(dt_rewl::CheckpointSpec::new(dir));
        }
        let out = run_rewl(&self.model, &self.neighbors, &self.comp, range, &rewl_cfg)?;
        self.evaluate(out)
    }

    /// Discover the reachable energy range by seeded quenches. The RNG
    /// is derived from the config seed alone, so every process of a
    /// multi-process cluster (and every restart of a resumable run)
    /// rebuilds the exact same windows.
    fn discover_range(&self) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.rewl.seed ^ 0x5eed);
        explore_energy_range(
            &self.model,
            &self.neighbors,
            &self.comp,
            self.cfg.range_quench_sweeps,
            self.cfg.range_pad,
            &mut rng,
        )
    }

    /// Run ONE rank of a multi-process cluster over a caller-supplied
    /// communicator — the per-process pipeline entry behind
    /// `deepthermo run --cluster tcp:<n>`. Every process performs the
    /// same seeded range discovery (no coordination needed), samples its
    /// rank via [`dt_rewl::run_rewl_on`], and then rank 0 — the gather
    /// root — evaluates the merged output into the usual report. All
    /// other ranks return `Ok(None)` once their pieces are shipped.
    ///
    /// Checkpointing honors `config().rewl.checkpoint` exactly as the
    /// in-process driver does: every rank snapshots into the shared
    /// directory and a rerun resumes from the newest consistent round.
    ///
    /// # Errors
    /// Everything [`DeepThermo::run`] can return; rank deaths during
    /// sampling degrade the run instead of failing it unless rank 0
    /// itself is lost.
    pub fn run_cluster_rank<T: Transport>(
        &self,
        comm: Communicator<T>,
    ) -> Result<Option<DeepThermoReport>, DeepThermoError> {
        let range = self.discover_range();
        let run = run_rewl_on(
            comm,
            &self.model,
            &self.neighbors,
            &self.comp,
            range,
            &self.cfg.rewl,
        )?;
        match run.output {
            Some(out) => self.evaluate(out).map(Some),
            None => Ok(None),
        }
    }

    /// Export a finished run into `registry_dir` in the `dt-serve`
    /// artifact-registry format, under the conventional id
    /// `material-lN-seedS`. The artifact carries the normalized
    /// `ln g(E)` with its visited mask and the microcanonical SRO
    /// accumulator, so `deepthermo serve` can answer thermo/SRO queries
    /// bit-identically to this report. Returns the artifact directory.
    ///
    /// # Errors
    /// [`DeepThermoError::Io`] when the registry directory cannot be
    /// written.
    pub fn export_artifact(
        &self,
        report: &DeepThermoReport,
        registry_dir: impl AsRef<std::path::Path>,
    ) -> Result<std::path::PathBuf, DeepThermoError> {
        let mat = self.cfg.material.material();
        let manifest = dt_serve::ArtifactManifest {
            id: dt_serve::ArtifactManifest::conventional_id(
                mat.display_name(),
                self.cfg.material.l(),
                self.cfg.rewl.seed,
            ),
            material: mat.display_name().to_string(),
            material_key: mat.key().to_string(),
            structure: self.cfg.material.structure().name().to_string(),
            l: self.cfg.material.l(),
            num_sites: self.cell.num_sites(),
            species: self
                .cfg
                .material
                .species()
                .iter()
                .map(|(_, name)| name.to_string())
                .collect(),
            counts: self.comp.counts().to_vec(),
            seed: self.cfg.rewl.seed,
            num_shells: self.cfg.material.num_shells(),
            sweeps: report.sweeps,
            converged: report.converged,
        };
        let artifact = dt_serve::Artifact {
            manifest,
            grid: report.dos.grid().clone(),
            ln_g: (0..report.dos.grid().num_bins())
                .map(|b| report.dos.ln_g_bin(b))
                .collect(),
            mask: report.mask.clone(),
            sro: Some(report.sro.clone()),
            surrogate_text: None,
        };
        artifact
            .save(registry_dir.as_ref())
            .map_err(|e| DeepThermoError::Io {
                path: registry_dir.as_ref().to_path_buf(),
                message: e.to_string(),
            })
    }

    /// Turn a raw REWL output into the thermodynamic report (exposed so
    /// benchmarks can re-evaluate saved outputs).
    ///
    /// # Errors
    /// [`DeepThermoError::NoVisitedBins`] when the output visited no
    /// energy bins at all.
    pub fn evaluate(&self, out: RewlOutput) -> Result<DeepThermoReport, DeepThermoError> {
        let mut dos = out.dos.clone();
        dos.normalize_total(self.comp.ln_num_configurations(), Some(&out.mask));
        let ln_g_range = dos.ln_g_range(Some(&out.mask));

        // Visited (E, ln g) pairs drive every canonical sum.
        let mut energies = Vec::new();
        let mut ln_g = Vec::new();
        for (bin, &vis) in out.mask.iter().enumerate() {
            if vis {
                energies.push(dos.grid().center(bin));
                ln_g.push(dos.ln_g_bin(bin));
            }
        }
        if energies.is_empty() {
            return Err(DeepThermoError::NoVisitedBins);
        }
        let thermo = canonical_curve(&energies, &ln_g, &self.cfg.temperatures, KB_EV_PER_K);
        let (tc, cv_peak) = find_cv_peak(&thermo);

        // SRO(T) for every unlike first-shell pair by canonical
        // reweighting of the microcanonical pair probabilities.
        let m = self.comp.num_species();
        let fractions = self.comp.fractions();
        let grid_energies: Vec<f64> = (0..dos.grid().num_bins())
            .map(|b| dos.grid().center(b))
            .collect();
        let grid_ln_g: Vec<f64> = (0..dos.grid().num_bins())
            .map(|b| {
                if out.mask[b] {
                    dos.ln_g_bin(b)
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        let mut sro_curves = Vec::new();
        for a in 0..m as u8 {
            for b in (a + 1)..m as u8 {
                let mut points = Vec::with_capacity(self.cfg.temperatures.len());
                for &t in &self.cfg.temperatures {
                    let beta = 1.0 / (KB_EV_PER_K * t);
                    let mean = out.sro.canonical_average(&grid_energies, &grid_ln_g, beta);
                    // First shell directed probability p(a, b).
                    let p = mean[a as usize * m + b as usize];
                    let ca_cb = fractions[a as usize] * fractions[b as usize];
                    points.push((t, 1.0 - p / ca_cb));
                }
                let label = format!(
                    "{}-{}",
                    self.cfg.material.species().name(Species(a)),
                    self.cfg.material.species().name(Species(b))
                );
                sro_curves.push(SroCurve {
                    shell: 0,
                    pair: (a, b),
                    label,
                    points,
                });
            }
        }

        let mut stats = MoveStats::new();
        for w in &out.windows {
            stats.merge(&w.stats);
        }
        Ok(DeepThermoReport {
            dos,
            mask: out.mask,
            ln_g_range,
            thermo,
            transition_temperature: tc,
            cv_peak,
            sro_curves,
            sro: out.sro,
            windows: out.windows,
            converged: out.converged,
            total_moves: out.total_moves,
            sweeps: out.sweeps,
            stats,
            lost_ranks: out.lost_ranks,
            resumed_from: out.resumed_from,
            recovery: out.recovery,
            walkers_rebalanced: out.walkers_rebalanced,
            telemetry: out.telemetry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeepThermoConfig;

    #[test]
    fn quick_demo_runs_end_to_end() {
        let report = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo())
            .unwrap()
            .run()
            .unwrap();
        assert!(report.converged, "demo run should converge");
        // DOS range scales like N ln 4: for N=54, ≈ 75 ln-units; visited
        // bins exclude the extremes so expect a sizeable fraction.
        assert!(report.ln_g_range > 20.0, "ln g range {}", report.ln_g_range);
        // Physical sanity of the thermodynamic curve.
        assert!(report.thermo.iter().all(|p| p.cv >= 0.0));
        let u_cold = report.thermo.first().unwrap().u;
        let u_hot = report.thermo.last().unwrap().u;
        assert!(u_hot > u_cold, "energy must rise with temperature");
        // Mo-Ta must be the most strongly ordered pair at low T.
        let mo_ta = report
            .sro_curves
            .iter()
            .find(|c| c.label == "Mo-Ta")
            .expect("Mo-Ta curve");
        assert!(
            mo_ta.points.first().unwrap().1 < -0.1,
            "Mo-Ta SRO at low T: {}",
            mo_ta.points.first().unwrap().1
        );
    }

    #[test]
    fn resumable_run_writes_checkpoints() {
        let dir = std::env::temp_dir().join(format!("dtcore-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo())
            .unwrap()
            .run_resumable(&dir)
            .unwrap();
        assert!(report.converged);
        assert!(
            std::fs::read_dir(&dir).unwrap().count() > 0,
            "resumable run must leave a snapshot behind"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exported_artifact_reproduces_the_report_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("dtcore-export-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let runner = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo().with_seed(11)).unwrap();
        let report = runner.run().unwrap();
        let adir = runner.export_artifact(&report, &dir).unwrap();

        let art = dt_serve::Artifact::load(&adir).unwrap();
        assert_eq!(art.manifest.material, "NbMoTaW");
        assert_eq!(art.manifest.seed, 11);
        assert_eq!(art.manifest.converged, report.converged);
        assert!(art.sro.is_some());

        // A thermo curve evaluated on the loaded artifact must be
        // bit-identical to the report's — the serving contract.
        let (e, lg) = art.visited_dos();
        let curve = canonical_curve(&e, &lg, &runner.config().temperatures, KB_EV_PER_K);
        assert_eq!(curve.len(), report.thermo.len());
        for (a, b) in curve.iter().zip(&report.thermo) {
            assert_eq!(a.t.to_bits(), b.t.to_bits());
            assert_eq!(a.u.to_bits(), b.u.to_bits());
            assert_eq!(a.cv.to_bits(), b.cv.to_bits());
            assert_eq!(a.f.to_bits(), b.f.to_bits());
            assert_eq!(a.s.to_bits(), b.s.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_csvs_are_well_formed() {
        let report = DeepThermo::nbmotaw(DeepThermoConfig::quick_demo().with_seed(5))
            .unwrap()
            .run()
            .unwrap();
        let csv = report.thermo_csv();
        assert_eq!(csv.lines().count(), 61); // header + 60 temperatures
        assert!(report.dos_csv().lines().count() > 10);
        assert!(report.summary().contains("T_c"));
    }
}
