//! The `deepthermo` command-line interface.
//!
//! ```text
//! deepthermo run   [--l 3] [--kernel deep|local|random] [--seed 2023]
//!                  [--lnf 1e-4] [--max-sweeps 300000] [--windows 2]
//!                  [--walkers 2] [--tmin 100] [--tmax 3000] [--out DIR]
//!                  [--checkpoint DIR] [--telemetry]
//! deepthermo info  [--l 3]
//! ```
//!
//! With `--checkpoint DIR` the cluster snapshots itself into `DIR` as it
//! runs, and a rerun with the same flags resumes from the newest
//! consistent snapshot instead of starting over.
//!
//! `run` executes the full pipeline on equiatomic NbMoTaW and writes
//! `thermo.csv`, `dos.csv`, `sro.csv`, and `summary.txt` into `--out`
//! (default `deepthermo-out/`). With `--telemetry` it also records
//! per-rank phase timings, prints the phase table, and writes
//! `telemetry.jsonl` (one JSON object per rank, per line).
//!
//! Pipeline failures (inconsistent flags, a dead root rank, unreadable
//! checkpoint directories) are rendered with their full error chain and
//! exit nonzero instead of panicking.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use deepthermo::rewl::{DeepSpec, KernelSpec};
use deepthermo::{DeepThermo, DeepThermoConfig, DeepThermoError, MaterialSpec};

fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_arg(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Render a pipeline error with its full source chain.
fn render_error(e: &DeepThermoError) {
    eprintln!("error: {e}");
    let mut source = std::error::Error::source(e);
    while let Some(cause) = source {
        eprintln!("  caused by: {cause}");
        source = cause.source();
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "run" => run(),
        "info" => info(),
        _ => {
            eprintln!("usage: deepthermo <run|info> [flags]   (see --help in README)");
            ExitCode::FAILURE
        }
    }
}

fn build_config() -> DeepThermoConfig {
    let l: usize = arg("--l", 3);
    let mut cfg = DeepThermoConfig::quick_demo().with_seed(arg("--seed", 2023));
    cfg.material = MaterialSpec::nbmotaw(l);
    cfg.rewl.num_windows = arg("--windows", 2);
    cfg.rewl.walkers_per_window = arg("--walkers", 2);
    cfg.rewl.num_bins = arg("--bins", (16 * l * l).min(512));
    cfg.rewl.wl.ln_f_final = arg("--lnf", 1e-4);
    cfg.rewl.max_sweeps = arg("--max-sweeps", 300_000u64);
    cfg.temperatures = dt_thermo::temperature_grid(
        arg("--tmin", 100.0),
        arg("--tmax", 3000.0),
        arg("--tpoints", 100),
    );
    let kernel: String = arg("--kernel", "deep".to_string());
    cfg.rewl.kernel = match kernel.as_str() {
        "local" => KernelSpec::LocalSwap,
        "random" => KernelSpec::RandomGlobal {
            k: arg("--k", 12),
            weight: 0.2,
        },
        _ => KernelSpec::Deep(Box::new(DeepSpec {
            proposal: deepthermo::proposal::DeepProposalConfig {
                k: arg("--k", 12),
                hidden: vec![32, 32],
            },
            deep_weight: 0.15,
            ..DeepSpec::default()
        })),
    };
    cfg.with_telemetry(has_flag("--telemetry"))
}

fn info() -> ExitCode {
    let cfg = build_config();
    let runner = match DeepThermo::nbmotaw(cfg) {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let comp = runner.composition();
    println!("material: NbMoTaW (equiatomic) on BCC");
    println!("sites: {}", comp.num_sites());
    println!(
        "configuration space: e^{:.1} states",
        comp.ln_num_configurations()
    );
    println!(
        "windows x walkers: {} x {}",
        runner.config().rewl.num_windows,
        runner.config().rewl.walkers_per_window
    );
    println!("kernel: {}", runner.config().rewl.kernel.label());
    ExitCode::SUCCESS
}

fn run() -> ExitCode {
    let out_dir: PathBuf = PathBuf::from(arg("--out", "deepthermo-out".to_string()));
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let cfg = build_config();
    println!(
        "deepthermo: NbMoTaW N={}, kernel={}, {} windows x {} walkers, seed {}",
        cfg.material.num_sites(),
        cfg.rewl.kernel.label(),
        cfg.rewl.num_windows,
        cfg.rewl.walkers_per_window,
        cfg.rewl.seed
    );
    let start = std::time::Instant::now();
    let runner = match DeepThermo::nbmotaw(cfg) {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let outcome = match opt_arg("--checkpoint") {
        Some(dir) => {
            println!("checkpointing into {dir} (reruns resume from the newest snapshot)");
            runner.run_resumable(dir)
        }
        None => runner.run(),
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sampling finished in {:.1} s ({} total moves)",
        start.elapsed().as_secs_f64(),
        report.total_moves
    );
    print!("{}", report.summary());
    if !report.telemetry.is_empty() {
        println!("{}", report.phase_table());
    }

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(out_dir.join(name), contents)
    };
    let mut result = write("thermo.csv", report.thermo_csv())
        .and_then(|()| write("dos.csv", report.dos_csv()))
        .and_then(|()| write("sro.csv", report.sro_csv()))
        .and_then(|()| write("summary.txt", report.summary()));
    let mut written = "thermo.csv, dos.csv, sro.csv, summary.txt".to_string();
    if !report.telemetry.is_empty() {
        result = result.and_then(|()| write("telemetry.jsonl", report.telemetry_jsonl()));
        written.push_str(", telemetry.jsonl");
    }
    match result {
        Ok(()) => {
            println!("wrote {written} to {}", out_dir.display());
            if !report.converged {
                eprintln!("warning: run hit max sweeps before ln f target");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write outputs: {e}");
            ExitCode::FAILURE
        }
    }
}
