//! The `deepthermo` command-line interface.
//!
//! Run `deepthermo help` for the full usage text. Modes:
//!
//! * `run` — execute the full pipeline on equiatomic NbMoTaW and write
//!   `thermo.csv`, `dos.csv`, `sro.csv`, and `summary.txt` into `--out`.
//!   With `--checkpoint DIR` the cluster snapshots itself as it runs and
//!   a rerun resumes from the newest consistent snapshot. With
//!   `--telemetry` it records per-rank phase timings. With
//!   `--export-artifact DIR` the converged run is also exported into a
//!   serving registry.
//! * `info` — print the configured material and sampling plan.
//! * `serve` — load an artifact registry and answer thermodynamics
//!   queries over HTTP until `POST /v1/shutdown` (see DESIGN.md,
//!   "Serving architecture"). With `--shards N` the process becomes a
//!   router and re-executes itself as N shard processes, each serving a
//!   disjoint consistent-hash slice of the registry (DESIGN.md,
//!   "Serving fleet").
//! * `route` / `shard` — the two fleet tiers as standalone modes, for
//!   deployments where shards run on their own hosts: `route` binds the
//!   rendezvous and fronts the fleet, `shard` dials in as one rank.
//! * `fixture` — write a synthetic demo artifact into a registry, so
//!   `serve` can be exercised without a converged run.
//!
//! Pipeline failures (inconsistent flags, a dead root rank, unreadable
//! checkpoint directories) are rendered with their full error chain and
//! exit nonzero instead of panicking.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use deepthermo::cluster::{self, ClusterSpec, RecoveryPolicy, WorkerOutcome};
use deepthermo::hamiltonian::Material;
use deepthermo::hpc::{FaultEvent, FaultPlan, TcpRendezvous, TcpTransport};
use deepthermo::rewl::{CheckpointSpec, DeepSpec, KernelSpec};
use deepthermo::{DeepThermo, DeepThermoConfig, DeepThermoError, DeepThermoReport, MaterialSpec};
use dt_serve::{
    run_shard, ArtifactRegistry, Router, RouterConfig, ServeConfig, Server, ShardConfig,
};

/// Hidden flag carrying a shard's rank when `serve --shards N` re-execs
/// itself as the shard tier (mirrors [`cluster::WORKER_RANK_FLAG`]).
const SHARD_RANK_FLAG: &str = "--shard-rank";

const USAGE: &str = "\
deepthermo — deep-learning accelerated parallel Monte Carlo for HEA thermodynamics

usage: deepthermo <mode> [flags]

modes:
  run       Sample the configured material and write thermo/DOS/SRO curves.
  info      Print the configured material and sampling plan.
  serve     Serve converged artifacts over an HTTP/JSON API; with
            --shards N, boot a sharded fleet (router + N shard
            processes) instead of a single server.
  route     Run only the router tier of a fleet, rendezvousing with
            externally launched shards.
  shard     Run one shard of a fleet, dialing a router's rendezvous.
  fixture   Write a synthetic demo artifact into a registry.
  help      Show this message.

run / info flags:
  --material NAME|PATH   alloy system: a registry name (nbmotaw, crconi)
                         or a path to a `dtmat v1` material file
                                                      (default nbmotaw)
  --l N                  supercell edge in unit cells (default 3)
  --kernel K             deep | local | random        (default deep)
  --seed S               master RNG seed              (default 2023)
  --windows N            REWL energy windows          (default 2)
  --walkers N            walkers per window           (default 2)
  --bins N               global energy bins           (default 16·L², ≤512)
  --lnf X                final ln f target            (default 1e-4)
  --max-sweeps N         sweeps budget per walker     (default 300000)
  --tmin K --tmax K      temperature range            (default 100..3000)
  --tpoints N            temperature grid points      (default 100)
  --out DIR              output directory             (default deepthermo-out)
  --checkpoint DIR       snapshot into DIR and resume from it on rerun
  --export-artifact DIR  also export the run into a serving registry
  --telemetry            record per-rank phase timings
  --adaptive-windows     place window boundaries by equal estimated
                         diffusion cost (cheap pilot pass) instead of
                         equal widths
  --rebalance-every N    reassign walkers from fast windows to slow ones
                         every N exchange rounds      (default 0 = off)
  --cluster tcp:N        run N ranks as separate processes over loopback
                         TCP (N must equal windows x walkers); the result
                         is bit-identical to the in-process run
  --kill R:ROUND         (with --cluster) crash worker rank R at exchange
                         round ROUND to exercise degraded mode
  --recover              (with --cluster) self-heal: supervise workers,
                         respawn dead ranks with backoff, and rejoin them
                         from their checkpoints — a recovered run is
                         bit-identical to a fault-free one
  --max-restarts N       (with --recover) respawn budget per rank; after
                         that the survivors degrade     (default 3)
  --chaos-seed S         (with --cluster) deterministic multi-fault
                         schedule (kill + message drops/delays) derived
                         entirely from S; recorded into the checkpoint
                         manifest and verified on resume
  --chaos-rounds N       (with --chaos-seed) rounds the schedule spans
                                                        (default 20)

serve flags:
  --registry DIR         artifact registry to load    (default deepthermo-registry)
  --addr HOST:PORT       listen address               (default 127.0.0.1:8080)
  --serve-workers N      worker threads               (default 4)
  --queue-depth N        bounded admission queue      (default 128)
  --cache N              /v1/thermo LRU cache entries (default 256)
  --shards N             boot a fleet: this process becomes the router
                         and re-executes itself as N shard processes,
                         each owning a disjoint hash-ring slice of the
                         registry                     (default 0 = single server)

route flags (plus the serve flags above, minus --registry):
  --rendezvous HOST:PORT address to bind for shard registration (required)
  --shards N             how many shards will dial in (required)

shard flags:
  --rendezvous HOST:PORT router rendezvous to dial    (required)
  --rank R               this shard's rank, 1..=N     (required)
  --shards N             fleet shard count            (required)
  --registry DIR         artifact registry to load    (default deepthermo-registry)
  --serve-workers N      worker threads               (default 2)
  --cache N              /v1/thermo LRU cache entries (default 256)

fixture flags:
  --registry DIR         registry to write into       (default deepthermo-registry)
  --tag NAME             artifact id suffix (fixture-NAME) (default demo)

endpoints (serve/route): GET /healthz /metrics /v1/artifacts,
POST /v1/thermo /v1/sro /v1/predict /v1/shutdown — see DESIGN.md.
";

fn arg<T: std::str::FromStr>(flag: &str, default: T) -> T {
    std::env::args()
        .skip_while(|a| a != flag)
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn opt_arg(flag: &str) -> Option<String> {
    std::env::args().skip_while(|a| a != flag).nth(1)
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Render a pipeline error with its full source chain.
fn render_error(e: &DeepThermoError) {
    eprintln!("error: {e}");
    let mut source = std::error::Error::source(e);
    while let Some(cause) = source {
        eprintln!("  caused by: {cause}");
        source = cause.source();
    }
}

fn main() -> ExitCode {
    // A worker process re-launched by `--cluster` carries hidden flags;
    // it runs its rank silently and never touches the filesystem.
    if opt_arg(cluster::WORKER_RANK_FLAG).is_some() {
        return worker();
    }
    // Likewise for a shard process re-launched by `serve --shards N`.
    if opt_arg(SHARD_RANK_FLAG).is_some() {
        return shard_child();
    }
    let mode = std::env::args().nth(1).unwrap_or_default();
    match mode.as_str() {
        "run" => run(),
        "info" => info(),
        "serve" => serve(),
        "route" => route_mode(),
        "shard" => shard_mode(),
        "fixture" => write_fixture(),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        "" => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
        other => {
            eprintln!("unknown mode {other:?}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Load the `--registry` directory, with a populate hint on failure.
fn load_registry() -> Result<ArtifactRegistry, ExitCode> {
    let registry_dir = arg("--registry", "deepthermo-registry".to_string());
    let registry = ArtifactRegistry::open(&registry_dir).map_err(|e| {
        eprintln!("error: {e}");
        eprintln!("  (populate a registry with `deepthermo run --export-artifact {registry_dir}` or `deepthermo fixture --registry {registry_dir}`)");
        ExitCode::FAILURE
    })?;
    if registry.is_empty() {
        eprintln!("warning: registry {registry_dir} holds no artifacts; only /healthz and /metrics will be useful");
    }
    Ok(registry)
}

/// The HTTP front-door configuration shared by `serve` and `route`.
fn serve_config() -> ServeConfig {
    ServeConfig {
        addr: arg("--addr", "127.0.0.1:8080".to_string()),
        workers: arg("--serve-workers", 4),
        queue_depth: arg("--queue-depth", 128),
        cache_capacity: arg("--cache", 256),
        ..ServeConfig::default()
    }
}

fn print_serve_stats(stats: &dt_serve::ServeStats) {
    println!(
        "drained: {} requests handled, {} connections admitted, {} rejected (429), {} deadline-expired (503), {} handler panics",
        stats.requests_handled,
        stats.connections_admitted,
        stats.queue_rejections,
        stats.deadline_expired,
        stats.handler_panics
    );
}

fn serve() -> ExitCode {
    let shards: usize = arg("--shards", 0);
    if shards > 0 {
        return serve_fleet(shards);
    }
    let registry = match load_registry() {
        Ok(r) => r,
        Err(code) => return code,
    };
    let loaded: Vec<String> = registry.ids().iter().map(|s| s.to_string()).collect();
    let handle = match Server::start(registry, serve_config()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "deepthermo serve: listening on http://{} ({} artifacts: {})",
        handle.local_addr(),
        loaded.len(),
        loaded.join(", ")
    );
    println!(
        "stop with: curl -X POST http://{}/v1/shutdown",
        handle.local_addr()
    );
    let stats = handle.join();
    print_serve_stats(&stats);
    ExitCode::SUCCESS
}

/// `serve --shards N`: become the router and re-execute this binary as
/// `N` shard processes, exactly like `run --cluster` re-executes its
/// workers. Each shard loads the same `--registry` and keeps only its
/// hash-ring slice; the router consistent-hashes requests across them.
fn serve_fleet(shards: usize) -> ExitCode {
    // Validate the registry up front for a friendly error, even though
    // only the shard processes actually serve from it.
    let registry = match load_registry() {
        Ok(r) => r,
        Err(code) => return code,
    };
    let rendezvous = match TcpRendezvous::bind("127.0.0.1:0") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot bind shard rendezvous: {e}");
            return ExitCode::FAILURE;
        }
    };
    let rendezvous_addr = match rendezvous.local_addr() {
        Ok(a) => a.to_string(),
        Err(e) => {
            eprintln!("error: cannot read rendezvous address: {e}");
            return ExitCode::FAILURE;
        }
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot locate own executable: {e}");
            return ExitCode::FAILURE;
        }
    };
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let mut children = Vec::with_capacity(shards);
    for rank in 1..=shards {
        let spawned = std::process::Command::new(&exe)
            .args(&passthrough)
            .arg(SHARD_RANK_FLAG)
            .arg(rank.to_string())
            .arg(cluster::RENDEZVOUS_FLAG)
            .arg(&rendezvous_addr)
            .spawn();
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                eprintln!("error: cannot spawn shard {}: {e}", rank - 1);
                for mut c in children {
                    let _ = c.kill();
                }
                return ExitCode::FAILURE;
            }
        }
    }
    let transport = match rendezvous.into_transport(shards + 1) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: fleet rendezvous failed: {e}");
            for mut c in children {
                let _ = c.kill();
            }
            return ExitCode::FAILURE;
        }
    };
    let config = RouterConfig {
        serve: serve_config(),
        ..RouterConfig::default()
    };
    let handle = match Router::start(transport, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            for mut c in children {
                let _ = c.kill();
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "deepthermo serve: router on http://{} fronting {shards} shard processes ({} artifacts sliced by consistent hashing)",
        handle.local_addr(),
        registry.len()
    );
    println!(
        "stop with: curl -X POST http://{}/v1/shutdown  (drains every shard first)",
        handle.local_addr()
    );
    let stats = handle.join();
    print_serve_stats(&stats);
    let mut failures = 0;
    for (shard, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("warning: shard {shard} exited abnormally: {status}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("warning: cannot reap shard {shard}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Entry point of a shard process re-launched by `serve --shards N`:
/// dial the rendezvous, serve our ring slice, exit when drained.
fn shard_child() -> ExitCode {
    let (Some(rank), Some(addr)) = (
        opt_arg(SHARD_RANK_FLAG).and_then(|v| v.parse::<usize>().ok()),
        opt_arg(cluster::RENDEZVOUS_FLAG),
    ) else {
        eprintln!("error: malformed shard invocation (these flags are internal)");
        return ExitCode::FAILURE;
    };
    let shards: usize = arg("--shards", 0);
    run_shard_process(rank, shards + 1, &addr, false)
}

/// `shard` mode: one externally managed shard of a fleet whose router
/// runs `deepthermo route` (or `serve --shards` on another host).
fn shard_mode() -> ExitCode {
    let Some(addr) = opt_arg(cluster::RENDEZVOUS_FLAG) else {
        eprintln!("error: shard mode needs --rendezvous HOST:PORT (the router's rendezvous)");
        return ExitCode::FAILURE;
    };
    let rank: usize = arg("--rank", 0);
    let shards: usize = arg("--shards", 0);
    if rank == 0 || shards == 0 || rank > shards {
        eprintln!("error: shard mode needs --rank R in 1..=N and --shards N");
        return ExitCode::FAILURE;
    }
    run_shard_process(rank, shards + 1, &addr, true)
}

fn run_shard_process(rank: usize, size: usize, addr: &str, verbose: bool) -> ExitCode {
    let registry = match load_registry() {
        Ok(r) => r,
        Err(code) => return code,
    };
    let transport = match TcpTransport::connect(addr, rank, size) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: shard rank {rank} cannot join the fleet at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ShardConfig {
        workers: arg("--serve-workers", 2),
        cache_capacity: arg("--cache", 256),
        ..ShardConfig::default()
    };
    if verbose {
        println!("shard {}: joined fleet at {addr} as rank {rank}", rank - 1);
    }
    match run_shard(transport, registry, &config) {
        Ok(stats) => {
            if verbose {
                println!(
                    "shard {} drained: {} artifacts owned, {} requests handled, {} handler panics",
                    rank - 1,
                    stats.artifacts,
                    stats.requests_handled,
                    stats.handler_panics
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `route` mode: only the router tier. Binds the rendezvous at the
/// given address, waits for `--shards N` externally launched shards to
/// dial in, then opens the HTTP front door.
fn route_mode() -> ExitCode {
    let Some(addr) = opt_arg(cluster::RENDEZVOUS_FLAG) else {
        eprintln!("error: route mode needs --rendezvous HOST:PORT to bind for shard registration");
        return ExitCode::FAILURE;
    };
    let shards: usize = arg("--shards", 0);
    if shards == 0 {
        eprintln!("error: route mode needs --shards N (how many shards will dial in)");
        return ExitCode::FAILURE;
    }
    let rendezvous = match TcpRendezvous::bind(&addr) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cannot bind rendezvous {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("route: waiting for {shards} shards at {addr} (start them with `deepthermo shard --rendezvous {addr} --shards {shards} --rank R`)");
    let transport = match rendezvous.into_transport(shards + 1) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: fleet rendezvous failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = RouterConfig {
        serve: serve_config(),
        ..RouterConfig::default()
    };
    let handle = match Router::start(transport, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "route: router on http://{} fronting {shards} shards",
        handle.local_addr()
    );
    let stats = handle.join();
    print_serve_stats(&stats);
    ExitCode::SUCCESS
}

fn write_fixture() -> ExitCode {
    let registry_dir = arg("--registry", "deepthermo-registry".to_string());
    let tag = arg("--tag", "demo".to_string());
    let artifact = dt_serve::fixture::fixture_artifact(&tag);
    match artifact.save(&registry_dir) {
        Ok(dir) => {
            println!(
                "wrote fixture artifact {} to {}",
                artifact.manifest.id,
                dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn build_config() -> Result<DeepThermoConfig, DeepThermoError> {
    let l: usize = arg("--l", 3);
    let material = Material::resolve(&arg("--material", "nbmotaw".to_string()))
        .map_err(DeepThermoError::from)?;
    let mut cfg = DeepThermoConfig::quick_demo().with_seed(arg("--seed", 2023));
    cfg.material = MaterialSpec::new(material, l);
    cfg.rewl.num_windows = arg("--windows", 2);
    cfg.rewl.walkers_per_window = arg("--walkers", 2);
    cfg.rewl.num_bins = arg("--bins", (16 * l * l).min(512));
    cfg.rewl.wl.ln_f_final = arg("--lnf", 1e-4);
    cfg.rewl.max_sweeps = arg("--max-sweeps", 300_000u64);
    cfg.temperatures = dt_thermo::temperature_grid(
        arg("--tmin", 100.0),
        arg("--tmax", 3000.0),
        arg("--tpoints", 100),
    );
    let kernel: String = arg("--kernel", "deep".to_string());
    cfg.rewl.kernel = match kernel.as_str() {
        "local" => KernelSpec::LocalSwap,
        "random" => KernelSpec::RandomGlobal {
            k: arg("--k", 12),
            weight: 0.2,
        },
        _ => KernelSpec::Deep(Box::new(DeepSpec {
            proposal: deepthermo::proposal::DeepProposalConfig {
                k: arg("--k", 12),
                hidden: vec![32, 32],
            },
            deep_weight: 0.15,
            ..DeepSpec::default()
        })),
    };
    cfg.rewl.recovery = has_flag("--recover");
    cfg.rewl.respawns = arg(cluster::RESPAWN_COUNT_FLAG, 0u64);
    cfg.rewl.adaptive_windows = has_flag("--adaptive-windows");
    cfg.rewl.rebalance_every = arg("--rebalance-every", 0u64);
    Ok(cfg.with_telemetry(has_flag("--telemetry")))
}

/// Recovery needs a checkpoint for the replacement to rejoin from; when
/// `--recover` is on and no `--checkpoint` was given, every process of
/// the cluster derives the same default directory under `--out`.
fn apply_recovery_defaults(cfg: &mut DeepThermoConfig) {
    if cfg.rewl.recovery && cfg.rewl.checkpoint.is_none() {
        let out = arg("--out", "deepthermo-out".to_string());
        cfg.rewl.checkpoint = Some(CheckpointSpec::new(PathBuf::from(out).join("checkpoints")));
    }
}

fn info() -> ExitCode {
    let runner = match build_config().and_then(DeepThermo::from_material) {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let comp = runner.composition();
    let mat = runner.config().material.material();
    println!(
        "material: {} ({}) on {}",
        mat.display_name(),
        mat.composition_summary(),
        mat.structure().name().to_uppercase()
    );
    println!(
        "species: {}",
        mat.species()
            .iter()
            .map(|(_, name)| name)
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("shells: {}", mat.num_shells());
    println!("sites: {}", comp.num_sites());
    println!(
        "configuration space: e^{:.1} states",
        comp.ln_num_configurations()
    );
    println!(
        "windows x walkers: {} x {}",
        runner.config().rewl.num_windows,
        runner.config().rewl.walkers_per_window
    );
    println!("kernel: {}", runner.config().rewl.kernel.label());
    ExitCode::SUCCESS
}

/// In cluster mode every process must hold the same checkpoint spec in
/// its config *before* sampling starts (there is no shared
/// `run_resumable` call to inject it), so `--checkpoint` is applied to
/// the config directly.
fn apply_cluster_checkpoint(cfg: &mut DeepThermoConfig) {
    if let Some(dir) = opt_arg("--checkpoint") {
        if cfg.rewl.checkpoint.is_none() {
            cfg.rewl.checkpoint = Some(CheckpointSpec::new(dir));
        }
    }
}

/// The fault plan shared by every process of a cluster run: a seeded
/// chaos schedule (when `--chaos-seed` is given), plus any explicit
/// `--kill` event.
fn cluster_fault_plan(size: usize) -> Result<FaultPlan, DeepThermoError> {
    let mut plan = match opt_arg("--chaos-seed") {
        Some(v) => {
            let seed: u64 = v.parse().map_err(|_| DeepThermoError::Cluster {
                message: format!("bad --chaos-seed value {v:?} (expected an integer)"),
            })?;
            FaultPlan::chaos(seed, size, arg("--chaos-rounds", 20u64))
        }
        None => FaultPlan::none(),
    };
    if let Some(v) = opt_arg("--kill") {
        let kill =
            cluster::parse_kill(&v).map_err(|message| DeepThermoError::Cluster { message })?;
        for e in kill.events() {
            if let FaultEvent::KillAtRound { rank, round } = e {
                plan = plan.kill_at_round(*rank, *round);
            }
        }
    }
    Ok(plan)
}

/// Entry point of a `--worker-rank` process: dial the rendezvous, run
/// one rank, exit. A simulated crash exits with a reserved code so the
/// root can tell it apart from a real failure.
fn worker() -> ExitCode {
    let (rank, rendezvous, spec) = match (
        opt_arg(cluster::WORKER_RANK_FLAG).and_then(|v| v.parse::<usize>().ok()),
        opt_arg(cluster::RENDEZVOUS_FLAG),
        opt_arg("--cluster").map(|v| ClusterSpec::parse(&v)),
    ) {
        (Some(rank), Some(addr), Some(Ok(spec))) => (rank, addr, spec),
        _ => {
            eprintln!("error: malformed worker invocation (these flags are internal)");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = match build_config() {
        Ok(c) => c,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    apply_cluster_checkpoint(&mut cfg);
    apply_recovery_defaults(&mut cfg);
    let recover = cfg.rewl.recovery;
    let respawns = cfg.rewl.respawns;
    let plan = match cluster_fault_plan(spec.size) {
        Ok(p) => p,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let runner = match DeepThermo::from_material(cfg) {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let outcome = if recover {
        cluster::run_cluster_worker_recovering(
            &runner,
            rank,
            spec.size,
            &rendezvous,
            plan,
            respawns,
        )
    } else {
        cluster::run_cluster_worker(&runner, rank, spec.size, &rendezvous, plan)
    };
    match outcome {
        Ok(WorkerOutcome::Killed) => ExitCode::from(cluster::KILLED_EXIT_CODE),
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            render_error(&e);
            ExitCode::FAILURE
        }
    }
}

/// Root side of `run --cluster`: spawn the workers, run rank 0, report
/// per-worker outcomes.
fn run_cluster(
    runner: &DeepThermo,
    spec: ClusterSpec,
) -> Result<DeepThermoReport, DeepThermoError> {
    let plan = cluster_fault_plan(spec.size)?;
    let worker_args: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "cluster: {} ranks as separate processes over loopback TCP (this process is rank 0)",
        spec.size
    );
    let (report, outcomes) = if runner.config().rewl.recovery {
        let policy = RecoveryPolicy {
            max_restarts: arg("--max-restarts", 3u64),
            ..RecoveryPolicy::default()
        };
        println!(
            "recovery: supervising workers (respawn budget {} per rank)",
            policy.max_restarts
        );
        cluster::run_cluster_root_recovering(runner, spec, plan, &worker_args, policy)?
    } else {
        cluster::run_cluster_root(runner, spec, plan, &worker_args)?
    };
    for (i, outcome) in outcomes.iter().enumerate() {
        let rank = i + 1;
        match outcome {
            WorkerOutcome::Completed => {}
            WorkerOutcome::Killed => {
                println!("worker rank {rank} died from the injected fault; survivors degraded")
            }
            WorkerOutcome::Failed => eprintln!("warning: worker rank {rank} exited abnormally"),
            WorkerOutcome::Recovered { respawns } => {
                println!("worker rank {rank} recovered after {respawns} supervised respawn(s)")
            }
        }
    }
    Ok(report)
}

fn run() -> ExitCode {
    let out_dir: PathBuf = PathBuf::from(arg("--out", "deepthermo-out".to_string()));
    if let Err(e) = fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let cluster_spec = match opt_arg("--cluster").map(|v| ClusterSpec::parse(&v)) {
        Some(Ok(spec)) => Some(spec),
        Some(Err(msg)) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
        None => None,
    };
    let mut cfg = match build_config() {
        Ok(c) => c,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    if cluster_spec.is_some() {
        apply_cluster_checkpoint(&mut cfg);
        apply_recovery_defaults(&mut cfg);
        if cfg.rewl.recovery {
            if let Some(spec) = cfg.rewl.checkpoint.as_ref() {
                println!(
                    "recovery: checkpointing every round into {} (replacements rejoin from it)",
                    spec.dir.display()
                );
            }
        }
    } else if cfg.rewl.recovery {
        eprintln!("warning: --recover only applies to --cluster runs; ignoring");
        cfg.rewl.recovery = false;
    }
    println!(
        "deepthermo: {} N={}, kernel={}, {} windows x {} walkers, seed {}",
        cfg.material.material().display_name(),
        cfg.material.num_sites(),
        cfg.rewl.kernel.label(),
        cfg.rewl.num_windows,
        cfg.rewl.walkers_per_window,
        cfg.rewl.seed
    );
    let start = std::time::Instant::now();
    let runner = match DeepThermo::from_material(cfg) {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    let outcome = match (cluster_spec, opt_arg("--checkpoint")) {
        (Some(spec), dir) => {
            if let Some(dir) = dir {
                println!("checkpointing into {dir} (reruns resume from the newest snapshot)");
            }
            run_cluster(&runner, spec)
        }
        (None, Some(dir)) => {
            println!("checkpointing into {dir} (reruns resume from the newest snapshot)");
            runner.run_resumable(dir)
        }
        (None, None) => runner.run(),
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            render_error(&e);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "sampling finished in {:.1} s ({} total moves)",
        start.elapsed().as_secs_f64(),
        report.total_moves
    );
    print!("{}", report.summary());
    if !report.telemetry.is_empty() {
        println!("{}", report.phase_table());
    }

    let write = |name: &str, contents: String| -> std::io::Result<()> {
        fs::write(out_dir.join(name), contents)
    };
    let mut result = write("thermo.csv", report.thermo_csv())
        .and_then(|()| write("dos.csv", report.dos_csv()))
        .and_then(|()| write("sro.csv", report.sro_csv()))
        .and_then(|()| write("summary.txt", report.summary()));
    let mut written = "thermo.csv, dos.csv, sro.csv, summary.txt".to_string();
    if !report.telemetry.is_empty() {
        result = result.and_then(|()| write("telemetry.jsonl", report.telemetry_jsonl()));
        written.push_str(", telemetry.jsonl");
    }
    if let Some(registry_dir) = opt_arg("--export-artifact") {
        match runner.export_artifact(&report, &registry_dir) {
            Ok(dir) => println!("exported serving artifact to {}", dir.display()),
            Err(e) => {
                render_error(&e);
                return ExitCode::FAILURE;
            }
        }
    }
    match result {
        Ok(()) => {
            println!("wrote {written} to {}", out_dir.display());
            if !report.converged {
                eprintln!("warning: run hit max sweeps before ln f target");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to write outputs: {e}");
            ExitCode::FAILURE
        }
    }
}
