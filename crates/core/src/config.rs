//! Top-level run configuration.

use dt_hamiltonian::{Material, MaterialError};
use dt_lattice::{Composition, SpeciesSet, Structure};
use dt_rewl::{DeepSpec, KernelSpec, RewlConfig};
use dt_wanglandau::{LnfSchedule, WlParams};

use crate::error::ConfigError;

/// The material to simulate: an alloy system ([`Material`]) instantiated
/// on a concrete supercell size.
///
/// The [`Material`] carries the structure, species, composition ratios,
/// shell count, and EPI Hamiltonian; `MaterialSpec` adds the supercell
/// edge `L`. Compositions need not be equiatomic — the material's ratios
/// are apportioned over the supercell's sites.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialSpec {
    material: Material,
    l: usize,
}

impl MaterialSpec {
    /// An alloy system on an `L³`-cell cubic supercell.
    pub fn new(material: Material, l: usize) -> Self {
        MaterialSpec { material, l }
    }

    /// Equiatomic NbMoTaW on BCC — the paper's system, from the
    /// material registry.
    pub fn nbmotaw(l: usize) -> Self {
        MaterialSpec::new(Material::nbmotaw(), l)
    }

    /// The CrCoNi-flavoured FCC ordering alloy from the registry.
    pub fn crconi(l: usize) -> Self {
        MaterialSpec::new(Material::crconi(), l)
    }

    /// The full alloy-system definition.
    pub fn material(&self) -> &Material {
        &self.material
    }

    /// Supercell edge in conventional cells.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Crystal structure.
    pub fn structure(&self) -> &Structure {
        self.material.structure()
    }

    /// Species names.
    pub fn species(&self) -> &SpeciesSet {
        self.material.species()
    }

    /// Interaction shells the Hamiltonian couples.
    pub fn num_shells(&self) -> usize {
        self.material.num_shells()
    }

    /// Number of lattice sites (`L³ ·` atoms per cell).
    pub fn num_sites(&self) -> usize {
        self.l.pow(3) * self.material.structure().atoms_per_cell()
    }

    /// Apportion the material's composition ratios over this supercell.
    ///
    /// # Errors
    /// Propagates ratio/site-count validation failures.
    pub fn composition(&self) -> Result<Composition, MaterialError> {
        self.material.composition(self.num_sites())
    }

    /// Same supercell with a different alloy system.
    pub fn with_material(mut self, material: Material) -> Self {
        self.material = material;
        self
    }
}

/// Full configuration of a DeepThermo run.
#[derive(Debug, Clone)]
pub struct DeepThermoConfig {
    /// Material specification.
    pub material: MaterialSpec,
    /// Parallel sampling configuration (windows, walkers, kernels, WL
    /// schedule).
    pub rewl: RewlConfig,
    /// Quench sweeps for energy-range discovery.
    pub range_quench_sweeps: usize,
    /// Fractional padding of the discovered range.
    pub range_pad: f64,
    /// Temperature grid (K) for the thermodynamic curves.
    pub temperatures: Vec<f64>,
}

impl DeepThermoConfig {
    /// Production-flavored defaults: 4 windows × 2 walkers, deep proposals
    /// on, 1/t schedule to 1e-6, L=4 NbMoTaW.
    pub fn standard() -> Self {
        DeepThermoConfig {
            material: MaterialSpec::nbmotaw(4),
            rewl: RewlConfig {
                num_windows: 4,
                walkers_per_window: 2,
                overlap: 0.75,
                num_bins: 128,
                wl: WlParams {
                    ln_f_initial: 1.0,
                    ln_f_final: 1e-6,
                    // The 1/t schedule guarantees steady ln f reduction even
                    // in windows whose histograms flatten slowly (the deep
                    // low-energy windows) — see dt-wanglandau::schedule.
                    schedule: LnfSchedule::OneOverT {
                        flatness: 0.8,
                        reduction: 0.5,
                    },
                    sweeps_per_check: 20,
                },
                exchange_every_sweeps: 10,
                observe_every_sweeps: 2,
                max_sweeps: 2_000_000,
                seed: 2023,
                kernel: KernelSpec::Deep(Box::default()),
                ..RewlConfig::default()
            },
            range_quench_sweeps: 60,
            range_pad: 0.02,
            temperatures: dt_thermo::temperature_grid(50.0, 3000.0, 120),
        }
    }

    /// Small, fast-converging settings for demos, doctests, and CI.
    pub fn quick_demo() -> Self {
        let mut cfg = DeepThermoConfig::standard();
        cfg.material = MaterialSpec::nbmotaw(3);
        cfg.rewl.num_windows = 2;
        cfg.rewl.walkers_per_window = 2;
        cfg.rewl.num_bins = 48;
        cfg.rewl.wl.ln_f_final = 1e-3;
        cfg.rewl.wl.schedule = LnfSchedule::OneOverT {
            flatness: 0.7,
            reduction: 0.5,
        };
        cfg.rewl.wl.sweeps_per_check = 10;
        cfg.rewl.max_sweeps = 60_000;
        cfg.rewl.kernel = KernelSpec::LocalSwap;
        cfg.range_quench_sweeps = 30;
        cfg.temperatures = dt_thermo::temperature_grid(100.0, 2500.0, 60);
        cfg
    }

    /// Switch the proposal kernel.
    pub fn with_kernel(mut self, kernel: KernelSpec) -> Self {
        self.rewl.kernel = kernel;
        self
    }

    /// Switch to deep proposals with a custom spec.
    pub fn with_deep(mut self, spec: DeepSpec) -> Self {
        self.rewl.kernel = KernelSpec::Deep(Box::new(spec));
        self
    }

    /// Change the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rewl.seed = seed;
        self
    }

    /// Record per-rank telemetry during sampling (see
    /// [`crate::DeepThermoReport::telemetry`]).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.rewl.telemetry = on;
        self
    }

    /// A validating builder seeded from [`DeepThermoConfig::standard`].
    pub fn builder() -> DeepThermoConfigBuilder {
        DeepThermoConfigBuilder {
            cfg: DeepThermoConfig::standard(),
        }
    }

    /// Check the configuration for inconsistencies that would make a run
    /// meaningless (or panic deep inside the sampler).
    ///
    /// # Errors
    /// The first [`ConfigError`] found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.material.species().is_empty() {
            return Err(ConfigError::EmptyComposition);
        }
        if self.material.l() == 0 {
            return Err(ConfigError::EmptySupercell);
        }
        if self.rewl.num_windows == 0 {
            return Err(ConfigError::NoWindows);
        }
        if self.rewl.walkers_per_window == 0 {
            return Err(ConfigError::NoWalkers);
        }
        if self.rewl.num_windows > 1 && !(self.rewl.overlap > 0.0 && self.rewl.overlap < 1.0) {
            return Err(ConfigError::BadOverlap(self.rewl.overlap));
        }
        if self.rewl.num_bins < 2 * self.rewl.num_windows {
            return Err(ConfigError::TooFewBins {
                bins: self.rewl.num_bins,
                windows: self.rewl.num_windows,
            });
        }
        if self.temperatures.is_empty() {
            return Err(ConfigError::NoTemperatures);
        }
        Ok(())
    }
}

/// Validating builder for [`DeepThermoConfig`]; obtained from
/// [`DeepThermoConfig::builder`]. Starts from the `standard()` preset;
/// [`build`](DeepThermoConfigBuilder::build) rejects inconsistent
/// settings instead of letting them panic mid-run.
#[derive(Debug, Clone)]
pub struct DeepThermoConfigBuilder {
    cfg: DeepThermoConfig,
}

impl DeepThermoConfigBuilder {
    /// Replace the whole material specification.
    pub fn material(mut self, material: MaterialSpec) -> Self {
        self.cfg.material = material;
        self
    }

    /// Supercell edge, keeping the configured alloy system.
    pub fn supercell_l(mut self, l: usize) -> Self {
        self.cfg.material = MaterialSpec::new(self.cfg.material.material().clone(), l);
        self
    }

    /// Number of energy windows `M`.
    pub fn windows(mut self, m: usize) -> Self {
        self.cfg.rewl.num_windows = m;
        self
    }

    /// Walkers per window `W`.
    pub fn walkers_per_window(mut self, w: usize) -> Self {
        self.cfg.rewl.walkers_per_window = w;
        self
    }

    /// Window overlap fraction.
    pub fn overlap(mut self, overlap: f64) -> Self {
        self.cfg.rewl.overlap = overlap;
        self
    }

    /// Global energy bins.
    pub fn num_bins(mut self, bins: usize) -> Self {
        self.cfg.rewl.num_bins = bins;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.rewl.seed = seed;
        self
    }

    /// Proposal kernel.
    pub fn kernel(mut self, kernel: KernelSpec) -> Self {
        self.cfg.rewl.kernel = kernel;
        self
    }

    /// Hard sweep cap per walker.
    pub fn max_sweeps(mut self, sweeps: u64) -> Self {
        self.cfg.rewl.max_sweeps = sweeps;
        self
    }

    /// Wang–Landau convergence target.
    pub fn ln_f_final(mut self, ln_f: f64) -> Self {
        self.cfg.rewl.wl.ln_f_final = ln_f;
        self
    }

    /// Temperature grid (K) for the thermodynamic curves.
    pub fn temperatures(mut self, temperatures: Vec<f64>) -> Self {
        self.cfg.temperatures = temperatures;
        self
    }

    /// Record per-rank telemetry during sampling.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.cfg.rewl.telemetry = on;
        self
    }

    /// Place window boundaries by equalizing estimated diffusion cost
    /// (from a cheap pilot pass) instead of equal widths.
    pub fn adaptive_windows(mut self, on: bool) -> Self {
        self.cfg.rewl.adaptive_windows = on;
        self
    }

    /// Reassign walkers from fast windows to slow ones every `rounds`
    /// exchange rounds (0 disables rebalancing).
    pub fn rebalance_every(mut self, rounds: u64) -> Self {
        self.cfg.rewl.rebalance_every = rounds;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// The first [`ConfigError`] found by
    /// [`DeepThermoConfig::validate`].
    pub fn build(self) -> Result<DeepThermoConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_site_counts() {
        assert_eq!(MaterialSpec::nbmotaw(4).num_sites(), 128);
        assert_eq!(MaterialSpec::nbmotaw(16).num_sites(), 8192);
    }

    #[test]
    fn builders_chain() {
        let cfg = DeepThermoConfig::quick_demo()
            .with_seed(7)
            .with_kernel(KernelSpec::RandomGlobal { k: 8, weight: 0.2 });
        assert_eq!(cfg.rewl.seed, 7);
        assert!(matches!(
            cfg.rewl.kernel,
            KernelSpec::RandomGlobal { k: 8, .. }
        ));
    }

    #[test]
    fn standard_uses_deep_proposals() {
        assert!(matches!(
            DeepThermoConfig::standard().rewl.kernel,
            KernelSpec::Deep(_)
        ));
    }

    #[test]
    fn builder_accepts_consistent_settings() {
        let cfg = DeepThermoConfig::builder()
            .supercell_l(3)
            .windows(2)
            .walkers_per_window(2)
            .num_bins(48)
            .seed(9)
            .telemetry(true)
            .adaptive_windows(true)
            .rebalance_every(4)
            .build()
            .unwrap();
        assert_eq!(cfg.rewl.num_windows, 2);
        assert_eq!(cfg.rewl.seed, 9);
        assert!(cfg.rewl.telemetry);
        assert!(cfg.rewl.adaptive_windows);
        assert_eq!(cfg.rewl.rebalance_every, 4);
    }

    #[test]
    fn builder_rejects_inconsistent_settings() {
        assert_eq!(
            DeepThermoConfig::builder().windows(0).build().unwrap_err(),
            ConfigError::NoWindows
        );
        assert_eq!(
            DeepThermoConfig::builder()
                .walkers_per_window(0)
                .build()
                .unwrap_err(),
            ConfigError::NoWalkers
        );
        assert_eq!(
            DeepThermoConfig::builder()
                .overlap(1.5)
                .build()
                .unwrap_err(),
            ConfigError::BadOverlap(1.5)
        );
        assert_eq!(
            DeepThermoConfig::builder()
                .windows(8)
                .num_bins(10)
                .build()
                .unwrap_err(),
            ConfigError::TooFewBins {
                bins: 10,
                windows: 8
            }
        );
        assert_eq!(
            DeepThermoConfig::builder()
                .supercell_l(0)
                .build()
                .unwrap_err(),
            ConfigError::EmptySupercell
        );
        assert_eq!(
            DeepThermoConfig::builder()
                .temperatures(vec![])
                .build()
                .unwrap_err(),
            ConfigError::NoTemperatures
        );
    }
}
