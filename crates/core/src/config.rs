//! Top-level run configuration.

use dt_lattice::{SpeciesSet, Structure};
use dt_rewl::{DeepSpec, KernelSpec, RewlConfig};
use dt_wanglandau::{LnfSchedule, WlParams};

/// The material to simulate.
#[derive(Debug, Clone)]
pub struct MaterialSpec {
    /// Crystal structure (BCC for the refractory HEAs of the paper).
    pub structure: Structure,
    /// Supercell edge in conventional cells (`N = 2·L³` sites for BCC).
    pub l: usize,
    /// Species names (equiatomic composition is assumed).
    pub species: SpeciesSet,
    /// Interaction shells to include.
    pub num_shells: usize,
}

impl MaterialSpec {
    /// Equiatomic NbMoTaW on BCC.
    pub fn nbmotaw(l: usize) -> Self {
        MaterialSpec {
            structure: Structure::bcc(),
            l,
            species: SpeciesSet::nb_mo_ta_w(),
            num_shells: 2,
        }
    }

    /// Number of lattice sites.
    pub fn num_sites(&self) -> usize {
        self.l.pow(3) * self.structure.atoms_per_cell()
    }
}

/// Full configuration of a DeepThermo run.
#[derive(Debug, Clone)]
pub struct DeepThermoConfig {
    /// Material specification.
    pub material: MaterialSpec,
    /// Parallel sampling configuration (windows, walkers, kernels, WL
    /// schedule).
    pub rewl: RewlConfig,
    /// Quench sweeps for energy-range discovery.
    pub range_quench_sweeps: usize,
    /// Fractional padding of the discovered range.
    pub range_pad: f64,
    /// Temperature grid (K) for the thermodynamic curves.
    pub temperatures: Vec<f64>,
}

impl DeepThermoConfig {
    /// Production-flavored defaults: 4 windows × 2 walkers, deep proposals
    /// on, 1/t schedule to 1e-6, L=4 NbMoTaW.
    pub fn standard() -> Self {
        DeepThermoConfig {
            material: MaterialSpec::nbmotaw(4),
            rewl: RewlConfig {
                num_windows: 4,
                walkers_per_window: 2,
                overlap: 0.75,
                num_bins: 128,
                wl: WlParams {
                    ln_f_initial: 1.0,
                    ln_f_final: 1e-6,
                    // The 1/t schedule guarantees steady ln f reduction even
                    // in windows whose histograms flatten slowly (the deep
                    // low-energy windows) — see dt-wanglandau::schedule.
                    schedule: LnfSchedule::OneOverT {
                        flatness: 0.8,
                        reduction: 0.5,
                    },
                    sweeps_per_check: 20,
                },
                exchange_every_sweeps: 10,
                observe_every_sweeps: 2,
                max_sweeps: 2_000_000,
                seed: 2023,
                kernel: KernelSpec::Deep(Box::default()),
                ..RewlConfig::default()
            },
            range_quench_sweeps: 60,
            range_pad: 0.02,
            temperatures: dt_thermo::temperature_grid(50.0, 3000.0, 120),
        }
    }

    /// Small, fast-converging settings for demos, doctests, and CI.
    pub fn quick_demo() -> Self {
        let mut cfg = DeepThermoConfig::standard();
        cfg.material = MaterialSpec::nbmotaw(3);
        cfg.rewl.num_windows = 2;
        cfg.rewl.walkers_per_window = 2;
        cfg.rewl.num_bins = 48;
        cfg.rewl.wl.ln_f_final = 1e-3;
        cfg.rewl.wl.schedule = LnfSchedule::OneOverT {
            flatness: 0.7,
            reduction: 0.5,
        };
        cfg.rewl.wl.sweeps_per_check = 10;
        cfg.rewl.max_sweeps = 60_000;
        cfg.rewl.kernel = KernelSpec::LocalSwap;
        cfg.range_quench_sweeps = 30;
        cfg.temperatures = dt_thermo::temperature_grid(100.0, 2500.0, 60);
        cfg
    }

    /// Switch the proposal kernel.
    pub fn with_kernel(mut self, kernel: KernelSpec) -> Self {
        self.rewl.kernel = kernel;
        self
    }

    /// Switch to deep proposals with a custom spec.
    pub fn with_deep(mut self, spec: DeepSpec) -> Self {
        self.rewl.kernel = KernelSpec::Deep(Box::new(spec));
        self
    }

    /// Change the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rewl.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_site_counts() {
        assert_eq!(MaterialSpec::nbmotaw(4).num_sites(), 128);
        assert_eq!(MaterialSpec::nbmotaw(16).num_sites(), 8192);
    }

    #[test]
    fn builders_chain() {
        let cfg = DeepThermoConfig::quick_demo()
            .with_seed(7)
            .with_kernel(KernelSpec::RandomGlobal { k: 8, weight: 0.2 });
        assert_eq!(cfg.rewl.seed, 7);
        assert!(matches!(
            cfg.rewl.kernel,
            KernelSpec::RandomGlobal { k: 8, .. }
        ));
    }

    #[test]
    fn standard_uses_deep_proposals() {
        assert!(matches!(
            DeepThermoConfig::standard().rewl.kernel,
            KernelSpec::Deep(_)
        ));
    }
}
