//! # DeepThermo
//!
//! Deep-learning accelerated parallel Monte Carlo sampling for
//! thermodynamics evaluation of high-entropy alloys — a from-scratch Rust
//! reproduction of Yin, Wang & Shankar, IPDPS 2023.
//!
//! ## What it does
//!
//! DeepThermo evaluates the full thermodynamics of an on-lattice alloy —
//! density of states g(E), internal energy, heat capacity, entropy, free
//! energy, and Warren–Cowley short-range order as functions of temperature
//! — by replica-exchange Wang–Landau sampling whose configuration updates
//! are proposed by a neural network trained on the fly. The deep proposals
//! update many sites at once (globally) while their exactly-computable
//! forward/reverse probabilities keep the Metropolis–Hastings correction,
//! and hence the sampled ensemble, exact.
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), deepthermo::DeepThermoError> {
//! use deepthermo::{DeepThermo, DeepThermoConfig};
//!
//! // A small NbMoTaW supercell with fast-converging settings.
//! let config = DeepThermoConfig::quick_demo();
//! let report = DeepThermo::nbmotaw(config)?.run()?;
//! assert!(report.converged);
//! // The order–disorder transition shows up as a heat-capacity peak.
//! assert!(report.transition_temperature > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Crate map
//!
//! | layer | crate |
//! |---|---|
//! | lattice geometry & order parameters | [`dt_lattice`] |
//! | Hamiltonians & incremental ΔE | [`dt_hamiltonian`] |
//! | neural networks | [`dt_nn`] |
//! | energy surrogates | [`dt_surrogate`] |
//! | MC proposal kernels (incl. deep) | [`dt_proposal`] |
//! | Wang–Landau | [`dt_wanglandau`] |
//! | replica-exchange WL | [`dt_rewl`] |
//! | canonical baselines | [`dt_metropolis`] |
//! | DOS → thermodynamics | [`dt_thermo`] |
//! | simulated cluster & perf models | [`dt_hpc`] |
//! | metrics, spans & phase reports | [`dt_telemetry`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod config;
pub mod error;
pub mod pipeline;
pub mod report;

pub use cluster::{ClusterSpec, RecoveryPolicy, WorkerOutcome};
pub use config::{DeepThermoConfig, DeepThermoConfigBuilder, MaterialSpec};
pub use error::{ConfigError, DeepThermoError};
pub use pipeline::DeepThermo;
pub use report::{DeepThermoReport, SroCurve};

// Re-export the sub-crates so downstream users need one dependency.
pub use dt_hamiltonian as hamiltonian;
pub use dt_hpc as hpc;
pub use dt_lattice as lattice;
pub use dt_metropolis as metropolis;
pub use dt_nn as nn;
pub use dt_proposal as proposal;
pub use dt_rewl as rewl;
pub use dt_serve as serve;
pub use dt_surrogate as surrogate;
pub use dt_telemetry as telemetry;
pub use dt_thermo as thermo;
pub use dt_wanglandau as wanglandau;
