//! Multi-process cluster orchestration for `deepthermo run --cluster`.
//!
//! The in-process drivers ([`DeepThermo::run`] over the thread fabric)
//! and this module run the *same* rank program
//! ([`DeepThermo::run_cluster_rank`]); only the transport differs. Here
//! each rank is a separate OS process talking TCP:
//!
//! * The **root** process binds a loopback rendezvous socket, spawns
//!   `size - 1` worker copies of its own executable (forwarding the
//!   original CLI flags plus hidden `--worker-rank R --rendezvous ADDR`
//!   flags), then becomes rank 0 of the mesh.
//! * Each **worker** rebuilds the identical configuration from the
//!   forwarded flags, dials the rendezvous, and runs its rank. Workers
//!   write no files; their window pieces (and telemetry) travel back to
//!   rank 0 over the wire.
//!
//! A fault-free cluster run is bit-identical to the thread backend under
//! the same seed, and `--kill R:ROUND` injects the same simulated rank
//! death the thread fabric supports — the process exits cleanly with
//! [`WorkerOutcome::Killed`] and the survivors degrade exactly as they
//! do in-process.

use std::panic::AssertUnwindSafe;
use std::process::{Child, Command};

use dt_hpc::{
    install_crash_hook, Communicator, FaultPlan, SimulatedCrash, TcpRendezvous, TcpTransport,
};

use crate::error::DeepThermoError;
use crate::pipeline::DeepThermo;
use crate::report::DeepThermoReport;

/// Hidden flag carrying a worker's rank (never shown in usage text).
pub const WORKER_RANK_FLAG: &str = "--worker-rank";
/// Hidden flag carrying the rendezvous address.
pub const RENDEZVOUS_FLAG: &str = "--rendezvous";

/// A parsed `--cluster` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total rank count, including the root process.
    pub size: usize,
}

impl ClusterSpec {
    /// Parse a `--cluster` value of the form `tcp:<ranks>`.
    ///
    /// # Errors
    /// A human-readable message when the backend is not `tcp` or the
    /// rank count is missing, malformed, or below 2.
    pub fn parse(arg: &str) -> Result<ClusterSpec, String> {
        let ranks = arg
            .strip_prefix("tcp:")
            .ok_or_else(|| format!("unsupported cluster spec {arg:?} (expected tcp:<ranks>)"))?;
        let size: usize = ranks
            .parse()
            .map_err(|_| format!("bad rank count in cluster spec {arg:?}"))?;
        if size < 2 {
            return Err(format!(
                "a cluster needs at least 2 ranks, got {size} (drop --cluster to run in-process)"
            ));
        }
        Ok(ClusterSpec { size })
    }

    /// Check the rank count against the sampling plan: the REWL driver
    /// needs exactly one rank per walker.
    ///
    /// # Errors
    /// [`DeepThermoError::Cluster`] when `size != windows × walkers`.
    pub fn validate_against(&self, runner: &DeepThermo) -> Result<(), DeepThermoError> {
        let rewl = &runner.config().rewl;
        let need = rewl.num_windows * rewl.walkers_per_window;
        if self.size != need {
            return Err(DeepThermoError::Cluster {
                message: format!(
                    "--cluster tcp:{} does not match the sampling plan: {} windows x {} walkers \
                     need exactly {} ranks",
                    self.size, rewl.num_windows, rewl.walkers_per_window, need
                ),
            });
        }
        Ok(())
    }
}

/// Parse a `--kill R:ROUND` value into a fault plan. Every process of
/// the cluster parses the same forwarded flag, so they all hold the same
/// plan — kill events fire on the owning rank's own communicator, just
/// like on the thread fabric.
///
/// # Errors
/// A human-readable message when the value is not `rank:round`.
pub fn parse_kill(arg: &str) -> Result<FaultPlan, String> {
    let (rank, round) = arg
        .split_once(':')
        .ok_or_else(|| format!("bad --kill value {arg:?} (expected RANK:ROUND)"))?;
    let rank: usize = rank
        .parse()
        .map_err(|_| format!("bad rank in --kill {arg:?}"))?;
    let round: u64 = round
        .parse()
        .map_err(|_| format!("bad round in --kill {arg:?}"))?;
    Ok(FaultPlan::none().kill_at_round(rank, round))
}

fn cluster_err(what: &str, e: impl std::fmt::Display) -> DeepThermoError {
    DeepThermoError::Cluster {
        message: format!("{what}: {e}"),
    }
}

/// How a worker process ended, as judged by the root from its exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The worker ran its rank to completion.
    Completed,
    /// The worker died from an injected [`SimulatedCrash`] (exit code
    /// [`KILLED_EXIT_CODE`]); the survivors degraded around it.
    Killed,
    /// The worker failed for a real reason (nonzero exit, signal, or a
    /// wait failure).
    Failed,
}

/// Exit code a worker uses to report a *simulated* crash, so the root
/// can tell injected faults apart from real failures.
pub const KILLED_EXIT_CODE: u8 = 86;

/// Root side of a multi-process run: bind the rendezvous, spawn the
/// workers, run rank 0, evaluate, then reap the children. `worker_args`
/// is the argv (minus the program name) each worker is re-launched with;
/// it must rebuild the same configuration this process holds.
///
/// Returns the report plus one [`WorkerOutcome`] per worker rank
/// (`1..size`).
///
/// # Errors
/// [`DeepThermoError::Cluster`] when the mesh cannot be assembled, plus
/// everything [`DeepThermo::run_cluster_rank`] can return.
pub fn run_cluster_root(
    runner: &DeepThermo,
    spec: ClusterSpec,
    plan: FaultPlan,
    worker_args: &[String],
) -> Result<(DeepThermoReport, Vec<WorkerOutcome>), DeepThermoError> {
    spec.validate_against(runner)?;
    let rendezvous =
        TcpRendezvous::bind("127.0.0.1:0").map_err(|e| cluster_err("bind rendezvous", e))?;
    let addr = rendezvous
        .local_addr()
        .map_err(|e| cluster_err("read rendezvous address", e))?
        .to_string();
    let exe = std::env::current_exe().map_err(|e| cluster_err("locate own executable", e))?;

    let mut children: Vec<Child> = Vec::with_capacity(spec.size - 1);
    for rank in 1..spec.size {
        let spawned = Command::new(&exe)
            .args(worker_args)
            .arg(WORKER_RANK_FLAG)
            .arg(rank.to_string())
            .arg(RENDEZVOUS_FLAG)
            .arg(&addr)
            .spawn()
            .map_err(|e| cluster_err(&format!("spawn worker rank {rank}"), e));
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                // Don't leave already-spawned workers dialing a mesh
                // that will never assemble.
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        }
    }

    let transport = rendezvous
        .into_transport(spec.size)
        .map_err(|e| cluster_err("assemble TCP mesh", e))?;
    let comm = Communicator::new(transport, plan);
    let result = runner.run_cluster_rank(comm);

    let mut outcomes = Vec::with_capacity(children.len());
    for child in &mut children {
        outcomes.push(match child.wait() {
            Ok(status) if status.success() => WorkerOutcome::Completed,
            Ok(status) if status.code() == Some(KILLED_EXIT_CODE as i32) => WorkerOutcome::Killed,
            _ => WorkerOutcome::Failed,
        });
    }

    let report = result?.ok_or_else(|| DeepThermoError::Cluster {
        message: "rank 0 produced no report".to_string(),
    })?;
    Ok((report, outcomes))
}

/// Worker side of a multi-process run: dial the rendezvous as `rank`,
/// run the rank program, and report how it ended. An injected
/// [`SimulatedCrash`] is caught and returned as
/// [`WorkerOutcome::Killed`] (the caller should exit with
/// [`KILLED_EXIT_CODE`]); any other panic is resumed.
///
/// # Errors
/// [`DeepThermoError::Cluster`] when the rendezvous cannot be reached,
/// plus everything [`DeepThermo::run_cluster_rank`] can return.
pub fn run_cluster_worker(
    runner: &DeepThermo,
    rank: usize,
    size: usize,
    rendezvous: &str,
    plan: FaultPlan,
) -> Result<WorkerOutcome, DeepThermoError> {
    install_crash_hook();
    let transport = TcpTransport::connect(rendezvous, rank, size)
        .map_err(|e| cluster_err(&format!("rank {rank} dial rendezvous {rendezvous}"), e))?;
    let comm = Communicator::new(transport, plan);
    match std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_cluster_rank(comm))) {
        Ok(Ok(report)) => {
            debug_assert!(report.is_none(), "only rank 0 assembles a report");
            Ok(WorkerOutcome::Completed)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) if payload.downcast_ref::<SimulatedCrash>().is_some() => {
            Ok(WorkerOutcome::Killed)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spec_parses_tcp_sizes() {
        assert_eq!(ClusterSpec::parse("tcp:4"), Ok(ClusterSpec { size: 4 }));
        assert!(ClusterSpec::parse("tcp:1").is_err());
        assert!(ClusterSpec::parse("tcp:").is_err());
        assert!(ClusterSpec::parse("mpi:4").is_err());
        assert!(ClusterSpec::parse("4").is_err());
    }

    #[test]
    fn cluster_spec_must_match_the_sampling_plan() {
        let runner = DeepThermo::nbmotaw(crate::DeepThermoConfig::quick_demo()).unwrap();
        let rewl = &runner.config().rewl;
        let need = rewl.num_windows * rewl.walkers_per_window;
        assert!(ClusterSpec { size: need }.validate_against(&runner).is_ok());
        let err = ClusterSpec { size: need + 1 }
            .validate_against(&runner)
            .unwrap_err();
        assert!(matches!(err, DeepThermoError::Cluster { .. }));
        assert!(err.to_string().contains("ranks"));
    }

    #[test]
    fn kill_flag_parses_into_a_fault_plan() {
        assert!(parse_kill("3:5").is_ok());
        assert!(parse_kill("3").is_err());
        assert!(parse_kill("a:5").is_err());
        assert!(parse_kill("3:b").is_err());
    }
}
