//! Multi-process cluster orchestration for `deepthermo run --cluster`.
//!
//! The in-process drivers ([`DeepThermo::run`] over the thread fabric)
//! and this module run the *same* rank program
//! ([`DeepThermo::run_cluster_rank`]); only the transport differs. Here
//! each rank is a separate OS process talking TCP:
//!
//! * The **root** process binds a loopback rendezvous socket, spawns
//!   `size - 1` worker copies of its own executable (forwarding the
//!   original CLI flags plus hidden `--worker-rank R --rendezvous ADDR`
//!   flags), then becomes rank 0 of the mesh.
//! * Each **worker** rebuilds the identical configuration from the
//!   forwarded flags, dials the rendezvous, and runs its rank. Workers
//!   write no files; their window pieces (and telemetry) travel back to
//!   rank 0 over the wire.
//!
//! A fault-free cluster run is bit-identical to the thread backend under
//! the same seed, and `--kill R:ROUND` injects the same simulated rank
//! death the thread fabric supports — the process exits cleanly with
//! [`WorkerOutcome::Killed`] and the survivors degrade exactly as they
//! do in-process.
//!
//! With `--recover` the root becomes a **supervisor**: it reaps worker
//! exits while rank 0 samples, distinguishes injected kills (exit code
//! [`KILLED_EXIT_CODE`]) from real crashes, and respawns dead workers
//! with bounded exponential backoff under a per-rank restart budget
//! ([`RecoveryPolicy`]). A replacement process re-binds its rank id in
//! the mesh, restores its state from its own newest checkpoint, and
//! replays its death round — converging to the same answer, bit for bit,
//! as a fault-free run. When the budget is exhausted the cluster falls
//! back to graceful degradation (see DESIGN.md, "Failure model").

use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dt_hpc::{
    install_crash_hook, Communicator, FaultPlan, SimulatedCrash, TcpRendezvous, TcpTransport,
};

use crate::error::DeepThermoError;
use crate::pipeline::DeepThermo;
use crate::report::DeepThermoReport;

/// Hidden flag carrying a worker's rank (never shown in usage text).
pub const WORKER_RANK_FLAG: &str = "--worker-rank";
/// Hidden flag carrying the rendezvous address.
pub const RENDEZVOUS_FLAG: &str = "--rendezvous";
/// Hidden flag carrying how many times a worker has been respawned by the
/// supervisor; a nonzero value tells the replacement to resume from its
/// own newest checkpoint and rejoin the mesh instead of bootstrapping.
pub const RESPAWN_COUNT_FLAG: &str = "--respawn-count";

/// A parsed `--cluster` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total rank count, including the root process.
    pub size: usize,
}

impl ClusterSpec {
    /// Parse a `--cluster` value of the form `tcp:<ranks>`.
    ///
    /// # Errors
    /// A human-readable message when the backend is not `tcp` or the
    /// rank count is missing, malformed, or below 2.
    pub fn parse(arg: &str) -> Result<ClusterSpec, String> {
        let ranks = arg
            .strip_prefix("tcp:")
            .ok_or_else(|| format!("unsupported cluster spec {arg:?} (expected tcp:<ranks>)"))?;
        let size: usize = ranks
            .parse()
            .map_err(|_| format!("bad rank count in cluster spec {arg:?}"))?;
        if size < 2 {
            return Err(format!(
                "a cluster needs at least 2 ranks, got {size} (drop --cluster to run in-process)"
            ));
        }
        Ok(ClusterSpec { size })
    }

    /// Check the rank count against the sampling plan: the REWL driver
    /// needs exactly one rank per walker.
    ///
    /// # Errors
    /// [`DeepThermoError::Cluster`] when `size != windows × walkers`.
    pub fn validate_against(&self, runner: &DeepThermo) -> Result<(), DeepThermoError> {
        let rewl = &runner.config().rewl;
        let need = rewl.num_windows * rewl.walkers_per_window;
        if self.size != need {
            return Err(DeepThermoError::Cluster {
                message: format!(
                    "--cluster tcp:{} does not match the sampling plan: {} windows x {} walkers \
                     need exactly {} ranks",
                    self.size, rewl.num_windows, rewl.walkers_per_window, need
                ),
            });
        }
        Ok(())
    }
}

/// Parse a `--kill R:ROUND` value into a fault plan. Every process of
/// the cluster parses the same forwarded flag, so they all hold the same
/// plan — kill events fire on the owning rank's own communicator, just
/// like on the thread fabric.
///
/// # Errors
/// A human-readable message when the value is not `rank:round`.
pub fn parse_kill(arg: &str) -> Result<FaultPlan, String> {
    let (rank, round) = arg
        .split_once(':')
        .ok_or_else(|| format!("bad --kill value {arg:?} (expected RANK:ROUND)"))?;
    let rank: usize = rank
        .parse()
        .map_err(|_| format!("bad rank in --kill {arg:?}"))?;
    let round: u64 = round
        .parse()
        .map_err(|_| format!("bad round in --kill {arg:?}"))?;
    Ok(FaultPlan::none().kill_at_round(rank, round))
}

fn cluster_err(what: &str, e: impl std::fmt::Display) -> DeepThermoError {
    DeepThermoError::Cluster {
        message: format!("{what}: {e}"),
    }
}

/// How a worker process ended, as judged by the root from its exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The worker ran its rank to completion.
    Completed,
    /// The worker died from an injected [`SimulatedCrash`] (exit code
    /// [`KILLED_EXIT_CODE`]); the survivors degraded around it.
    Killed,
    /// The worker failed for a real reason (nonzero exit, signal, or a
    /// wait failure).
    Failed,
    /// The worker died at least once but a supervised replacement
    /// rejoined from its checkpoint and ran the rank to completion.
    Recovered {
        /// How many times the rank was respawned.
        respawns: u64,
    },
}

/// Supervisor policy for `--recover`: how often and how patiently a dead
/// worker is respawned before the cluster falls back to degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Respawn budget *per rank*; once exhausted the rank stays dead and
    /// the survivors degrade around it exactly as with recovery off.
    pub max_restarts: u64,
    /// First respawn delay; doubles per attempt (exponential backoff).
    pub backoff_base: Duration,
    /// Ceiling on the backoff delay.
    pub backoff_cap: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_restarts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// Exit code a worker uses to report a *simulated* crash, so the root
/// can tell injected faults apart from real failures.
pub const KILLED_EXIT_CODE: u8 = 86;

/// Root side of a multi-process run: bind the rendezvous, spawn the
/// workers, run rank 0, evaluate, then reap the children. `worker_args`
/// is the argv (minus the program name) each worker is re-launched with;
/// it must rebuild the same configuration this process holds.
///
/// Returns the report plus one [`WorkerOutcome`] per worker rank
/// (`1..size`).
///
/// # Errors
/// [`DeepThermoError::Cluster`] when the mesh cannot be assembled, plus
/// everything [`DeepThermo::run_cluster_rank`] can return.
pub fn run_cluster_root(
    runner: &DeepThermo,
    spec: ClusterSpec,
    plan: FaultPlan,
    worker_args: &[String],
) -> Result<(DeepThermoReport, Vec<WorkerOutcome>), DeepThermoError> {
    run_cluster_root_with(runner, spec, plan, worker_args, None)
}

/// [`run_cluster_root`] with a supervising recovery loop: worker deaths
/// are reaped concurrently with rank 0's sampling, injected kills (exit
/// code [`KILLED_EXIT_CODE`]) are distinguished from real crashes, and
/// dead workers are respawned with bounded exponential backoff until
/// `policy.max_restarts` is exhausted — after which the cluster falls
/// back to graceful degradation. Respawned workers are re-launched with
/// [`RESPAWN_COUNT_FLAG`] so the replacement rejoins from its own newest
/// checkpoint.
///
/// # Errors
/// Everything [`run_cluster_root`] can return.
pub fn run_cluster_root_recovering(
    runner: &DeepThermo,
    spec: ClusterSpec,
    plan: FaultPlan,
    worker_args: &[String],
    policy: RecoveryPolicy,
) -> Result<(DeepThermoReport, Vec<WorkerOutcome>), DeepThermoError> {
    run_cluster_root_with(runner, spec, plan, worker_args, Some(policy))
}

fn run_cluster_root_with(
    runner: &DeepThermo,
    spec: ClusterSpec,
    plan: FaultPlan,
    worker_args: &[String],
    policy: Option<RecoveryPolicy>,
) -> Result<(DeepThermoReport, Vec<WorkerOutcome>), DeepThermoError> {
    spec.validate_against(runner)?;
    let rendezvous =
        TcpRendezvous::bind("127.0.0.1:0").map_err(|e| cluster_err("bind rendezvous", e))?;
    let addr = rendezvous
        .local_addr()
        .map_err(|e| cluster_err("read rendezvous address", e))?
        .to_string();
    let exe = std::env::current_exe().map_err(|e| cluster_err("locate own executable", e))?;

    let mut workers: Vec<Supervised> = Vec::with_capacity(spec.size - 1);
    for rank in 1..spec.size {
        match spawn_worker(&exe, worker_args, rank, &addr, 0) {
            Ok(child) => workers.push(Supervised {
                rank,
                child,
                respawns: 0,
                injected_deaths: 0,
                done: None,
            }),
            Err(e) => {
                // Don't leave already-spawned workers dialing a mesh
                // that will never assemble.
                for mut w in workers {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                }
                return Err(e);
            }
        }
    }

    // The supervisor reaps (and under a recovery policy, respawns)
    // workers while rank 0 samples on this thread.
    let ctx = SupervisorCtx {
        exe,
        args: worker_args.to_vec(),
        addr,
        policy,
    };
    let stop_respawn = Arc::new(AtomicBool::new(false));
    let abort = Arc::new(AtomicBool::new(false));
    let supervisor = {
        let stop_respawn = Arc::clone(&stop_respawn);
        let abort = Arc::clone(&abort);
        std::thread::spawn(move || supervise(ctx, workers, &stop_respawn, &abort))
    };

    let recovering = policy.is_some();
    let mesh = if recovering {
        rendezvous.into_transport_recovering(spec.size)
    } else {
        rendezvous.into_transport(spec.size)
    };
    let result = match mesh {
        Ok(transport) => {
            let comm = Communicator::new(transport, plan);
            runner.run_cluster_rank(comm)
        }
        Err(e) => Err(cluster_err("assemble TCP mesh", e)),
    };

    // Rank 0 is done (or failed): no further respawns make sense. On
    // failure, reap the children instead of waiting on a broken mesh.
    stop_respawn.store(true, Ordering::SeqCst);
    if result.is_err() {
        abort.store(true, Ordering::SeqCst);
    }
    let outcomes = supervisor.join().unwrap_or_default();

    let report = result?.ok_or_else(|| DeepThermoError::Cluster {
        message: "rank 0 produced no report".to_string(),
    })?;
    Ok((report, outcomes))
}

/// One worker under supervision.
struct Supervised {
    rank: usize,
    child: Child,
    respawns: u64,
    injected_deaths: u64,
    done: Option<WorkerOutcome>,
}

/// Everything the supervisor needs to re-launch a worker.
struct SupervisorCtx {
    exe: PathBuf,
    args: Vec<String>,
    addr: String,
    policy: Option<RecoveryPolicy>,
}

fn spawn_worker(
    exe: &PathBuf,
    args: &[String],
    rank: usize,
    addr: &str,
    respawns: u64,
) -> Result<Child, DeepThermoError> {
    let mut cmd = Command::new(exe);
    cmd.args(args)
        .arg(WORKER_RANK_FLAG)
        .arg(rank.to_string())
        .arg(RENDEZVOUS_FLAG)
        .arg(addr);
    if respawns > 0 {
        cmd.arg(RESPAWN_COUNT_FLAG).arg(respawns.to_string());
    }
    cmd.spawn()
        .map_err(|e| cluster_err(&format!("spawn worker rank {rank}"), e))
}

/// Classify a worker exit status.
fn classify_exit(status: ExitStatus) -> WorkerOutcome {
    if status.success() {
        WorkerOutcome::Completed
    } else if status.code() == Some(KILLED_EXIT_CODE as i32) {
        WorkerOutcome::Killed
    } else {
        WorkerOutcome::Failed
    }
}

/// The supervisor loop: poll every live worker, reap exits, respawn dead
/// workers under the recovery policy (exponential backoff, per-rank
/// budget), and drain the rest once `stop_respawn` is raised. `abort`
/// kills whatever is still running (rank 0 failed; the mesh is gone).
fn supervise(
    ctx: SupervisorCtx,
    mut workers: Vec<Supervised>,
    stop_respawn: &AtomicBool,
    abort: &AtomicBool,
) -> Vec<WorkerOutcome> {
    loop {
        if abort.load(Ordering::SeqCst) {
            for w in &mut workers {
                if w.done.is_none() {
                    let _ = w.child.kill();
                    let _ = w.child.wait();
                    w.done = Some(WorkerOutcome::Failed);
                }
            }
        }
        let mut pending = false;
        for w in &mut workers {
            if w.done.is_some() {
                continue;
            }
            let status = match w.child.try_wait() {
                Ok(Some(status)) => status,
                Ok(None) => {
                    pending = true;
                    continue;
                }
                Err(_) => {
                    w.done = Some(WorkerOutcome::Failed);
                    continue;
                }
            };
            match classify_exit(status) {
                WorkerOutcome::Completed => {
                    w.done = Some(if w.respawns > 0 {
                        WorkerOutcome::Recovered {
                            respawns: w.respawns,
                        }
                    } else {
                        WorkerOutcome::Completed
                    });
                }
                death => {
                    let injected = death == WorkerOutcome::Killed;
                    if injected {
                        w.injected_deaths += 1;
                    }
                    let respawnable = ctx
                        .policy
                        .filter(|p| w.respawns < p.max_restarts)
                        .filter(|_| !stop_respawn.load(Ordering::SeqCst));
                    match respawnable {
                        Some(p) => {
                            let delay = p
                                .backoff_base
                                .saturating_mul(1u32 << w.respawns.min(16) as u32)
                                .min(p.backoff_cap);
                            eprintln!(
                                "cluster: worker rank {} {} — respawning in {:.1} ms \
                                 (attempt {}/{})",
                                w.rank,
                                if injected {
                                    "died from an injected fault".to_string()
                                } else {
                                    format!("crashed ({status})")
                                },
                                delay.as_secs_f64() * 1e3,
                                w.respawns + 1,
                                p.max_restarts,
                            );
                            std::thread::sleep(delay);
                            w.respawns += 1;
                            match spawn_worker(&ctx.exe, &ctx.args, w.rank, &ctx.addr, w.respawns) {
                                Ok(child) => {
                                    w.child = child;
                                    pending = true;
                                }
                                Err(e) => {
                                    eprintln!("cluster: respawn of rank {} failed: {e}", w.rank);
                                    w.done = Some(WorkerOutcome::Failed);
                                }
                            }
                        }
                        None => {
                            if ctx.policy.is_some() && !stop_respawn.load(Ordering::SeqCst) {
                                eprintln!(
                                    "cluster: worker rank {} exhausted its restart budget; \
                                     survivors degrade around it",
                                    w.rank
                                );
                            }
                            w.done = Some(death);
                        }
                    }
                }
            }
        }
        if !pending && workers.iter().all(|w| w.done.is_some()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    workers.into_iter().map(|w| w.done.unwrap()).collect()
}

/// Worker side of a multi-process run: dial the rendezvous as `rank`,
/// run the rank program, and report how it ended. An injected
/// [`SimulatedCrash`] is caught and returned as
/// [`WorkerOutcome::Killed`] (the caller should exit with
/// [`KILLED_EXIT_CODE`]); any other panic is resumed.
///
/// # Errors
/// [`DeepThermoError::Cluster`] when the rendezvous cannot be reached,
/// plus everything [`DeepThermo::run_cluster_rank`] can return.
pub fn run_cluster_worker(
    runner: &DeepThermo,
    rank: usize,
    size: usize,
    rendezvous: &str,
    plan: FaultPlan,
) -> Result<WorkerOutcome, DeepThermoError> {
    let transport = TcpTransport::connect(rendezvous, rank, size)
        .map_err(|e| cluster_err(&format!("rank {rank} dial rendezvous {rendezvous}"), e))?;
    finish_worker(runner, transport, plan)
}

/// Worker side of a *recovering* cluster: a first life (`respawns == 0`)
/// dials the rendezvous with re-admission enabled; a replacement life
/// re-binds its rank id in the existing mesh and resumes from its own
/// newest checkpoint (the rank engine reads `respawns` out of the
/// config). Kills already spent on earlier lives are disarmed so the
/// replacement does not immediately re-die.
///
/// # Errors
/// Everything [`run_cluster_worker`] can return.
pub fn run_cluster_worker_recovering(
    runner: &DeepThermo,
    rank: usize,
    size: usize,
    rendezvous: &str,
    plan: FaultPlan,
    respawns: u64,
) -> Result<WorkerOutcome, DeepThermoError> {
    let transport = if respawns == 0 {
        TcpTransport::connect_recovering(rendezvous, rank, size)
    } else {
        TcpTransport::reconnect(rendezvous, rank, size)
    }
    .map_err(|e| cluster_err(&format!("rank {rank} dial rendezvous {rendezvous}"), e))?;
    finish_worker(runner, transport, plan.disarm_kills(rank, respawns))
}

fn finish_worker(
    runner: &DeepThermo,
    transport: TcpTransport,
    plan: FaultPlan,
) -> Result<WorkerOutcome, DeepThermoError> {
    install_crash_hook();
    let comm = Communicator::new(transport, plan);
    match std::panic::catch_unwind(AssertUnwindSafe(|| runner.run_cluster_rank(comm))) {
        Ok(Ok(report)) => {
            debug_assert!(report.is_none(), "only rank 0 assembles a report");
            Ok(WorkerOutcome::Completed)
        }
        Ok(Err(e)) => Err(e),
        Err(payload) if payload.downcast_ref::<SimulatedCrash>().is_some() => {
            Ok(WorkerOutcome::Killed)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_spec_parses_tcp_sizes() {
        assert_eq!(ClusterSpec::parse("tcp:4"), Ok(ClusterSpec { size: 4 }));
        assert!(ClusterSpec::parse("tcp:1").is_err());
        assert!(ClusterSpec::parse("tcp:").is_err());
        assert!(ClusterSpec::parse("mpi:4").is_err());
        assert!(ClusterSpec::parse("4").is_err());
    }

    #[test]
    fn cluster_spec_must_match_the_sampling_plan() {
        let runner = DeepThermo::nbmotaw(crate::DeepThermoConfig::quick_demo()).unwrap();
        let rewl = &runner.config().rewl;
        let need = rewl.num_windows * rewl.walkers_per_window;
        assert!(ClusterSpec { size: need }.validate_against(&runner).is_ok());
        let err = ClusterSpec { size: need + 1 }
            .validate_against(&runner)
            .unwrap_err();
        assert!(matches!(err, DeepThermoError::Cluster { .. }));
        assert!(err.to_string().contains("ranks"));
    }

    #[test]
    fn kill_flag_parses_into_a_fault_plan() {
        assert!(parse_kill("3:5").is_ok());
        assert!(parse_kill("3").is_err());
        assert!(parse_kill("a:5").is_err());
        assert!(parse_kill("3:b").is_err());
    }
}
