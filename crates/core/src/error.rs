//! The workspace-level error type.
//!
//! Every fallible public entry point of the pipeline —
//! [`DeepThermo::run`](crate::DeepThermo::run),
//! [`run_resumable`](crate::DeepThermo::run_resumable),
//! [`evaluate`](crate::DeepThermo::evaluate) — returns
//! [`DeepThermoError`], which wraps the typed errors of the sub-crates
//! (sampling, communication, wire decoding, model serialization) plus
//! configuration and I/O failures of the pipeline itself. Degraded but
//! survivable situations (dead walkers, lost messages) are *not* errors;
//! they are reported inside the [`DeepThermoReport`](crate::DeepThermoReport).

use std::path::PathBuf;

use dt_hamiltonian::MaterialError;
use dt_hpc::CommError;
use dt_rewl::{RewlError, WireError};
use dt_surrogate::SerializeError;

/// An inconsistency in a [`DeepThermoConfig`](crate::DeepThermoConfig),
/// caught at construction time by
/// [`DeepThermoConfig::validate`](crate::DeepThermoConfig::validate) and
/// the [`builder`](crate::DeepThermoConfig::builder).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `num_windows` is zero.
    NoWindows,
    /// `walkers_per_window` is zero.
    NoWalkers,
    /// The window overlap fraction is outside `(0, 1)`.
    BadOverlap(f64),
    /// Too few global energy bins for the window count: every window
    /// needs at least two bins of its own.
    TooFewBins {
        /// Configured global bin count.
        bins: usize,
        /// Configured window count.
        windows: usize,
    },
    /// The material has no species (an empty composition).
    EmptyComposition,
    /// The supercell edge is zero — no lattice sites at all.
    EmptySupercell,
    /// The temperature grid is empty, so no thermodynamic curve can be
    /// evaluated.
    NoTemperatures,
    /// The energy model's species count disagrees with the material's.
    SpeciesMismatch {
        /// Species the model was parameterized for.
        model: usize,
        /// Species the material declares.
        material: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoWindows => write!(f, "num_windows must be at least 1"),
            ConfigError::NoWalkers => write!(f, "walkers_per_window must be at least 1"),
            ConfigError::BadOverlap(v) => {
                write!(f, "window overlap must lie in (0, 1), got {v}")
            }
            ConfigError::TooFewBins { bins, windows } => write!(
                f,
                "{bins} global bins cannot cover {windows} windows (need at least 2 per window)"
            ),
            ConfigError::EmptyComposition => write!(f, "the material declares no species"),
            ConfigError::EmptySupercell => write!(f, "supercell edge L must be at least 1"),
            ConfigError::NoTemperatures => write!(f, "the temperature grid is empty"),
            ConfigError::SpeciesMismatch { model, material } => write!(
                f,
                "energy model has {model} species but the material has {material}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any unrecoverable failure of a DeepThermo pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub enum DeepThermoError {
    /// The run configuration is inconsistent.
    Config(ConfigError),
    /// The parallel sampler failed unrecoverably (root rank death, a
    /// whole window lost).
    Sampling(RewlError),
    /// A communication failure surfaced outside the sampler's own
    /// degraded-mode handling.
    Comm(CommError),
    /// A wire payload could not be decoded.
    Wire(WireError),
    /// A serialized surrogate/proposal model could not be loaded.
    Model(SerializeError),
    /// A filesystem operation of the pipeline failed.
    Io {
        /// Path the operation targeted.
        path: PathBuf,
        /// Rendered `std::io::Error` (stored as text so this enum stays
        /// `Clone + PartialEq`).
        message: String,
    },
    /// Sampling visited no energy bins, so there is no density of
    /// states to evaluate.
    NoVisitedBins,
    /// The material definition is invalid: unknown registry name,
    /// unreadable or malformed `dtmat` file, inconsistent counts, or a
    /// structure that cannot expose the requested shells.
    Material(MaterialError),
    /// The multi-process cluster could not be assembled: a socket bind,
    /// worker spawn, or rendezvous handshake failed before sampling
    /// started. (Rank deaths *during* sampling are degraded-mode events,
    /// not errors.)
    Cluster {
        /// What the orchestrator was doing when it failed.
        message: String,
    },
}

impl std::fmt::Display for DeepThermoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeepThermoError::Config(e) => write!(f, "invalid configuration: {e}"),
            DeepThermoError::Sampling(e) => write!(f, "sampling failed: {e}"),
            DeepThermoError::Comm(e) => write!(f, "communication failed: {e}"),
            DeepThermoError::Wire(e) => write!(f, "malformed wire payload: {e}"),
            DeepThermoError::Model(e) => write!(f, "model deserialization failed: {e}"),
            DeepThermoError::Io { path, message } => {
                write!(f, "I/O failed on {}: {message}", path.display())
            }
            DeepThermoError::NoVisitedBins => {
                write!(f, "sampling visited no energy bins; nothing to evaluate")
            }
            DeepThermoError::Cluster { message } => {
                write!(f, "cluster setup failed: {message}")
            }
            DeepThermoError::Material(e) => {
                write!(f, "invalid material: {e}")
            }
        }
    }
}

impl std::error::Error for DeepThermoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeepThermoError::Config(e) => Some(e),
            DeepThermoError::Sampling(e) => Some(e),
            DeepThermoError::Comm(e) => Some(e),
            DeepThermoError::Wire(e) => Some(e),
            DeepThermoError::Model(e) => Some(e),
            DeepThermoError::Material(e) => Some(e),
            DeepThermoError::Io { .. }
            | DeepThermoError::NoVisitedBins
            | DeepThermoError::Cluster { .. } => None,
        }
    }
}

impl From<ConfigError> for DeepThermoError {
    fn from(e: ConfigError) -> Self {
        DeepThermoError::Config(e)
    }
}

impl From<RewlError> for DeepThermoError {
    fn from(e: RewlError) -> Self {
        DeepThermoError::Sampling(e)
    }
}

impl From<CommError> for DeepThermoError {
    fn from(e: CommError) -> Self {
        DeepThermoError::Comm(e)
    }
}

impl From<WireError> for DeepThermoError {
    fn from(e: WireError) -> Self {
        DeepThermoError::Wire(e)
    }
}

impl From<SerializeError> for DeepThermoError {
    fn from(e: SerializeError) -> Self {
        DeepThermoError::Model(e)
    }
}

impl From<MaterialError> for DeepThermoError {
    fn from(e: MaterialError) -> Self {
        DeepThermoError::Material(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn displays_are_informative() {
        let e = DeepThermoError::from(ConfigError::BadOverlap(1.5));
        assert!(e.to_string().contains("overlap"));
        assert!(e.source().is_some());
        let e = DeepThermoError::Io {
            path: PathBuf::from("/nope"),
            message: "denied".into(),
        };
        assert!(e.to_string().contains("/nope"));
        assert!(e.source().is_none());
    }

    #[test]
    fn wraps_every_subcrate_error() {
        assert!(matches!(
            DeepThermoError::from(RewlError::RootRankDied("boom".into())),
            DeepThermoError::Sampling(_)
        ));
        assert!(matches!(
            DeepThermoError::from(CommError::RankDead(3)),
            DeepThermoError::Comm(_)
        ));
        assert!(matches!(
            DeepThermoError::from(SerializeError::BadHeader),
            DeepThermoError::Model(_)
        ));
    }
}
