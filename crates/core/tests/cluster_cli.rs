//! End-to-end tests of `deepthermo run --cluster tcp:<n>`: the real
//! binary spawning real worker processes over loopback TCP. The cluster
//! run must write byte-identical outputs to the in-process run under the
//! same seed, survive an injected worker kill, and reject a rank count
//! that does not match the sampling plan.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_deepthermo")
}

/// Flags for a small fast NbMoTaW run (2 windows x 2 walkers).
const BASE: &[&str] = &[
    "run",
    "--l",
    "2",
    "--kernel",
    "local",
    "--windows",
    "2",
    "--walkers",
    "2",
    "--bins",
    "40",
    "--tpoints",
    "20",
];

fn deepthermo(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("launch the deepthermo binary")
}

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dt-cluster-cli-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

#[test]
fn tcp_cluster_cli_matches_the_in_process_run_byte_for_byte() {
    let dir = scratch("compare");
    let thread_out = dir.join("thread-out");
    let tcp_out = dir.join("tcp-out");
    let common = ["--seed", "7", "--lnf", "1e-3", "--max-sweeps", "60000"];

    let mut thread_args: Vec<&str> = BASE.to_vec();
    thread_args.extend_from_slice(&common);
    thread_args.extend_from_slice(&["--out", thread_out.to_str().unwrap()]);
    let out = deepthermo(&thread_args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut tcp_args: Vec<&str> = BASE.to_vec();
    tcp_args.extend_from_slice(&common);
    tcp_args.extend_from_slice(&["--out", tcp_out.to_str().unwrap(), "--cluster", "tcp:4"]);
    let out = deepthermo(&tcp_args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    for name in ["dos.csv", "sro.csv", "thermo.csv", "summary.txt"] {
        assert_eq!(
            read(&thread_out, name),
            read(&tcp_out, name),
            "{name} differs between thread and TCP backends"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_cluster_cli_survives_an_injected_worker_kill() {
    let dir = scratch("kill");
    let out_dir = dir.join("out");
    let mut args: Vec<&str> = BASE.to_vec();
    args.extend_from_slice(&[
        "--seed",
        "3",
        "--lnf",
        "1e-4",
        "--max-sweeps",
        "100000",
        "--cluster",
        "tcp:4",
        "--kill",
        "3:4",
        "--out",
        out_dir.to_str().unwrap(),
    ]);
    let out = deepthermo(&args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("worker rank 3 died"),
        "root must report the injected death:\n{stdout}"
    );
    let summary = String::from_utf8(read(&out_dir, "summary.txt")).unwrap();
    assert!(
        summary.contains("ranks lost during the run: [3]"),
        "summary must record the loss:\n{summary}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The self-healing gate, end to end through the real binary: a cluster
/// run that loses a worker under `--recover` must produce byte-identical
/// science outputs to the fault-free cluster run, report the supervised
/// respawn on stdout, and record nonzero recovery counters in the
/// summary.
#[test]
fn tcp_cluster_cli_recovers_a_killed_worker_bit_for_bit() {
    let dir = scratch("recover");
    let clean_out = dir.join("clean");
    let healed_out = dir.join("healed");
    let common = [
        "--seed",
        "5",
        "--lnf",
        "1e-3",
        "--max-sweeps",
        "60000",
        "--cluster",
        "tcp:4",
    ];

    let mut clean_args: Vec<&str> = BASE.to_vec();
    clean_args.extend_from_slice(&common);
    clean_args.extend_from_slice(&["--out", clean_out.to_str().unwrap()]);
    let out = deepthermo(&clean_args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Same seed, worker rank 2 (window 1's leader) killed at round 3;
    // the supervisor respawns it and the replacement rejoins from its
    // checkpoint.
    let mut heal_args: Vec<&str> = BASE.to_vec();
    heal_args.extend_from_slice(&common);
    heal_args.extend_from_slice(&[
        "--out",
        healed_out.to_str().unwrap(),
        "--kill",
        "2:3",
        "--recover",
        "--max-restarts",
        "2",
    ]);
    let out = deepthermo(&heal_args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("worker rank 2 recovered after 1 supervised respawn"),
        "root must report the recovery:\n{stdout}"
    );

    let summary = String::from_utf8(read(&healed_out, "summary.txt")).unwrap();
    assert!(
        summary.contains("ranks respawned: 1"),
        "summary must record the respawn:\n{summary}"
    );
    assert!(
        !summary.contains("ranks lost"),
        "a recovered run loses nothing:\n{summary}"
    );

    // The science outputs must match the fault-free run byte for byte
    // (summary.txt legitimately differs by the recovery lines).
    for name in ["dos.csv", "sro.csv", "thermo.csv"] {
        assert_eq!(
            read(&clean_out, name),
            read(&healed_out, name),
            "{name} differs between the fault-free and the recovered run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_cluster_cli_rejects_a_rank_count_that_mismatches_the_plan() {
    let dir = scratch("mismatch");
    let out_dir = dir.join("out");
    let mut args: Vec<&str> = BASE.to_vec();
    args.extend_from_slice(&["--cluster", "tcp:3", "--out", out_dir.to_str().unwrap()]);
    let out = deepthermo(&args);
    assert!(
        !out.status.success(),
        "a 3-rank cluster cannot run a 2x2 plan"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("need exactly 4 ranks"),
        "error must name the required rank count:\n{stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
