//! Weighted mixtures of proposal kernels.
//!
//! DeepThermo interleaves cheap local swaps with expensive deep global
//! updates. Because the mixture weights are state-independent and every
//! component kernel individually satisfies detailed balance (given its
//! reported `q` ratio), the mixture kernel preserves the target ensemble.

use dt_lattice::Configuration;
use rand::{Rng, RngExt};

use crate::kinds::{Proposal, ProposalContext, ProposalKernel, ProposalSlot};

/// A state-independent mixture of proposal kernels.
///
/// Batched calls are dispatched **grouped**: each slot first draws its
/// component from its own RNG stream (the same draw the single-slot path
/// makes), then every component receives its slots as one sub-batch in
/// ascending slot order — so a deep component still decodes its share of
/// the walkers in lockstep, and every slot's result is bit-identical to
/// the single-slot path.
pub struct ProposalMix {
    kernels: Vec<(Box<dyn ProposalKernel>, f64)>,
    cumulative: Vec<f64>,
    /// Index of the kernel used for the most recent proposal.
    last_used: usize,
    name: String,
    /// Per-slot component draws of the most recent batch.
    picks: Vec<usize>,
    /// Scatter buffer: slot-ordered results assembled from sub-batches.
    staged: Vec<Option<Proposal>>,
    /// Reused output buffer for component sub-batches.
    sub_out: Vec<Proposal>,
    /// Largest sub-batch handed to any component in the last call.
    last_batch_rows: usize,
}

impl ProposalMix {
    /// Build from `(kernel, weight)` pairs; weights are normalized.
    ///
    /// # Panics
    /// Panics when empty or when any weight is non-positive.
    pub fn new(kernels: Vec<(Box<dyn ProposalKernel>, f64)>) -> Self {
        assert!(!kernels.is_empty(), "mixture needs at least one kernel");
        let total: f64 = kernels.iter().map(|&(_, w)| w).sum();
        assert!(
            kernels.iter().all(|&(_, w)| w > 0.0) && total > 0.0,
            "mixture weights must be positive"
        );
        let mut cumulative = Vec::with_capacity(kernels.len());
        let mut acc = 0.0;
        for &(_, w) in &kernels {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against round-off on the final boundary.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        let name = kernels
            .iter()
            .map(|(k, _)| k.name())
            .collect::<Vec<_>>()
            .join("+");
        ProposalMix {
            kernels,
            cumulative,
            last_used: 0,
            name,
            picks: Vec::new(),
            staged: Vec::new(),
            sub_out: Vec::new(),
            last_batch_rows: 1,
        }
    }

    /// Component index drawn from `u ∈ [0, 1)`.
    fn pick(&self, u: f64) -> usize {
        self.cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.kernels.len() - 1)
    }

    /// Number of component kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when the mixture has no kernels (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Name of the kernel used for the most recent proposal.
    pub fn last_kernel_name(&self) -> &str {
        self.kernels[self.last_used].0.name()
    }

    /// Index of the kernel used for the most recent proposal.
    pub fn last_kernel_index(&self) -> usize {
        self.last_used
    }

    /// Mutable access to a component kernel (e.g. to retrain a deep one).
    pub fn kernel_mut(&mut self, idx: usize) -> &mut dyn ProposalKernel {
        &mut *self.kernels[idx].0
    }
}

impl ProposalKernel for ProposalMix {
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let u: f64 = rng.random();
        let idx = self.pick(u);
        self.last_used = idx;
        self.picks.clear();
        self.picks.push(idx);
        self.last_batch_rows = 1;
        self.kernels[idx].0.propose(config, ctx, rng)
    }

    fn propose_batch(
        &mut self,
        slots: &mut [ProposalSlot<'_>],
        ctx: &ProposalContext<'_>,
        out: &mut Vec<Proposal>,
    ) {
        out.clear();
        let w = slots.len();
        if w == 0 {
            self.picks.clear();
            self.last_batch_rows = 0;
            return;
        }
        // Phase 1: every slot draws its component from its own stream, in
        // slot order — exactly the draw the single-slot path makes.
        self.picks.clear();
        for slot in slots.iter_mut() {
            let u: f64 = slot.rng.random();
            let idx = self.pick(u);
            self.picks.push(idx);
        }
        self.last_used = *self.picks.last().expect("w > 0");

        // Phase 2: grouped dispatch — each component gets its slots as one
        // sub-batch (ascending slot order preserved), then results scatter
        // back into slot order.
        self.staged.clear();
        self.staged.resize_with(w, || None);
        let picks = std::mem::take(&mut self.picks);
        let mut max_group = 0usize;
        for c in 0..self.kernels.len() {
            let count = picks.iter().filter(|&&p| p == c).count();
            if count == 0 {
                continue;
            }
            max_group = max_group.max(count);
            let mut group: Vec<ProposalSlot<'_>> = Vec::with_capacity(count);
            for (slot, &p) in slots.iter_mut().zip(&picks) {
                if p == c {
                    group.push(ProposalSlot {
                        config: slot.config,
                        rng: &mut *slot.rng,
                    });
                }
            }
            let mut sub = std::mem::take(&mut self.sub_out);
            self.kernels[c].0.propose_batch(&mut group, ctx, &mut sub);
            assert_eq!(sub.len(), count, "component produced a partial batch");
            let mut drained = sub.drain(..);
            for (i, &p) in picks.iter().enumerate() {
                if p == c {
                    self.staged[i] = Some(drained.next().expect("sub-batch length checked"));
                }
            }
            drop(drained);
            self.sub_out = sub;
        }
        self.picks = picks;
        self.last_batch_rows = max_group;
        out.reserve(w);
        out.extend(
            self.staged
                .drain(..)
                .map(|p| p.expect("every slot receives a proposal")),
        );
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn last_kernel_name(&self) -> &str {
        // The inherent method (resolves explicitly to avoid any ambiguity
        // with this trait method).
        ProposalMix::last_kernel_name(self)
    }

    fn batch_kernel_name(&self, slot: usize) -> &str {
        self.picks
            .get(slot)
            .map_or(&self.name, |&p| self.kernels[p].0.name())
    }

    fn last_batch_rows(&self) -> usize {
        self.last_batch_rows
    }

    fn typical_update_size(&self) -> usize {
        // Weighted mean update size, rounded up.
        let total: f64 = self
            .kernels
            .iter()
            .zip(&self.cumulative)
            .scan(0.0, |prev, ((k, _), &c)| {
                let w = c - *prev;
                *prev = c;
                Some(w * k.typical_update_size() as f64)
            })
            .sum();
        total.ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{LocalSwap, RandomReassign};
    use dt_lattice::{Composition, Configuration, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mixture_uses_all_kernels_with_roughly_right_frequency() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = Configuration::random(&comp, &mut rng);
        let mut mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()), 3.0),
            (Box::new(RandomReassign::new(4)), 1.0),
        ]);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            let _ = mix.propose(&config, &ctx, &mut rng);
            counts[mix.last_kernel_index()] += 1;
        }
        let frac = counts[0] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.03, "local fraction {frac}");
        assert_eq!(mix.len(), 2);
        assert_eq!(mix.name(), "local-swap+random-reassign");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = ProposalMix::new(vec![(Box::new(LocalSwap::new()), 0.0)]);
    }

    #[test]
    fn typical_update_size_is_weighted() {
        let mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()), 1.0),
            (Box::new(RandomReassign::new(10)), 1.0),
        ]);
        assert_eq!(mix.typical_update_size(), 6);
    }
}
