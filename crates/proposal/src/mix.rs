//! Weighted mixtures of proposal kernels.
//!
//! DeepThermo interleaves cheap local swaps with expensive deep global
//! updates. Because the mixture weights are state-independent and every
//! component kernel individually satisfies detailed balance (given its
//! reported `q` ratio), the mixture kernel preserves the target ensemble.

use dt_lattice::Configuration;
use rand::{Rng, RngExt};

use crate::kinds::{Proposal, ProposalContext, ProposalKernel};

/// A state-independent mixture of proposal kernels.
pub struct ProposalMix {
    kernels: Vec<(Box<dyn ProposalKernel>, f64)>,
    cumulative: Vec<f64>,
    /// Index of the kernel used for the most recent proposal.
    last_used: usize,
    name: String,
}

impl ProposalMix {
    /// Build from `(kernel, weight)` pairs; weights are normalized.
    ///
    /// # Panics
    /// Panics when empty or when any weight is non-positive.
    pub fn new(kernels: Vec<(Box<dyn ProposalKernel>, f64)>) -> Self {
        assert!(!kernels.is_empty(), "mixture needs at least one kernel");
        let total: f64 = kernels.iter().map(|&(_, w)| w).sum();
        assert!(
            kernels.iter().all(|&(_, w)| w > 0.0) && total > 0.0,
            "mixture weights must be positive"
        );
        let mut cumulative = Vec::with_capacity(kernels.len());
        let mut acc = 0.0;
        for &(_, w) in &kernels {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against round-off on the final boundary.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        let name = kernels
            .iter()
            .map(|(k, _)| k.name())
            .collect::<Vec<_>>()
            .join("+");
        ProposalMix {
            kernels,
            cumulative,
            last_used: 0,
            name,
        }
    }

    /// Number of component kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// True when the mixture has no kernels (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Name of the kernel used for the most recent proposal.
    pub fn last_kernel_name(&self) -> &str {
        self.kernels[self.last_used].0.name()
    }

    /// Index of the kernel used for the most recent proposal.
    pub fn last_kernel_index(&self) -> usize {
        self.last_used
    }

    /// Mutable access to a component kernel (e.g. to retrain a deep one).
    pub fn kernel_mut(&mut self, idx: usize) -> &mut dyn ProposalKernel {
        &mut *self.kernels[idx].0
    }
}

impl ProposalKernel for ProposalMix {
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let u: f64 = rng.random();
        let idx = self
            .cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(self.kernels.len() - 1);
        self.last_used = idx;
        self.kernels[idx].0.propose(config, ctx, rng)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn last_kernel_name(&self) -> &str {
        // The inherent method (resolves explicitly to avoid any ambiguity
        // with this trait method).
        ProposalMix::last_kernel_name(self)
    }

    fn typical_update_size(&self) -> usize {
        // Weighted mean update size, rounded up.
        let total: f64 = self
            .kernels
            .iter()
            .zip(&self.cumulative)
            .scan(0.0, |prev, ((k, _), &c)| {
                let w = c - *prev;
                *prev = c;
                Some(w * k.typical_update_size() as f64)
            })
            .sum();
        total.ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::{LocalSwap, RandomReassign};
    use dt_lattice::{Composition, Configuration, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mixture_uses_all_kernels_with_roughly_right_frequency() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = Configuration::random(&comp, &mut rng);
        let mut mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()), 3.0),
            (Box::new(RandomReassign::new(4)), 1.0),
        ]);
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            let _ = mix.propose(&config, &ctx, &mut rng);
            counts[mix.last_kernel_index()] += 1;
        }
        let frac = counts[0] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.03, "local fraction {frac}");
        assert_eq!(mix.len(), 2);
        assert_eq!(mix.name(), "local-swap+random-reassign");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let _ = ProposalMix::new(vec![(Box::new(LocalSwap::new()), 0.0)]);
    }

    #[test]
    fn typical_update_size_is_weighted() {
        let mix = ProposalMix::new(vec![
            (Box::new(LocalSwap::new()), 1.0),
            (Box::new(RandomReassign::new(10)), 1.0),
        ]);
        assert_eq!(mix.typical_update_size(), 6);
    }
}
