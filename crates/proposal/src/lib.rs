//! # dt-proposal
//!
//! Monte Carlo proposal kernels for DeepThermo.
//!
//! The long-standing bottleneck the paper attacks is the *MC proposal*:
//! classical samplers update one or two sites at a time, so decorrelating a
//! large alloy supercell takes O(N) accepted moves and the Markov chain
//! mixes slowly. This crate provides the full proposal family evaluated in
//! the paper's reconstruction:
//!
//! * [`LocalSwap`] — the classical two-site exchange (baseline),
//! * [`RandomReassign`] — a *naive* global update (uniform multiset
//!   shuffle of k sites); its acceptance collapses exponentially with k,
//!   which is exactly why naive global proposals are useless,
//! * [`DeepProposal`] — the paper's contribution: a neural, autoregressive
//!   reassignment of k sites with **exactly computable forward and reverse
//!   log-probabilities**, so the Metropolis–Hastings correction preserves
//!   the target ensemble while the network steers global updates toward
//!   high-probability configurations,
//! * [`ProposalMix`] — a weighted mixture of kernels (each kernel
//!   individually satisfies detailed balance, so the state-independent
//!   mixture does too).
//!
//! Every kernel conserves the alloy composition exactly: swaps trivially,
//! reassignments by constrained (multiset) decoding.
//!
//! The [`train::ProposalTrainer`] fits the deep kernel on walker samples by
//! teacher-forced maximum likelihood over the same constrained decoding
//! process used at proposal time, so the training distribution matches the
//! deployment distribution.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deep;
pub mod kinds;
pub mod local;
pub mod mix;
pub mod stats;
pub mod train;

pub use deep::{DeepProposal, DeepProposalConfig, FeatureLayout};
pub use kinds::{
    apply_move, move_delta, Proposal, ProposalContext, ProposalKernel, ProposalSlot, ProposedMove,
};
pub use local::{LocalSwap, NeighborSwap, RandomReassign};
pub use mix::ProposalMix;
pub use stats::MoveStats;
pub use train::{ProposalTrainer, SampleBuffer, TrainerConfig};
