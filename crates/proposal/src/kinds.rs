//! The proposal abstraction: moves, kernels, and move application.

use dt_hamiltonian::{DeltaWorkspace, EnergyModel};
use dt_lattice::{Composition, Configuration, NeighborTable, SiteId, Species};
use rand::Rng;

/// A candidate configuration update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProposedMove {
    /// Exchange the species of two sites.
    Swap {
        /// First site.
        a: SiteId,
        /// Second site.
        b: SiteId,
    },
    /// Simultaneously reassign the species of several distinct sites.
    /// The kernel guarantees the reassignment conserves composition.
    Reassign {
        /// `(site, new species)` pairs, sites strictly ascending.
        moves: Vec<(SiteId, Species)>,
    },
}

impl ProposedMove {
    /// Number of sites whose species may change.
    pub fn touched_sites(&self) -> usize {
        match self {
            ProposedMove::Swap { .. } => 2,
            ProposedMove::Reassign { moves } => moves.len(),
        }
    }
}

/// A proposed move together with the log proposal probabilities needed for
/// the Metropolis–Hastings correction:
/// `A = min(1, [π(x') q(x|x')] / [π(x) q(x'|x)])`.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// The move itself.
    pub mv: ProposedMove,
    /// `ln q(x'|x)` — probability of proposing this move from the current
    /// state (up to kernel-constant factors that cancel with the reverse).
    pub log_q_forward: f64,
    /// `ln q(x|x')` — probability of the exact reverse move from the
    /// proposed state (same constant convention).
    pub log_q_reverse: f64,
}

impl Proposal {
    /// The `ln [q(x|x') / q(x'|x)]` term of the MH acceptance ratio.
    #[inline]
    pub fn log_q_ratio(&self) -> f64 {
        self.log_q_reverse - self.log_q_forward
    }
}

/// Immutable lattice context shared by proposal kernels.
#[derive(Clone, Copy)]
pub struct ProposalContext<'a> {
    /// Shell-resolved neighbor lists.
    pub neighbors: &'a NeighborTable,
    /// The fixed alloy composition.
    pub composition: &'a Composition,
}

/// One walker's view of a batched proposal call: its configuration and
/// its private RNG stream.
///
/// Kernels must draw each slot's randomness from that slot's own stream
/// only, visiting slots in ascending order, so a batched call consumes
/// every per-walker stream exactly as `slots.len()` sequential
/// [`ProposalKernel::propose`] calls would — this is what makes batched
/// decoding bit-identical to batch-1.
pub struct ProposalSlot<'a> {
    /// The walker's current configuration.
    pub config: &'a Configuration,
    /// The walker's private RNG stream.
    pub rng: &'a mut dyn Rng,
}

/// A Monte Carlo proposal kernel.
///
/// The engine surface is **batch-first**: drivers hand the kernel one
/// [`ProposalSlot`] per walker and call
/// [`ProposalKernel::propose_batch`], which lets kernels that run a
/// shared network (the deep autoregressive proposal) decode every walker
/// in lockstep — one W-row matmul per decode step instead of W row
/// products. Kernels with no cross-walker structure implement only the
/// single-slot [`ProposalKernel::propose`]; the default `propose_batch`
/// adapter loops it over the slots in order, so the two surfaces are
/// always bit-identical.
///
/// Kernels may keep internal scratch buffers (hence `&mut self`) but must
/// not carry statistical state between proposals: each call must be a
/// valid draw from `q(·|x)` for the current configuration `x`. That
/// statelessness is also what makes sharing one kernel instance across a
/// batch of walkers semantically valid.
pub trait ProposalKernel: Send {
    /// Draw a proposed move from the current configuration (single-slot
    /// path; the engines call [`ProposalKernel::propose_batch`]).
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal;

    /// Draw one proposal per slot, appended to `out` in slot order
    /// (`out` is cleared first; it is a caller-owned buffer so steady
    /// state reuses its allocation).
    ///
    /// The default adapter loops [`ProposalKernel::propose`] over the
    /// slots; batching kernels override it. Either way slot `i`'s
    /// proposal must be bit-identical to a single-slot `propose` call on
    /// slot `i`'s configuration and RNG stream.
    fn propose_batch(
        &mut self,
        slots: &mut [ProposalSlot<'_>],
        ctx: &ProposalContext<'_>,
        out: &mut Vec<Proposal>,
    ) {
        out.clear();
        out.reserve(slots.len());
        for slot in slots.iter_mut() {
            out.push(self.propose(slot.config, ctx, slot.rng));
        }
    }

    /// Human-readable kernel name for reports.
    fn name(&self) -> &str;

    /// Name of the sub-kernel that produced the most recent proposal.
    /// Mixtures override this so acceptance statistics can be attributed
    /// per component; plain kernels return [`ProposalKernel::name`].
    fn last_kernel_name(&self) -> &str {
        self.name()
    }

    /// Name of the sub-kernel that produced slot `slot` of the most
    /// recent batch, for per-component acceptance attribution. Plain
    /// kernels answer every slot with
    /// [`ProposalKernel::last_kernel_name`]; mixtures override this with
    /// the per-slot component draw.
    fn batch_kernel_name(&self, slot: usize) -> &str {
        let _ = slot;
        self.last_kernel_name()
    }

    /// Rows actually decoded together in the most recent call — the
    /// achieved batch size, exported as the `proposal_batch_rows`
    /// telemetry gauge so degraded batching is visible. Kernels that
    /// decode row-at-a-time (including the default `propose_batch`
    /// adapter) report 1.
    fn last_batch_rows(&self) -> usize {
        1
    }

    /// Number of sites a typical proposal updates (for cost models).
    fn typical_update_size(&self) -> usize;
}

/// Apply a move to a configuration.
pub fn apply_move(config: &mut Configuration, mv: &ProposedMove) {
    match mv {
        ProposedMove::Swap { a, b } => config.swap(*a, *b),
        ProposedMove::Reassign { moves } => {
            for &(site, s) in moves {
                config.set(site, s);
            }
        }
    }
}

/// Energy change of a move under a model, via the model's incremental path.
pub fn move_delta<M: EnergyModel>(
    model: &M,
    config: &Configuration,
    neighbors: &NeighborTable,
    mv: &ProposedMove,
    workspace: &mut DeltaWorkspace,
) -> f64 {
    match mv {
        ProposedMove::Swap { a, b } => model.swap_delta(config, neighbors, *a, *b),
        ProposedMove::Reassign { moves } => {
            model.reassign_delta(config, neighbors, moves, workspace)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn apply_swap_and_reassign() {
        let comp = Composition::from_counts(vec![2, 2]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut c = Configuration::random(&comp, &mut rng);
        let before = c.species().to_vec();
        apply_move(&mut c, &ProposedMove::Swap { a: 0, b: 3 });
        assert_eq!(c.species_at(0), before[3]);
        assert_eq!(c.species_at(3), before[0]);

        apply_move(
            &mut c,
            &ProposedMove::Reassign {
                moves: vec![(1, Species(0)), (2, Species(1))],
            },
        );
        assert_eq!(c.species_at(1), Species(0));
        assert_eq!(c.species_at(2), Species(1));
    }

    #[test]
    fn move_delta_dispatches_both_variants() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = dt_hamiltonian::PairHamiltonian::from_pairs(2, 2, &[(0, 0, 1, -0.01)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut c = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(cell.num_sites());

        use dt_hamiltonian::EnergyModel as _;
        let swap = ProposedMove::Swap { a: 0, b: 5 };
        let e0 = h.total_energy(&c, &nt);
        let d = move_delta(&h, &c, &nt, &swap, &mut ws);
        apply_move(&mut c, &swap);
        assert!(((h.total_energy(&c, &nt) - e0) - d).abs() < 1e-9);

        let re = ProposedMove::Reassign {
            moves: vec![(0, Species(1)), (7, Species(0))],
        };
        let e0 = h.total_energy(&c, &nt);
        let d = move_delta(&h, &c, &nt, &re, &mut ws);
        apply_move(&mut c, &re);
        assert!(((h.total_energy(&c, &nt) - e0) - d).abs() < 1e-9);
    }

    #[test]
    fn log_q_ratio_sign() {
        let p = Proposal {
            mv: ProposedMove::Swap { a: 0, b: 1 },
            log_q_forward: -2.0,
            log_q_reverse: -3.0,
        };
        assert_eq!(p.log_q_ratio(), -1.0);
        assert_eq!(p.mv.touched_sites(), 2);
    }
}
