//! Acceptance bookkeeping per proposal kernel.

use std::collections::BTreeMap;

/// Proposed/accepted counters keyed by kernel name. Mergeable across
/// walkers so parallel runs can report fleet-wide acceptance rates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MoveStats {
    counts: BTreeMap<String, (u64, u64)>,
}

impl MoveStats {
    /// Empty statistics.
    pub fn new() -> Self {
        MoveStats::default()
    }

    /// Record one proposal outcome for `kernel`.
    pub fn record(&mut self, kernel: &str, accepted: bool) {
        let entry = self.counts.entry(kernel.to_string()).or_insert((0, 0));
        entry.0 += 1;
        if accepted {
            entry.1 += 1;
        }
    }

    /// Record `proposed` proposals of which `accepted` were accepted, in
    /// one step — used when reconstructing statistics from serialized
    /// counters, where replaying `record` per move would be O(count).
    ///
    /// # Panics
    /// Panics when `accepted > proposed`.
    pub fn record_n(&mut self, kernel: &str, proposed: u64, accepted: u64) {
        assert!(
            accepted <= proposed,
            "{kernel}: accepted {accepted} > proposed {proposed}"
        );
        let entry = self.counts.entry(kernel.to_string()).or_insert((0, 0));
        entry.0 += proposed;
        entry.1 += accepted;
    }

    /// `(proposed, accepted)` for a kernel, zero if unseen.
    pub fn counts(&self, kernel: &str) -> (u64, u64) {
        self.counts.get(kernel).copied().unwrap_or((0, 0))
    }

    /// Acceptance rate of a kernel (`None` before any proposal).
    pub fn acceptance(&self, kernel: &str) -> Option<f64> {
        let (p, a) = self.counts(kernel);
        (p > 0).then(|| a as f64 / p as f64)
    }

    /// Total proposals across kernels.
    pub fn total_proposed(&self) -> u64 {
        self.counts.values().map(|&(p, _)| p).sum()
    }

    /// Total accepted across kernels.
    pub fn total_accepted(&self) -> u64 {
        self.counts.values().map(|&(_, a)| a).sum()
    }

    /// Merge another walker's statistics into this one.
    pub fn merge(&mut self, other: &MoveStats) {
        for (k, &(p, a)) in &other.counts {
            let entry = self.counts.entry(k.clone()).or_insert((0, 0));
            entry.0 += p;
            entry.1 += a;
        }
    }

    /// Iterate `(kernel, proposed, accepted)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.counts.iter().map(|(k, &(p, a))| (k.as_str(), p, a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_rates() {
        let mut s = MoveStats::new();
        s.record("local", true);
        s.record("local", false);
        s.record("deep", true);
        assert_eq!(s.counts("local"), (2, 1));
        assert_eq!(s.acceptance("local"), Some(0.5));
        assert_eq!(s.acceptance("deep"), Some(1.0));
        assert_eq!(s.acceptance("unknown"), None);
        assert_eq!(s.total_proposed(), 3);
        assert_eq!(s.total_accepted(), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MoveStats::new();
        a.record("x", true);
        let mut b = MoveStats::new();
        b.record("x", false);
        b.record("y", true);
        a.merge(&b);
        assert_eq!(a.counts("x"), (2, 1));
        assert_eq!(a.counts("y"), (1, 1));
        let names: Vec<&str> = a.iter().map(|(k, _, _)| k).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
