//! Classical (non-neural) proposal kernels.

use dt_lattice::{Configuration, SiteId, Species};
use rand::{Rng, RngExt};

use crate::kinds::{Proposal, ProposalContext, ProposalKernel, ProposedMove};

/// The classical local move: swap the species of two uniformly chosen
/// sites. Symmetric, so the proposal-ratio term is zero.
#[derive(Debug, Clone, Default)]
pub struct LocalSwap {
    /// When true, resample until the two sites carry different species
    /// (avoids no-op moves; still symmetric).
    pub distinct_species_only: bool,
}

impl LocalSwap {
    /// A swap kernel that skips no-op same-species swaps.
    pub fn new() -> Self {
        LocalSwap {
            distinct_species_only: true,
        }
    }
}

impl ProposalKernel for LocalSwap {
    fn propose(
        &mut self,
        config: &Configuration,
        _ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let n = config.num_sites();
        let (a, b) = loop {
            let a = rng.random_range(0..n) as SiteId;
            let b = rng.random_range(0..n) as SiteId;
            if a == b {
                continue;
            }
            if self.distinct_species_only && config.species_at(a) == config.species_at(b) {
                continue;
            }
            break (a, b);
        };
        Proposal {
            mv: ProposedMove::Swap { a, b },
            log_q_forward: 0.0,
            log_q_reverse: 0.0,
        }
    }

    fn name(&self) -> &str {
        "local-swap"
    }

    fn typical_update_size(&self) -> usize {
        2
    }
}

/// Nearest-neighbor swap: exchange a site with one of its first-shell
/// neighbors — the physically local move class that mimics
/// vacancy-mediated diffusion kinetics.
///
/// Symmetric: site `i` is uniform and the neighbor `j` uniform over `i`'s
/// `z₁` neighbors; since every site has the same coordination and the
/// neighbor relation is symmetric (with image multiplicity),
/// `q(x'|x) = q(x|x') = [1/(N z₁)]·(multiplicity of the i–j bond)` for the
/// unordered pair either way.
///
/// Unlike [`LocalSwap`], same-species pairs are NOT resampled away: the
/// count of *unlike adjacent* pairs is configuration-dependent (it is
/// essentially the energy), so conditioning on it would make the proposal
/// asymmetric. Same-species draws are returned as harmless no-op swaps.
#[derive(Debug, Clone, Default)]
pub struct NeighborSwap;

impl NeighborSwap {
    /// A first-shell neighbor-swap kernel.
    pub fn new() -> Self {
        NeighborSwap
    }
}

impl ProposalKernel for NeighborSwap {
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let _ = config;
        let n = ctx.neighbors.num_sites();
        let a = rng.random_range(0..n) as SiteId;
        let nbrs = ctx.neighbors.neighbors(a, 0);
        let b = nbrs[rng.random_range(0..nbrs.len())];
        Proposal {
            mv: ProposedMove::Swap { a, b },
            log_q_forward: 0.0,
            log_q_reverse: 0.0,
        }
    }

    fn name(&self) -> &str {
        "neighbor-swap"
    }

    fn typical_update_size(&self) -> usize {
        2
    }
}

/// The naive global update: choose `k` distinct sites and redistribute
/// their species multiset uniformly at random among them.
///
/// The multiset is identical before and after, so for a fixed site set the
/// proposal is symmetric: `q(x'|x) = q(x|x') = Π_a m_a! / k!` where `m_a`
/// counts species `a` in the multiset — both log terms are reported as 0
/// since they cancel. This is the "global updates have vanishing
/// acceptance" baseline of the paper's motivation.
#[derive(Debug, Clone)]
pub struct RandomReassign {
    k: usize,
    site_buf: Vec<SiteId>,
    species_buf: Vec<Species>,
}

impl RandomReassign {
    /// Kernel updating `k` sites per proposal.
    ///
    /// # Panics
    /// Panics when `k < 2`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2, "reassignment needs at least 2 sites");
        RandomReassign {
            k,
            site_buf: Vec::new(),
            species_buf: Vec::new(),
        }
    }

    /// The update size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Choose `k` distinct sites uniformly (partial Fisher–Yates), ascending.
pub(crate) fn sample_distinct_sites(n: usize, k: usize, buf: &mut Vec<SiteId>, rng: &mut dyn Rng) {
    assert!(k <= n, "cannot choose {k} distinct sites from {n}");
    buf.clear();
    buf.extend(0..n as SiteId);
    for i in 0..k {
        let j = rng.random_range(i..n);
        buf.swap(i, j);
    }
    buf.truncate(k);
    buf.sort_unstable();
}

impl ProposalKernel for RandomReassign {
    fn propose(
        &mut self,
        config: &Configuration,
        _ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let n = config.num_sites();
        let k = self.k.min(n);
        let mut sites = std::mem::take(&mut self.site_buf);
        sample_distinct_sites(n, k, &mut sites, rng);

        // Shuffle the species multiset of the chosen sites.
        let mut species = std::mem::take(&mut self.species_buf);
        species.clear();
        species.extend(sites.iter().map(|&s| config.species_at(s)));
        for i in (1..species.len()).rev() {
            let j = rng.random_range(0..=i);
            species.swap(i, j);
        }

        let moves: Vec<(SiteId, Species)> =
            sites.iter().copied().zip(species.iter().copied()).collect();
        self.site_buf = sites;
        self.species_buf = species;
        Proposal {
            mv: ProposedMove::Reassign { moves },
            log_q_forward: 0.0,
            log_q_reverse: 0.0,
        }
    }

    fn name(&self) -> &str {
        "random-reassign"
    }

    fn typical_update_size(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::apply_move;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx_fixture() -> (Supercell, dt_lattice::NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    #[test]
    fn local_swap_proposes_distinct_species() {
        let (_, nt, comp) = ctx_fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = Configuration::random(&comp, &mut rng);
        let mut kernel = LocalSwap::new();
        for _ in 0..100 {
            let p = kernel.propose(&config, &ctx, &mut rng);
            match p.mv {
                ProposedMove::Swap { a, b } => {
                    assert_ne!(a, b);
                    assert_ne!(config.species_at(a), config.species_at(b));
                }
                _ => panic!("local swap must produce Swap"),
            }
            assert_eq!(p.log_q_ratio(), 0.0);
        }
    }

    #[test]
    fn random_reassign_conserves_composition() {
        let (_, nt, comp) = ctx_fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut kernel = RandomReassign::new(10);
        for _ in 0..50 {
            let p = kernel.propose(&config, &ctx, &mut rng);
            apply_move(&mut config, &p.mv);
            assert!(config.composition_matches(&comp));
        }
    }

    #[test]
    fn random_reassign_sites_are_distinct_and_sorted() {
        let (_, nt, comp) = ctx_fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = Configuration::random(&comp, &mut rng);
        let mut kernel = RandomReassign::new(8);
        for _ in 0..20 {
            let p = kernel.propose(&config, &ctx, &mut rng);
            if let ProposedMove::Reassign { moves } = &p.mv {
                assert_eq!(moves.len(), 8);
                for w in moves.windows(2) {
                    assert!(w[0].0 < w[1].0, "sites must be strictly ascending");
                }
            } else {
                panic!("expected Reassign");
            }
        }
    }

    #[test]
    fn sample_distinct_sites_is_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut buf = Vec::new();
        let mut hits = [0u32; 10];
        for _ in 0..20_000 {
            sample_distinct_sites(10, 3, &mut buf, &mut rng);
            for &s in &buf {
                hits[s as usize] += 1;
            }
        }
        // Each site should be hit ≈ 20000 * 3/10 = 6000 times.
        for (i, &h) in hits.iter().enumerate() {
            assert!((5600..6400).contains(&h), "site {i}: {h}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn reassign_needs_k_ge_2() {
        let _ = RandomReassign::new(1);
    }

    #[test]
    fn neighbor_swap_targets_first_shell() {
        let (_, nt, comp) = ctx_fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = Configuration::random(&comp, &mut rng);
        let mut kernel = NeighborSwap::new();
        for _ in 0..200 {
            let p = kernel.propose(&config, &ctx, &mut rng);
            let ProposedMove::Swap { a, b } = p.mv else {
                panic!("expected swap")
            };
            assert!(
                nt.neighbors(a, 0).contains(&b),
                "{b} is not a first-shell neighbor of {a}"
            );
            assert_eq!(p.log_q_ratio(), 0.0);
        }
    }
}
