//! On-the-fly training of the deep proposal network.
//!
//! Walkers periodically contribute configurations to a [`SampleBuffer`];
//! the [`ProposalTrainer`] fits the context network by **teacher-forced
//! maximum likelihood over the same constrained decoding process used at
//! proposal time**: for each training configuration it draws a site subset,
//! walks it in decode order, and asks the network to predict the species
//! actually present given the partial context. Maximizing this likelihood
//! maximizes the reverse proposal probability of equilibrium samples —
//! which is exactly the quantity that appears in the MH acceptance ratio.

use std::collections::VecDeque;

use dt_lattice::{Configuration, NeighborTable, SiteId};
use dt_nn::{softmax_cross_entropy_masked_flat, Adam, Matrix, Mlp};
use dt_telemetry::{Phase, Telemetry};
use rand::Rng;

use crate::deep::FeatureLayout;
use crate::local::sample_distinct_sites;

/// A bounded FIFO of training configurations with their energies.
#[derive(Debug, Clone)]
pub struct SampleBuffer {
    capacity: usize,
    items: VecDeque<(Configuration, f64)>,
}

impl SampleBuffer {
    /// Buffer holding at most `capacity` samples (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        SampleBuffer {
            capacity,
            items: VecDeque::with_capacity(capacity),
        }
    }

    /// Add a sample, evicting the oldest when full.
    pub fn push(&mut self, config: Configuration, energy: f64) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
        }
        self.items.push_back((config, energy));
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate stored samples.
    pub fn iter(&self) -> impl Iterator<Item = &(Configuration, f64)> {
        self.items.iter()
    }

    /// Drop all samples.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

/// Hyperparameters of the proposal trainer.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Sites decoded per training configuration (match the kernel's `k`).
    pub k: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Gradient-norm clip.
    pub grad_clip: f64,
    /// Configurations per minibatch.
    pub configs_per_batch: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            k: 32,
            lr: 3e-3,
            grad_clip: 5.0,
            configs_per_batch: 8,
        }
    }
}

/// Trains a proposal network from buffered walker samples.
///
/// Minibatch assembly is fully batched: every teacher-forced context row
/// of a chunk goes into one feature matrix and the network runs one
/// multi-row forward/backward per chunk. The per-row species masks are
/// kept in a single flat reused buffer (no per-row `Vec<bool>`), and the
/// decode bookkeeping buffers are reused across configurations.
#[derive(Debug)]
pub struct ProposalTrainer {
    cfg: TrainerConfig,
    layout: FeatureLayout,
    adam: Adam,
    site_buf: Vec<SiteId>,
    /// Flat `rows × m` mask buffer, reused across chunks.
    mask_buf: Vec<bool>,
    /// Per-config decided flags, reused across configurations.
    decided_buf: Vec<bool>,
    /// Per-config multiset budget, reused across configurations.
    remaining_buf: Vec<usize>,
    tel: Telemetry,
}

impl ProposalTrainer {
    /// New trainer for networks with the given feature layout.
    pub fn new(layout: FeatureLayout, cfg: TrainerConfig) -> Self {
        let m = layout.num_species;
        ProposalTrainer {
            adam: Adam::with_lr(cfg.lr),
            mask_buf: Vec::with_capacity(cfg.configs_per_batch * cfg.k * m),
            decided_buf: Vec::new(),
            remaining_buf: vec![0; m],
            cfg,
            layout,
            site_buf: Vec::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; each epoch records one [`Phase::Train`]
    /// span.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Run one epoch over the buffer; returns the mean cross-entropy per
    /// decoded site (nats). Returns `None` when the buffer is empty.
    pub fn train_epoch(
        &mut self,
        net: &mut Mlp,
        buffer: &SampleBuffer,
        neighbors: &NeighborTable,
        rng: &mut dyn Rng,
    ) -> Option<f64> {
        if buffer.is_empty() {
            return None;
        }
        assert_eq!(net.in_dim(), self.layout.dim(), "net/layout mismatch");
        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::Train);
        let m = self.layout.num_species;
        let k = self.cfg.k;
        let dim = self.layout.dim();

        let mut total_loss = 0.0;
        let mut total_rows = 0usize;

        let configs: Vec<&Configuration> = buffer.iter().map(|(c, _)| c).collect();
        for chunk in configs.chunks(self.cfg.configs_per_batch) {
            let rows = chunk.len() * k.min(chunk[0].num_sites());
            let mut features = Matrix::zeros(rows, dim);
            let mut targets = Vec::with_capacity(rows);
            self.mask_buf.clear();
            let mut row = 0usize;

            for config in chunk {
                let n = config.num_sites();
                let kk = k.min(n);
                let mut sites = std::mem::take(&mut self.site_buf);
                sample_distinct_sites(n, kk, &mut sites, rng);

                // Teacher-forced decode with the configuration's own species.
                self.decided_buf.clear();
                self.decided_buf.resize(n, true);
                for &s in &sites {
                    self.decided_buf[s as usize] = false;
                }
                self.remaining_buf.clear();
                self.remaining_buf.resize(m, 0);
                for &s in &sites {
                    self.remaining_buf[config.species_at(s).index()] += 1;
                }
                for (step, &site) in sites.iter().enumerate() {
                    self.layout.fill(
                        features.row_mut(row),
                        site,
                        neighbors,
                        config.species(),
                        &self.decided_buf,
                        &self.remaining_buf,
                        kk - step,
                        step as f64 / kk as f64,
                    );
                    let target = config.species_at(site);
                    targets.push(target.index());
                    self.mask_buf
                        .extend(self.remaining_buf.iter().map(|&r| r > 0));
                    self.remaining_buf[target.index()] -= 1;
                    self.decided_buf[site as usize] = true;
                    row += 1;
                }
                self.site_buf = sites;
            }
            debug_assert_eq!(row, rows);

            // All rows were built upfront, so the whole chunk runs one
            // multi-row forward (and one backward) — never row-by-row.
            let out = net.forward_train(&features);
            let (loss, grad) = softmax_cross_entropy_masked_flat(&out, &targets, &self.mask_buf);
            net.zero_grad();
            net.backward(&grad);
            net.clip_grad_norm(self.cfg.grad_clip);
            self.adam.step(net);

            total_loss += loss * rows as f64;
            total_rows += rows;
        }
        Some(total_loss / total_rows as f64)
    }

    /// Train until the epoch loss stops improving by `tol` or `max_epochs`
    /// is hit; returns the final loss (`None` for an empty buffer).
    pub fn train_until(
        &mut self,
        net: &mut Mlp,
        buffer: &SampleBuffer,
        neighbors: &NeighborTable,
        max_epochs: usize,
        tol: f64,
        rng: &mut dyn Rng,
    ) -> Option<f64> {
        let mut prev = f64::INFINITY;
        let mut last = None;
        for _ in 0..max_epochs {
            let loss = self.train_epoch(net, buffer, neighbors, rng)?;
            last = Some(loss);
            if prev - loss < tol {
                break;
            }
            prev = loss;
        }
        last
    }
}

/// Convenience: generate equilibrium-ish training configurations for tests
/// and benchmarks by randomly shuffling within a composition.
pub fn random_training_set<R: Rng + ?Sized>(
    comp: &dt_lattice::Composition,
    count: usize,
    rng: &mut R,
) -> SampleBuffer {
    let mut buf = SampleBuffer::new(count.max(1));
    for _ in 0..count {
        buf.push(Configuration::random(comp, rng), 0.0);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deep::{DeepProposal, DeepProposalConfig};
    use crate::kinds::{ProposalContext, ProposalKernel, ProposedMove};
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn buffer_evicts_oldest() {
        let comp = Composition::equiatomic(2, 4).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut buf = SampleBuffer::new(2);
        for e in 0..4 {
            buf.push(Configuration::random(&comp, &mut rng), e as f64);
        }
        assert_eq!(buf.len(), 2);
        let energies: Vec<f64> = buf.iter().map(|&(_, e)| e).collect();
        assert_eq!(energies, vec![2.0, 3.0]);
    }

    #[test]
    fn training_reduces_loss_on_ordered_configs() {
        // Train on B2-ordered configurations: the network must learn the
        // strong sublattice correlation, so the loss should fall well below
        // the uniform-guess entropy.
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let layout = FeatureLayout {
            num_species: 4,
            num_shells: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut net = {
            let cfg = DeepProposalConfig {
                k: 16,
                hidden: vec![32, 32],
            };
            DeepProposal::new(4, 2, &cfg, &mut rng).net().clone()
        };
        let mut buf = SampleBuffer::new(16);
        for _ in 0..16 {
            buf.push(Configuration::b2_ordered(&cell, 4), 0.0);
        }
        let mut trainer = ProposalTrainer::new(
            layout,
            TrainerConfig {
                k: 16,
                lr: 3e-3,
                grad_clip: 5.0,
                configs_per_batch: 4,
            },
        );
        let first = trainer.train_epoch(&mut net, &buf, &nt, &mut rng).unwrap();
        let mut last = first;
        for _ in 0..40 {
            last = trainer.train_epoch(&mut net, &buf, &nt, &mut rng).unwrap();
        }
        assert!(
            last < first * 0.5,
            "loss should halve on ordered data: {first} -> {last}"
        );
        // Uniform guessing over 4 species costs ln 4 ≈ 1.386 nats.
        assert!(last < 1.0, "final loss {last} should beat uniform");
    }

    #[test]
    fn trained_proposal_reproduces_training_order() {
        // After training on B2 configurations, proposals from a B2 state
        // should mostly re-propose B2-compatible species.
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let cfg = DeepProposalConfig {
            k: 12,
            hidden: vec![32, 32],
        };
        let mut kern = DeepProposal::new(4, 2, &cfg, &mut rng);
        let layout = kern.layout();
        let mut buf = SampleBuffer::new(8);
        for _ in 0..8 {
            buf.push(Configuration::b2_ordered(&cell, 4), 0.0);
        }
        let mut trainer = ProposalTrainer::new(
            layout,
            TrainerConfig {
                k: 12,
                lr: 3e-3,
                grad_clip: 5.0,
                configs_per_batch: 4,
            },
        );
        for _ in 0..60 {
            trainer
                .train_epoch(kern.net_mut(), &buf, &nt, &mut rng)
                .unwrap();
        }
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let b2 = Configuration::b2_ordered(&cell, 4);
        let mut consistent = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let p = kern.propose(&b2, &ctx, &mut rng);
            if let ProposedMove::Reassign { moves } = &p.mv {
                for &(site, s) in moves {
                    total += 1;
                    let sub = cell.sublattice(site);
                    // B2 split: species 0/1 on sublattice 0, 2/3 on 1.
                    if (sub == 0 && s.0 < 2) || (sub == 1 && s.0 >= 2) {
                        consistent += 1;
                    }
                }
            }
        }
        let frac = consistent as f64 / total as f64;
        assert!(
            frac > 0.8,
            "trained proposals should respect B2 order: {frac}"
        );
    }

    #[test]
    fn empty_buffer_returns_none() {
        let nt = Supercell::cubic(Structure::bcc(), 2).neighbor_table(2);
        let layout = FeatureLayout {
            num_species: 4,
            num_shells: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = DeepProposal::new(4, 2, &DeepProposalConfig::default(), &mut rng)
            .net()
            .clone();
        let buf = SampleBuffer::new(4);
        let mut trainer = ProposalTrainer::new(layout, TrainerConfig::default());
        assert!(trainer.train_epoch(&mut net, &buf, &nt, &mut rng).is_none());
    }

    #[test]
    fn train_until_stops_on_plateau() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let buf = random_training_set(&comp, 4, &mut rng);
        let layout = FeatureLayout {
            num_species: 4,
            num_shells: 2,
        };
        let mut net = DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k: 8,
                hidden: vec![8],
            },
            &mut rng,
        )
        .net()
        .clone();
        let mut trainer = ProposalTrainer::new(
            layout,
            TrainerConfig {
                k: 8,
                ..TrainerConfig::default()
            },
        );
        let loss = trainer
            .train_until(&mut net, &buf, &nt, 50, 1e-4, &mut rng)
            .unwrap();
        assert!(loss.is_finite() && loss > 0.0);
    }
}
