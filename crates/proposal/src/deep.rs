//! The deep, global, composition-conserving proposal — DeepThermo's core
//! contribution.
//!
//! ## Mechanism
//!
//! A proposal updates `k` sites chosen uniformly at random. The species
//! multiset currently on those sites is redistributed by **constrained
//! autoregressive decoding**: sites are visited in ascending index order
//! and a shared context network assigns each a species drawn from a
//! masked softmax, where the mask forbids species whose multiset budget is
//! exhausted — so composition is conserved *exactly*, by construction.
//!
//! The context features are local (decided-neighbor species histograms per
//! coordination shell) plus the remaining multiset budget, so a trained
//! network reproduces the short-range order of the ensemble it was trained
//! on and proposes *plausible global rearrangements* rather than uniform
//! noise.
//!
//! ## Exactness
//!
//! Metropolis–Hastings needs `q(x'|x)` and `q(x|x')`. Both are products of
//! masked-softmax factors along the decoding order:
//!
//! * forward: contexts evolve with the **new** species as they are decoded;
//! * reverse: the reverse move selects the same site set (selection
//!   probability cancels) and decodes the **old** species, so its contexts
//!   are the original configuration restricted to already-decoded sites.
//!
//! Both passes are replayed site-by-site in this module, giving log
//! probabilities that are exact to `f64` round-off. The property tests
//! verify the replay identity `log_prob(x' → x) == log_q_reverse` and that
//! the per-site factors normalize.

use dt_lattice::{Configuration, NeighborTable, SiteId, Species};
use dt_nn::{log_softmax_masked_into, sample_categorical, Activation, ForwardScratch, Mlp};
use dt_telemetry::{Phase, Telemetry};
use rand::Rng;

use crate::kinds::{Proposal, ProposalContext, ProposalKernel, ProposedMove};
use crate::local::sample_distinct_sites;

/// Describes the feature vector consumed by the proposal network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureLayout {
    /// Number of alloy species `m`.
    pub num_species: usize,
    /// Number of coordination shells read from the neighbor table.
    pub num_shells: usize,
}

impl FeatureLayout {
    /// Feature dimension:
    /// `shells·species` (decided-neighbor histograms) + `shells`
    /// (undecided fraction) + `species` (remaining multiset budget) + 1
    /// (decode progress).
    pub fn dim(&self) -> usize {
        self.num_shells * self.num_species + self.num_shells + self.num_species + 1
    }

    /// Fill `out` with the context features of `site`.
    ///
    /// `species` is the working species array, `decided[i]` marks sites
    /// whose species is part of the context, `remaining` is the unspent
    /// multiset budget, `remaining_slots` the number of undecoded sites,
    /// and `progress` the fraction of the move already decoded.
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &self,
        out: &mut [f64],
        site: SiteId,
        neighbors: &NeighborTable,
        species: &[Species],
        decided: &[bool],
        remaining: &[usize],
        remaining_slots: usize,
        progress: f64,
    ) {
        debug_assert_eq!(out.len(), self.dim());
        out.fill(0.0);
        let m = self.num_species;
        for shell in 0..self.num_shells {
            let z = neighbors.coordination(shell) as f64;
            let base = shell * m;
            let mut undecided = 0usize;
            for &j in neighbors.neighbors(site, shell) {
                if decided[j as usize] {
                    out[base + species[j as usize].index()] += 1.0;
                } else {
                    undecided += 1;
                }
            }
            for v in &mut out[base..base + m] {
                *v /= z;
            }
            out[self.num_shells * m + shell] = undecided as f64 / z;
        }
        let rem_base = self.num_shells * m + self.num_shells;
        let slots = remaining_slots.max(1) as f64;
        for (a, &r) in remaining.iter().enumerate() {
            out[rem_base + a] = r as f64 / slots;
        }
        out[rem_base + m] = progress;
    }
}

/// Configuration of a [`DeepProposal`] kernel.
#[derive(Debug, Clone)]
pub struct DeepProposalConfig {
    /// Sites updated per proposal.
    pub k: usize,
    /// Hidden layer widths of the context network.
    pub hidden: Vec<usize>,
}

impl Default for DeepProposalConfig {
    fn default() -> Self {
        DeepProposalConfig {
            k: 32,
            hidden: vec![64, 64],
        }
    }
}

/// The deep autoregressive proposal kernel.
///
/// All inference runs on the batched engine in `dt-nn`: the forward
/// decode is genuinely autoregressive (each step's context depends on the
/// previous step's sampled species) and therefore runs batch-1 out of a
/// reused [`ForwardScratch`], but teacher-forced replay — the reverse
/// log-probability inside [`ProposalKernel::propose`] and
/// [`DeepProposal::log_prob_of_reassignment`] — knows every context row
/// upfront and runs **one k-row forward** instead of k batch-1 passes.
/// After warm-up a proposal allocates only its returned move list.
#[derive(Debug, Clone)]
pub struct DeepProposal {
    net: Mlp,
    layout: FeatureLayout,
    k: usize,
    tel: Telemetry,
    // Scratch buffers (reused across proposals; one kernel per walker).
    site_buf: Vec<SiteId>,
    decided: Vec<bool>,
    work: Vec<Species>,
    feat: Vec<f64>,
    /// Activation ping-pong buffers for the inference engine.
    scratch: ForwardScratch,
    /// `k × dim` feature rows for batched teacher-forced replay.
    batch_feat: Vec<f64>,
    /// `k × m` per-step species masks for batched replay.
    batch_mask: Vec<bool>,
    /// Per-step log-probabilities (`m`), written by the masked softmax.
    logp: Vec<f64>,
    /// Per-step species mask (`m`) for batch-1 decoding.
    mask: Vec<bool>,
    /// Remaining multiset budget (`m`).
    remaining: Vec<usize>,
    /// Second budget buffer: permutation checks and reverse replay.
    remaining_chk: Vec<usize>,
    /// Species sampled by the forward decode (`k`).
    new_species: Vec<Species>,
    /// Old species on the selected sites (`k`), for reverse replay.
    old_species: Vec<Species>,
}

impl DeepProposal {
    /// Fresh kernel with a randomly initialized network.
    pub fn new<R: Rng + ?Sized>(
        num_species: usize,
        num_shells: usize,
        cfg: &DeepProposalConfig,
        rng: &mut R,
    ) -> Self {
        let layout = FeatureLayout {
            num_species,
            num_shells,
        };
        let mut dims = vec![layout.dim()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(num_species);
        let net = Mlp::new(&dims, Activation::Relu, Activation::Identity, rng);
        DeepProposal::with_net(net, layout, cfg.k)
    }

    /// Kernel around an existing (e.g. deserialized or freshly trained)
    /// network.
    ///
    /// # Panics
    /// Panics when the network shape does not match the layout.
    pub fn with_net(net: Mlp, layout: FeatureLayout, k: usize) -> Self {
        assert_eq!(net.in_dim(), layout.dim(), "network input dim mismatch");
        assert_eq!(
            net.out_dim(),
            layout.num_species,
            "network output dim mismatch"
        );
        assert!(k >= 2, "deep proposal needs k >= 2");
        let m = layout.num_species;
        DeepProposal {
            feat: vec![0.0; layout.dim()],
            scratch: ForwardScratch::for_mlp(&net, k),
            batch_feat: vec![0.0; k * layout.dim()],
            batch_mask: vec![false; k * m],
            logp: Vec::with_capacity(m),
            mask: Vec::with_capacity(m),
            remaining: vec![0; m],
            remaining_chk: vec![0; m],
            new_species: Vec::with_capacity(k),
            old_species: Vec::with_capacity(k),
            net,
            layout,
            k,
            tel: Telemetry::disabled(),
            site_buf: Vec::new(),
            decided: Vec::new(),
            work: Vec::new(),
        }
    }

    /// Pre-size every internal buffer for a system of `num_sites` sites so
    /// the first proposal is already steady-state (no warm-up
    /// allocations). Drivers call this once per rank before sampling.
    pub fn warm_up(&mut self, num_sites: usize) {
        let k = self.k.min(num_sites);
        let dim = self.layout.dim();
        let m = self.layout.num_species;
        self.site_buf.reserve(num_sites);
        if self.decided.len() < num_sites {
            self.decided.resize(num_sites, true);
        }
        self.work.reserve(num_sites);
        if self.batch_feat.len() < k * dim {
            self.batch_feat.resize(k * dim, 0.0);
        }
        if self.batch_mask.len() < k * m {
            self.batch_mask.resize(k * m, false);
        }
        self.new_species.reserve(k);
        self.old_species.reserve(k);
        self.scratch.reserve(&self.net, k);
    }

    /// Attach a telemetry handle; each proposal records one
    /// [`Phase::Inference`] span covering the forward decode and reverse
    /// replay network passes.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Sites updated per proposal.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Change the update size.
    pub fn set_k(&mut self, k: usize) {
        assert!(k >= 2);
        self.k = k;
    }

    /// The feature layout.
    pub fn layout(&self) -> FeatureLayout {
        self.layout
    }

    /// Borrow the context network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for training.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Replace the network (e.g. after a broadcast of retrained weights).
    pub fn set_net(&mut self, net: Mlp) {
        assert_eq!(net.in_dim(), self.layout.dim());
        assert_eq!(net.out_dim(), self.layout.num_species);
        self.net = net;
    }

    /// Exact log-probability that, starting from `config`, the constrained
    /// decoder would assign `targets[i]` to `sites[i]` (sites ascending).
    ///
    /// This is the teacher-forced replay used both for the reverse
    /// probability inside [`ProposalKernel::propose`] and by the property
    /// tests; `targets` must be a permutation of the species currently on
    /// `sites`. Because every target is known upfront, all `k` context
    /// rows are built first and the network runs **once** on the whole
    /// batch — bit-identical to k sequential batch-1 passes (see the
    /// `dt-nn` equivalence suite) but several times faster.
    pub fn log_prob_of_reassignment(
        &mut self,
        config: &Configuration,
        neighbors: &NeighborTable,
        sites: &[SiteId],
        targets: &[Species],
    ) -> f64 {
        assert_eq!(sites.len(), targets.len());
        {
            // Verify `targets` is a permutation of the multiset.
            let chk = std::mem::take(&mut self.remaining_chk);
            let mut chk = multiset_counts_into(config, sites, self.layout.num_species, chk);
            for s in targets {
                assert!(chk[s.index()] > 0, "targets must match the site multiset");
                chk[s.index()] -= 1;
            }
            self.remaining_chk = chk;
        }
        self.replay_log_prob(config, neighbors, sites, targets)
    }

    /// Batched teacher-forced replay core (no permutation check).
    ///
    /// Builds the `k × dim` feature rows and `k × m` masks by walking the
    /// decode order with the known targets, runs one k-row forward, then
    /// sums the masked log-softmax factors. Zero heap allocations at
    /// steady state.
    fn replay_log_prob(
        &mut self,
        config: &Configuration,
        neighbors: &NeighborTable,
        sites: &[SiteId],
        targets: &[Species],
    ) -> f64 {
        let m = self.layout.num_species;
        let dim = self.layout.dim();
        let k = sites.len();
        let n = config.num_sites();
        self.prepare_scratch(n, config, sites);
        let mut remaining =
            multiset_counts_into(config, sites, m, std::mem::take(&mut self.remaining));
        if self.batch_feat.len() < k * dim {
            self.batch_feat.resize(k * dim, 0.0);
        }
        if self.batch_mask.len() < k * m {
            self.batch_mask.resize(k * m, false);
        }
        let mut batch_feat = std::mem::take(&mut self.batch_feat);
        for (step, (&site, &target)) in sites.iter().zip(targets).enumerate() {
            self.layout.fill(
                &mut batch_feat[step * dim..(step + 1) * dim],
                site,
                neighbors,
                &self.work,
                &self.decided,
                &remaining,
                k - step,
                step as f64 / k as f64,
            );
            for (allowed, &r) in self.batch_mask[step * m..(step + 1) * m]
                .iter_mut()
                .zip(&remaining)
            {
                *allowed = r > 0;
            }
            remaining[target.index()] -= 1;
            self.work[site as usize] = target;
            self.decided[site as usize] = true;
        }
        // ONE k-row forward instead of k batch-1 passes.
        let logits = self
            .net
            .forward_into(&batch_feat[..k * dim], k, &mut self.scratch);
        let mut logp_total = 0.0;
        for (step, &target) in targets.iter().enumerate() {
            log_softmax_masked_into(
                &logits[step * m..(step + 1) * m],
                Some(&self.batch_mask[step * m..(step + 1) * m]),
                &mut self.logp,
            );
            logp_total += self.logp[target.index()];
        }
        self.batch_feat = batch_feat;
        self.remaining = remaining;
        logp_total
    }

    /// Masked per-species log-probabilities for the next decode step,
    /// written into `self.logp` (batch-1: the forward decode is genuinely
    /// autoregressive, but it runs out of the reused scratch, so no heap
    /// allocation happens per step).
    fn site_log_probs_into(
        &mut self,
        site: SiteId,
        neighbors: &NeighborTable,
        k: usize,
        step: usize,
        remaining: &[usize],
    ) {
        let remaining_slots = k - step;
        let progress = step as f64 / k as f64;
        // Split borrows: move feat out while the net runs.
        let mut feat = std::mem::take(&mut self.feat);
        self.layout.fill(
            &mut feat,
            site,
            neighbors,
            &self.work,
            &self.decided,
            remaining,
            remaining_slots,
            progress,
        );
        let logits = self.net.forward_into(&feat, 1, &mut self.scratch);
        self.mask.clear();
        self.mask.extend(remaining.iter().map(|&r| r > 0));
        log_softmax_masked_into(logits, Some(&self.mask), &mut self.logp);
        self.feat = feat;
    }

    fn prepare_scratch(&mut self, n: usize, config: &Configuration, sites: &[SiteId]) {
        self.work.clear();
        self.work.extend_from_slice(config.species());
        self.decided.clear();
        self.decided.resize(n, true);
        for &s in sites {
            self.decided[s as usize] = false;
        }
    }
}

/// Per-species counts of the multiset on `sites`, reusing `buf`.
fn multiset_counts_into(
    config: &Configuration,
    sites: &[SiteId],
    m: usize,
    mut buf: Vec<usize>,
) -> Vec<usize> {
    buf.clear();
    buf.resize(m, 0);
    for &s in sites {
        buf[config.species_at(s).index()] += 1;
    }
    buf
}

impl ProposalKernel for DeepProposal {
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let n = config.num_sites();
        let k = self.k.min(n);
        let m = self.layout.num_species;

        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::Inference);

        let mut sites = std::mem::take(&mut self.site_buf);
        sample_distinct_sites(n, k, &mut sites, rng);

        // --- Forward decode: sample new species, contexts use new values.
        // Genuinely autoregressive (step t+1's context depends on the
        // species sampled at step t), so this is the one place batch-1
        // inference is unavoidable; it runs out of the reused scratch.
        self.prepare_scratch(n, config, &sites);
        let mut remaining_f =
            multiset_counts_into(config, &sites, m, std::mem::take(&mut self.remaining));
        self.new_species.clear();
        let mut log_q_forward = 0.0;
        for (step, &site) in sites.iter().enumerate() {
            self.site_log_probs_into(site, ctx.neighbors, k, step, &remaining_f);
            let (chosen, lp) = sample_categorical(&self.logp, rng);
            log_q_forward += lp;
            remaining_f[chosen] -= 1;
            let s = Species(chosen as u8);
            self.new_species.push(s);
            self.work[site as usize] = s;
            self.decided[site as usize] = true;
        }
        self.remaining = remaining_f;

        // --- Reverse replay: probability of decoding the old species when
        // starting from the proposed configuration. Non-selected sites are
        // identical in both states and decoded selected sites carry the old
        // species, so the context is the *original* configuration — and
        // every target is known upfront, so the whole replay is ONE k-row
        // batched forward.
        let mut old = std::mem::take(&mut self.old_species);
        old.clear();
        old.extend(sites.iter().map(|&s| config.species_at(s)));
        let log_q_reverse = self.replay_log_prob(config, ctx.neighbors, &sites, &old);
        self.old_species = old;

        let moves: Vec<(SiteId, Species)> = sites
            .iter()
            .copied()
            .zip(self.new_species.iter().copied())
            .collect();
        self.site_buf = sites;
        Proposal {
            mv: ProposedMove::Reassign { moves },
            log_q_forward,
            log_q_reverse,
        }
    }

    fn name(&self) -> &str {
        "deep-autoregressive"
    }

    fn typical_update_size(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::apply_move;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Supercell, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    fn kernel(k: usize, seed: u64) -> DeepProposal {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k,
                hidden: vec![16, 16],
            },
            &mut rng,
        )
    }

    #[test]
    fn proposals_conserve_composition() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(12, 7);
        for _ in 0..30 {
            let p = kern.propose(&config, &ctx, &mut rng);
            apply_move(&mut config, &p.mv);
            assert!(config.composition_matches(&comp));
        }
    }

    #[test]
    fn forward_logprob_matches_teacher_forced_replay() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(10, 8);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else {
            panic!("expected reassign")
        };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let targets: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
        let replay = kern.log_prob_of_reassignment(&config, &nt, &sites, &targets);
        assert!(
            (replay - p.log_q_forward).abs() < 1e-10,
            "{replay} vs {}",
            p.log_q_forward
        );
    }

    #[test]
    fn reverse_logprob_matches_replay_from_proposed_state() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(8, 9);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else {
            panic!("expected reassign")
        };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let old: Vec<Species> = sites.iter().map(|&s| config.species_at(s)).collect();
        let mut proposed = config.clone();
        apply_move(&mut proposed, &p.mv);
        let replay = kern.log_prob_of_reassignment(&proposed, &nt, &sites, &old);
        assert!(
            (replay - p.log_q_reverse).abs() < 1e-10,
            "{replay} vs {}",
            p.log_q_reverse
        );
    }

    #[test]
    fn decode_probabilities_normalize_over_all_outcomes() {
        // Tiny system: 4 selected sites holding {0,0,1,1}; the 6 distinct
        // assignments must have probabilities summing to 1.
        let cell = Supercell::cubic(Structure::simple_cubic(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = {
            let mut krng = ChaCha8Rng::seed_from_u64(11);
            DeepProposal::new(
                2,
                1,
                &DeepProposalConfig {
                    k: 4,
                    hidden: vec![8],
                },
                &mut krng,
            )
        };
        // Choose 4 sites with two of each species.
        let mut sites = Vec::new();
        let mut c0 = 0;
        let mut c1 = 0;
        for s in 0..8u32 {
            match config.species_at(s).0 {
                0 if c0 < 2 => {
                    sites.push(s);
                    c0 += 1;
                }
                1 if c1 < 2 => {
                    sites.push(s);
                    c1 += 1;
                }
                _ => {}
            }
        }
        sites.sort_unstable();
        assert_eq!(sites.len(), 4);

        // All distinct arrangements of {0,0,1,1} over 4 slots.
        let mut total = 0.0;
        let mut count = 0;
        for bits in 0u32..16 {
            if bits.count_ones() != 2 {
                continue;
            }
            let targets: Vec<Species> = (0..4)
                .map(|i| Species(u8::from(bits & (1 << i) != 0)))
                .collect();
            total += kern
                .log_prob_of_reassignment(&config, &nt, &sites, &targets)
                .exp();
            count += 1;
        }
        assert_eq!(count, 6);
        assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }

    #[test]
    fn untrained_deep_proposal_behaves_like_random_on_average() {
        // With a random network the proposal is still a valid distribution;
        // log_q values must be finite and the identity move reachable.
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(6, 10);
        for _ in 0..20 {
            let p = kern.propose(&config, &ctx, &mut rng);
            assert!(p.log_q_forward.is_finite());
            assert!(p.log_q_reverse.is_finite());
            assert!(p.log_q_forward <= 0.0 + 1e-12);
            assert!(p.log_q_reverse <= 0.0 + 1e-12);
        }
    }

    #[test]
    fn feature_layout_dim_matches_fill() {
        let (_, nt, comp) = fixture();
        let layout = FeatureLayout {
            num_species: 4,
            num_shells: 2,
        };
        assert_eq!(layout.dim(), 2 * 4 + 2 + 4 + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = Configuration::random(&comp, &mut rng);
        let mut out = vec![0.0; layout.dim()];
        let decided = vec![true; config.num_sites()];
        layout.fill(
            &mut out,
            0,
            &nt,
            config.species(),
            &decided,
            &[4, 4, 4, 4],
            16,
            0.0,
        );
        // Neighbor histograms normalize to <= 1 per shell.
        let shell0: f64 = out[0..4].iter().sum();
        assert!(
            (shell0 - 1.0).abs() < 1e-12,
            "all decided: fractions sum to 1"
        );
        assert_eq!(out[8], 0.0, "no undecided neighbors");
    }

    #[test]
    #[should_panic(expected = "multiset")]
    fn replay_rejects_non_permutation_targets() {
        let (_, nt, comp) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(4, 3);
        // Find 2 sites of species 0 and force targets that overdraw species 1.
        let sites: Vec<SiteId> = (0..config.num_sites() as SiteId)
            .filter(|&s| config.species_at(s) == Species(0))
            .take(2)
            .collect();
        let _ = kern.log_prob_of_reassignment(&config, &nt, &sites, &[Species(1), Species(1)]);
    }
}
