//! The deep, global, composition-conserving proposal — DeepThermo's core
//! contribution.
//!
//! ## Mechanism
//!
//! A proposal updates `k` sites chosen uniformly at random. The species
//! multiset currently on those sites is redistributed by **constrained
//! autoregressive decoding**: sites are visited in ascending index order
//! and a shared context network assigns each a species drawn from a
//! masked softmax, where the mask forbids species whose multiset budget is
//! exhausted — so composition is conserved *exactly*, by construction.
//!
//! The context features are local (decided-neighbor species histograms per
//! coordination shell) plus the remaining multiset budget, so a trained
//! network reproduces the short-range order of the ensemble it was trained
//! on and proposes *plausible global rearrangements* rather than uniform
//! noise.
//!
//! ## Exactness
//!
//! Metropolis–Hastings needs `q(x'|x)` and `q(x|x')`. Both are products of
//! masked-softmax factors along the decoding order:
//!
//! * forward: contexts evolve with the **new** species as they are decoded;
//! * reverse: the reverse move selects the same site set (selection
//!   probability cancels) and decodes the **old** species, so its contexts
//!   are the original configuration restricted to already-decoded sites.
//!
//! Both passes are replayed site-by-site in this module, giving log
//! probabilities that are exact to `f64` round-off. The property tests
//! verify the replay identity `log_prob(x' → x) == log_q_reverse` and that
//! the per-site factors normalize.

use dt_lattice::{Configuration, NeighborTable, SiteId, Species};
use dt_nn::{log_softmax_masked_into, sample_categorical, Activation, ForwardScratch, Mlp};
use dt_telemetry::{Phase, Telemetry};
use rand::Rng;

use crate::kinds::{Proposal, ProposalContext, ProposalKernel, ProposalSlot, ProposedMove};
use crate::local::sample_distinct_sites;

/// Describes the feature vector consumed by the proposal network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureLayout {
    /// Number of alloy species `m`.
    pub num_species: usize,
    /// Number of coordination shells read from the neighbor table.
    pub num_shells: usize,
}

impl FeatureLayout {
    /// Feature dimension:
    /// `shells·species` (decided-neighbor histograms) + `shells`
    /// (undecided fraction) + `species` (remaining multiset budget) + 1
    /// (decode progress).
    pub fn dim(&self) -> usize {
        self.num_shells * self.num_species + self.num_shells + self.num_species + 1
    }

    /// Fill `out` with the context features of `site`.
    ///
    /// `species` is the working species array, `decided[i]` marks sites
    /// whose species is part of the context, `remaining` is the unspent
    /// multiset budget, `remaining_slots` the number of undecoded sites,
    /// and `progress` the fraction of the move already decoded.
    #[allow(clippy::too_many_arguments)]
    pub fn fill(
        &self,
        out: &mut [f64],
        site: SiteId,
        neighbors: &NeighborTable,
        species: &[Species],
        decided: &[bool],
        remaining: &[usize],
        remaining_slots: usize,
        progress: f64,
    ) {
        debug_assert_eq!(out.len(), self.dim());
        out.fill(0.0);
        let m = self.num_species;
        for shell in 0..self.num_shells {
            let z = neighbors.coordination(shell) as f64;
            let base = shell * m;
            let mut undecided = 0usize;
            for &j in neighbors.neighbors(site, shell) {
                if decided[j as usize] {
                    out[base + species[j as usize].index()] += 1.0;
                } else {
                    undecided += 1;
                }
            }
            for v in &mut out[base..base + m] {
                *v /= z;
            }
            out[self.num_shells * m + shell] = undecided as f64 / z;
        }
        let rem_base = self.num_shells * m + self.num_shells;
        let slots = remaining_slots.max(1) as f64;
        for (a, &r) in remaining.iter().enumerate() {
            out[rem_base + a] = r as f64 / slots;
        }
        out[rem_base + m] = progress;
    }
}

/// Configuration of a [`DeepProposal`] kernel.
#[derive(Debug, Clone)]
pub struct DeepProposalConfig {
    /// Sites updated per proposal.
    pub k: usize,
    /// Hidden layer widths of the context network.
    pub hidden: Vec<usize>,
}

impl Default for DeepProposalConfig {
    fn default() -> Self {
        DeepProposalConfig {
            k: 32,
            hidden: vec![64, 64],
        }
    }
}

/// Flattened per-walker scratch for the lockstep multi-walker decoder
/// ([`ProposalKernel::propose_batch`] on [`DeepProposal`]). All buffers
/// are walker-major and grow-only, so a warmed kernel decodes any batch
/// up to the warmed width without touching the allocator.
#[derive(Debug, Clone, Default)]
struct LockstepLanes {
    /// Selected sites, `W × k`.
    sites: Vec<SiteId>,
    /// Working species arrays, `W × n`.
    work: Vec<Species>,
    /// Decided flags, `W × n`.
    decided: Vec<bool>,
    /// Remaining multiset budgets, `W × m`.
    remaining: Vec<usize>,
    /// Species sampled by the forward decode, `W × k`.
    new_species: Vec<Species>,
    /// Old species on the selected sites, `W × k`.
    old_species: Vec<Species>,
    /// Accumulated forward log-probabilities, `W`.
    log_q_forward: Vec<f64>,
    /// One decode step's feature rows, `W × dim`.
    step_feat: Vec<f64>,
}

impl LockstepLanes {
    /// Grow every lane for `w` walkers on an `n`-site lattice (`k` sites
    /// per move, `m` species, `dim` features). Grow-only; a no-op once
    /// warmed.
    fn reserve(&mut self, w: usize, n: usize, k: usize, m: usize, dim: usize) {
        if self.sites.len() < w * k {
            self.sites.resize(w * k, 0);
        }
        if self.work.len() < w * n {
            self.work.resize(w * n, Species(0));
        }
        if self.decided.len() < w * n {
            self.decided.resize(w * n, true);
        }
        if self.remaining.len() < w * m {
            self.remaining.resize(w * m, 0);
        }
        if self.new_species.len() < w * k {
            self.new_species.resize(w * k, Species(0));
        }
        if self.old_species.len() < w * k {
            self.old_species.resize(w * k, Species(0));
        }
        if self.log_q_forward.len() < w {
            self.log_q_forward.resize(w, 0.0);
        }
        if self.step_feat.len() < w * dim {
            self.step_feat.resize(w * dim, 0.0);
        }
    }
}

/// The deep autoregressive proposal kernel.
///
/// All inference runs on the batched engine in `dt-nn`. The forward
/// decode is genuinely autoregressive (each step's context depends on the
/// previous step's sampled species), so a single walker decodes batch-1
/// out of a reused [`ForwardScratch`] — but across a batch of walkers
/// ([`ProposalKernel::propose_batch`]) the decode runs in **lockstep**:
/// every walker's step-`t` context row is built, the shared network runs
/// once as a W-row matmul, and each walker samples its species from its
/// own RNG stream in ascending slot order. Teacher-forced replay — the
/// reverse log-probability and [`DeepProposal::log_prob_of_reassignment`]
/// — knows every context row upfront and runs **one (W·k)-row forward**.
/// Both are bit-identical to the batch-1 path because the engine's
/// per-row accumulation order is batch-size-independent and each slot's
/// randomness comes from its own stream. After warm-up a proposal
/// allocates only its returned move lists.
#[derive(Debug, Clone)]
pub struct DeepProposal {
    net: Mlp,
    layout: FeatureLayout,
    k: usize,
    tel: Telemetry,
    // Scratch buffers (reused across proposals; one kernel per walker).
    site_buf: Vec<SiteId>,
    decided: Vec<bool>,
    work: Vec<Species>,
    feat: Vec<f64>,
    /// Activation ping-pong buffers for the inference engine.
    scratch: ForwardScratch,
    /// `k × dim` feature rows for batched teacher-forced replay.
    batch_feat: Vec<f64>,
    /// `k × m` per-step species masks for batched replay.
    batch_mask: Vec<bool>,
    /// Per-step log-probabilities (`m`), written by the masked softmax.
    logp: Vec<f64>,
    /// Per-step species mask (`m`) for batch-1 decoding.
    mask: Vec<bool>,
    /// Remaining multiset budget (`m`).
    remaining: Vec<usize>,
    /// Second budget buffer: permutation checks and reverse replay.
    remaining_chk: Vec<usize>,
    /// Species sampled by the forward decode (`k`).
    new_species: Vec<Species>,
    /// Old species on the selected sites (`k`), for reverse replay.
    old_species: Vec<Species>,
    /// Per-walker lanes for the lockstep multi-walker decoder.
    lanes: LockstepLanes,
    /// Achieved batch width of the most recent call.
    last_batch_rows: usize,
}

impl DeepProposal {
    /// Fresh kernel with a randomly initialized network.
    pub fn new<R: Rng + ?Sized>(
        num_species: usize,
        num_shells: usize,
        cfg: &DeepProposalConfig,
        rng: &mut R,
    ) -> Self {
        let layout = FeatureLayout {
            num_species,
            num_shells,
        };
        let mut dims = vec![layout.dim()];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(num_species);
        let net = Mlp::new(&dims, Activation::Relu, Activation::Identity, rng);
        DeepProposal::with_net(net, layout, cfg.k)
    }

    /// Kernel around an existing (e.g. deserialized or freshly trained)
    /// network.
    ///
    /// # Panics
    /// Panics when the network shape does not match the layout.
    pub fn with_net(net: Mlp, layout: FeatureLayout, k: usize) -> Self {
        assert_eq!(net.in_dim(), layout.dim(), "network input dim mismatch");
        assert_eq!(
            net.out_dim(),
            layout.num_species,
            "network output dim mismatch"
        );
        assert!(k >= 2, "deep proposal needs k >= 2");
        let m = layout.num_species;
        DeepProposal {
            feat: vec![0.0; layout.dim()],
            scratch: ForwardScratch::for_mlp(&net, k),
            batch_feat: vec![0.0; k * layout.dim()],
            batch_mask: vec![false; k * m],
            logp: Vec::with_capacity(m),
            mask: Vec::with_capacity(m),
            remaining: vec![0; m],
            remaining_chk: vec![0; m],
            new_species: Vec::with_capacity(k),
            old_species: Vec::with_capacity(k),
            net,
            layout,
            k,
            tel: Telemetry::disabled(),
            site_buf: Vec::new(),
            decided: Vec::new(),
            work: Vec::new(),
            lanes: LockstepLanes::default(),
            last_batch_rows: 1,
        }
    }

    /// Pre-size every internal buffer for a system of `num_sites` sites so
    /// the first proposal is already steady-state (no warm-up
    /// allocations). Drivers call this once per rank before sampling;
    /// equivalent to [`DeepProposal::warm_up_for`] with a single walker.
    pub fn warm_up(&mut self, num_sites: usize) {
        self.warm_up_for(num_sites, 1);
    }

    /// Pre-size every internal buffer — including the lockstep lanes —
    /// for batches of up to `walkers` walkers on a `num_sites` lattice,
    /// so the first [`ProposalKernel::propose_batch`] call is already
    /// steady-state.
    pub fn warm_up_for(&mut self, num_sites: usize, walkers: usize) {
        let w = walkers.max(1);
        let k = self.k.min(num_sites);
        let dim = self.layout.dim();
        let m = self.layout.num_species;
        self.site_buf.reserve(num_sites);
        if self.decided.len() < num_sites {
            self.decided.resize(num_sites, true);
        }
        self.work.reserve(num_sites);
        if self.batch_feat.len() < w * k * dim {
            self.batch_feat.resize(w * k * dim, 0.0);
        }
        if self.batch_mask.len() < w * k * m {
            self.batch_mask.resize(w * k * m, false);
        }
        self.new_species.reserve(k);
        self.old_species.reserve(k);
        self.lanes.reserve(w, num_sites, k, m, dim);
        self.scratch.reserve(&self.net, w * k);
    }

    /// Attach a telemetry handle; each proposal records one
    /// [`Phase::Inference`] span covering the forward decode and reverse
    /// replay network passes.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Sites updated per proposal.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Change the update size.
    pub fn set_k(&mut self, k: usize) {
        assert!(k >= 2);
        self.k = k;
    }

    /// The feature layout.
    pub fn layout(&self) -> FeatureLayout {
        self.layout
    }

    /// Borrow the context network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Mutable access for training.
    pub fn net_mut(&mut self) -> &mut Mlp {
        &mut self.net
    }

    /// Replace the network (e.g. after a broadcast of retrained weights).
    pub fn set_net(&mut self, net: Mlp) {
        assert_eq!(net.in_dim(), self.layout.dim());
        assert_eq!(net.out_dim(), self.layout.num_species);
        self.net = net;
    }

    /// Exact log-probability that, starting from `config`, the constrained
    /// decoder would assign `targets[i]` to `sites[i]` (sites ascending).
    ///
    /// This is the teacher-forced replay used both for the reverse
    /// probability inside [`ProposalKernel::propose`] and by the property
    /// tests; `targets` must be a permutation of the species currently on
    /// `sites`. Because every target is known upfront, all `k` context
    /// rows are built first and the network runs **once** on the whole
    /// batch — bit-identical to k sequential batch-1 passes (see the
    /// `dt-nn` equivalence suite) but several times faster.
    pub fn log_prob_of_reassignment(
        &mut self,
        config: &Configuration,
        neighbors: &NeighborTable,
        sites: &[SiteId],
        targets: &[Species],
    ) -> f64 {
        assert_eq!(sites.len(), targets.len());
        {
            // Verify `targets` is a permutation of the multiset.
            let chk = std::mem::take(&mut self.remaining_chk);
            let mut chk = multiset_counts_into(config, sites, self.layout.num_species, chk);
            for s in targets {
                assert!(chk[s.index()] > 0, "targets must match the site multiset");
                chk[s.index()] -= 1;
            }
            self.remaining_chk = chk;
        }
        self.replay_log_prob(config, neighbors, sites, targets)
    }

    /// Batched teacher-forced replay core (no permutation check).
    ///
    /// Builds the `k × dim` feature rows and `k × m` masks by walking the
    /// decode order with the known targets, runs one k-row forward, then
    /// sums the masked log-softmax factors. Zero heap allocations at
    /// steady state.
    fn replay_log_prob(
        &mut self,
        config: &Configuration,
        neighbors: &NeighborTable,
        sites: &[SiteId],
        targets: &[Species],
    ) -> f64 {
        let m = self.layout.num_species;
        let dim = self.layout.dim();
        let k = sites.len();
        let n = config.num_sites();
        self.prepare_scratch(n, config, sites);
        let mut remaining =
            multiset_counts_into(config, sites, m, std::mem::take(&mut self.remaining));
        if self.batch_feat.len() < k * dim {
            self.batch_feat.resize(k * dim, 0.0);
        }
        if self.batch_mask.len() < k * m {
            self.batch_mask.resize(k * m, false);
        }
        let mut batch_feat = std::mem::take(&mut self.batch_feat);
        for (step, (&site, &target)) in sites.iter().zip(targets).enumerate() {
            self.layout.fill(
                &mut batch_feat[step * dim..(step + 1) * dim],
                site,
                neighbors,
                &self.work,
                &self.decided,
                &remaining,
                k - step,
                step as f64 / k as f64,
            );
            for (allowed, &r) in self.batch_mask[step * m..(step + 1) * m]
                .iter_mut()
                .zip(&remaining)
            {
                *allowed = r > 0;
            }
            remaining[target.index()] -= 1;
            self.work[site as usize] = target;
            self.decided[site as usize] = true;
        }
        // ONE k-row forward instead of k batch-1 passes.
        let logits = self
            .net
            .forward_into(&batch_feat[..k * dim], k, &mut self.scratch);
        let mut logp_total = 0.0;
        for (step, &target) in targets.iter().enumerate() {
            log_softmax_masked_into(
                &logits[step * m..(step + 1) * m],
                Some(&self.batch_mask[step * m..(step + 1) * m]),
                &mut self.logp,
            );
            logp_total += self.logp[target.index()];
        }
        self.batch_feat = batch_feat;
        self.remaining = remaining;
        logp_total
    }

    /// Masked per-species log-probabilities for the next decode step,
    /// written into `self.logp` (batch-1: the forward decode is genuinely
    /// autoregressive, but it runs out of the reused scratch, so no heap
    /// allocation happens per step).
    fn site_log_probs_into(
        &mut self,
        site: SiteId,
        neighbors: &NeighborTable,
        k: usize,
        step: usize,
        remaining: &[usize],
    ) {
        let remaining_slots = k - step;
        let progress = step as f64 / k as f64;
        // Split borrows: move feat out while the net runs.
        let mut feat = std::mem::take(&mut self.feat);
        self.layout.fill(
            &mut feat,
            site,
            neighbors,
            &self.work,
            &self.decided,
            remaining,
            remaining_slots,
            progress,
        );
        let logits = self.net.forward_into(&feat, 1, &mut self.scratch);
        self.mask.clear();
        self.mask.extend(remaining.iter().map(|&r| r > 0));
        log_softmax_masked_into(logits, Some(&self.mask), &mut self.logp);
        self.feat = feat;
    }

    fn prepare_scratch(&mut self, n: usize, config: &Configuration, sites: &[SiteId]) {
        self.work.clear();
        self.work.extend_from_slice(config.species());
        self.decided.clear();
        self.decided.resize(n, true);
        for &s in sites {
            self.decided[s as usize] = false;
        }
    }
}

/// Per-species counts of the multiset on `sites`, reusing `buf`.
fn multiset_counts_into(
    config: &Configuration,
    sites: &[SiteId],
    m: usize,
    mut buf: Vec<usize>,
) -> Vec<usize> {
    buf.clear();
    buf.resize(m, 0);
    for &s in sites {
        buf[config.species_at(s).index()] += 1;
    }
    buf
}

impl ProposalKernel for DeepProposal {
    fn propose(
        &mut self,
        config: &Configuration,
        ctx: &ProposalContext<'_>,
        rng: &mut dyn Rng,
    ) -> Proposal {
        let n = config.num_sites();
        let k = self.k.min(n);
        let m = self.layout.num_species;

        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::Inference);

        let mut sites = std::mem::take(&mut self.site_buf);
        sample_distinct_sites(n, k, &mut sites, rng);

        // --- Forward decode: sample new species, contexts use new values.
        // Genuinely autoregressive (step t+1's context depends on the
        // species sampled at step t), so this is the one place batch-1
        // inference is unavoidable; it runs out of the reused scratch.
        self.prepare_scratch(n, config, &sites);
        let mut remaining_f =
            multiset_counts_into(config, &sites, m, std::mem::take(&mut self.remaining));
        self.new_species.clear();
        let mut log_q_forward = 0.0;
        for (step, &site) in sites.iter().enumerate() {
            self.site_log_probs_into(site, ctx.neighbors, k, step, &remaining_f);
            let (chosen, lp) = sample_categorical(&self.logp, rng);
            log_q_forward += lp;
            remaining_f[chosen] -= 1;
            let s = Species(chosen as u8);
            self.new_species.push(s);
            self.work[site as usize] = s;
            self.decided[site as usize] = true;
        }
        self.remaining = remaining_f;

        // --- Reverse replay: probability of decoding the old species when
        // starting from the proposed configuration. Non-selected sites are
        // identical in both states and decoded selected sites carry the old
        // species, so the context is the *original* configuration — and
        // every target is known upfront, so the whole replay is ONE k-row
        // batched forward.
        let mut old = std::mem::take(&mut self.old_species);
        old.clear();
        old.extend(sites.iter().map(|&s| config.species_at(s)));
        let log_q_reverse = self.replay_log_prob(config, ctx.neighbors, &sites, &old);
        self.old_species = old;

        let moves: Vec<(SiteId, Species)> = sites
            .iter()
            .copied()
            .zip(self.new_species.iter().copied())
            .collect();
        self.site_buf = sites;
        self.last_batch_rows = 1;
        Proposal {
            mv: ProposedMove::Reassign { moves },
            log_q_forward,
            log_q_reverse,
        }
    }

    /// The lockstep multi-walker decoder: one W-row forward per decode
    /// step, one (W·k)-row forward for every reverse replay, each slot's
    /// randomness drawn from its own stream in ascending slot order —
    /// bit-identical, slot for slot, to single-slot
    /// [`ProposalKernel::propose`] calls.
    ///
    /// # Panics
    /// Panics when the slots' configurations do not share a lattice size.
    fn propose_batch(
        &mut self,
        slots: &mut [ProposalSlot<'_>],
        ctx: &ProposalContext<'_>,
        out: &mut Vec<Proposal>,
    ) {
        out.clear();
        let w = slots.len();
        if w == 0 {
            self.last_batch_rows = 0;
            return;
        }
        let n = slots[0].config.num_sites();
        assert!(
            slots.iter().all(|s| s.config.num_sites() == n),
            "lockstep decode needs a shared lattice across slots"
        );
        let k = self.k.min(n);
        let m = self.layout.num_species;
        let dim = self.layout.dim();
        self.last_batch_rows = w;

        // Clone the handle so the span's borrow does not pin `self`.
        let tel = self.tel.clone();
        let _span = tel.span(Phase::Inference);

        // Grow-only; a no-op once warmed via `warm_up_for`.
        self.lanes.reserve(w, n, k, m, dim);
        if self.batch_feat.len() < w * k * dim {
            self.batch_feat.resize(w * k * dim, 0.0);
        }
        if self.batch_mask.len() < w * k * m {
            self.batch_mask.resize(w * k * m, false);
        }

        // --- Per-slot site selection and lane initialization, slot order.
        // Each slot's draws match a single-slot `propose` exactly.
        for (i, slot) in slots.iter_mut().enumerate() {
            let mut sites = std::mem::take(&mut self.site_buf);
            sample_distinct_sites(n, k, &mut sites, slot.rng);
            self.lanes.sites[i * k..(i + 1) * k].copy_from_slice(&sites);
            self.site_buf = sites;
            self.lanes.work[i * n..(i + 1) * n].copy_from_slice(slot.config.species());
            self.lanes.decided[i * n..(i + 1) * n].fill(true);
            self.lanes.remaining[i * m..(i + 1) * m].fill(0);
            for t in 0..k {
                let site = self.lanes.sites[i * k + t];
                let old = slot.config.species_at(site);
                self.lanes.decided[i * n + site as usize] = false;
                self.lanes.old_species[i * k + t] = old;
                self.lanes.remaining[i * m + old.index()] += 1;
            }
            self.lanes.log_q_forward[i] = 0.0;
        }

        // --- Lockstep forward decode: each step builds every walker's
        // context row, runs ONE W-row forward, then samples per walker in
        // slot order from that walker's own stream.
        let layout = self.layout;
        for t in 0..k {
            {
                let lanes = &mut self.lanes;
                for i in 0..w {
                    layout.fill(
                        &mut lanes.step_feat[i * dim..(i + 1) * dim],
                        lanes.sites[i * k + t],
                        ctx.neighbors,
                        &lanes.work[i * n..(i + 1) * n],
                        &lanes.decided[i * n..(i + 1) * n],
                        &lanes.remaining[i * m..(i + 1) * m],
                        k - t,
                        t as f64 / k as f64,
                    );
                }
            }
            let logits =
                self.net
                    .forward_into(&self.lanes.step_feat[..w * dim], w, &mut self.scratch);
            for (i, slot) in slots.iter_mut().enumerate() {
                self.mask.clear();
                self.mask.extend(
                    self.lanes.remaining[i * m..(i + 1) * m]
                        .iter()
                        .map(|&r| r > 0),
                );
                log_softmax_masked_into(
                    &logits[i * m..(i + 1) * m],
                    Some(&self.mask),
                    &mut self.logp,
                );
                let (chosen, lp) = sample_categorical(&self.logp, slot.rng);
                let s = Species(chosen as u8);
                let site = self.lanes.sites[i * k + t];
                self.lanes.log_q_forward[i] += lp;
                self.lanes.remaining[i * m + chosen] -= 1;
                self.lanes.new_species[i * k + t] = s;
                self.lanes.work[i * n + site as usize] = s;
                self.lanes.decided[i * n + site as usize] = true;
            }
        }

        // --- Batched reverse replay: contexts are the *original*
        // configurations (decoded selected sites carry the old species),
        // and every target is known upfront — so all W·k rows run as ONE
        // forward.
        for (i, slot) in slots.iter().enumerate() {
            self.lanes.work[i * n..(i + 1) * n].copy_from_slice(slot.config.species());
            self.lanes.decided[i * n..(i + 1) * n].fill(true);
            self.lanes.remaining[i * m..(i + 1) * m].fill(0);
            for t in 0..k {
                let site = self.lanes.sites[i * k + t];
                self.lanes.decided[i * n + site as usize] = false;
                self.lanes.remaining[i * m + self.lanes.old_species[i * k + t].index()] += 1;
            }
        }
        {
            let lanes = &mut self.lanes;
            let batch_feat = &mut self.batch_feat;
            let batch_mask = &mut self.batch_mask;
            for i in 0..w {
                for t in 0..k {
                    let row = i * k + t;
                    let site = lanes.sites[i * k + t];
                    layout.fill(
                        &mut batch_feat[row * dim..(row + 1) * dim],
                        site,
                        ctx.neighbors,
                        &lanes.work[i * n..(i + 1) * n],
                        &lanes.decided[i * n..(i + 1) * n],
                        &lanes.remaining[i * m..(i + 1) * m],
                        k - t,
                        t as f64 / k as f64,
                    );
                    for (allowed, &r) in batch_mask[row * m..(row + 1) * m]
                        .iter_mut()
                        .zip(&lanes.remaining[i * m..(i + 1) * m])
                    {
                        *allowed = r > 0;
                    }
                    let target = lanes.old_species[i * k + t];
                    lanes.remaining[i * m + target.index()] -= 1;
                    lanes.work[i * n + site as usize] = target;
                    lanes.decided[i * n + site as usize] = true;
                }
            }
        }
        let logits =
            self.net
                .forward_into(&self.batch_feat[..w * k * dim], w * k, &mut self.scratch);
        out.reserve(w);
        for i in 0..w {
            let mut log_q_reverse = 0.0;
            for t in 0..k {
                let row = i * k + t;
                log_softmax_masked_into(
                    &logits[row * m..(row + 1) * m],
                    Some(&self.batch_mask[row * m..(row + 1) * m]),
                    &mut self.logp,
                );
                log_q_reverse += self.logp[self.lanes.old_species[i * k + t].index()];
            }
            let moves: Vec<(SiteId, Species)> = self.lanes.sites[i * k..(i + 1) * k]
                .iter()
                .copied()
                .zip(self.lanes.new_species[i * k..(i + 1) * k].iter().copied())
                .collect();
            out.push(Proposal {
                mv: ProposedMove::Reassign { moves },
                log_q_forward: self.lanes.log_q_forward[i],
                log_q_reverse,
            });
        }
    }

    fn name(&self) -> &str {
        "deep-autoregressive"
    }

    fn last_batch_rows(&self) -> usize {
        self.last_batch_rows
    }

    fn typical_update_size(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::apply_move;
    use dt_lattice::{Composition, Structure, Supercell};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Supercell, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    fn kernel(k: usize, seed: u64) -> DeepProposal {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        DeepProposal::new(
            4,
            2,
            &DeepProposalConfig {
                k,
                hidden: vec![16, 16],
            },
            &mut rng,
        )
    }

    #[test]
    fn proposals_conserve_composition() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(12, 7);
        for _ in 0..30 {
            let p = kern.propose(&config, &ctx, &mut rng);
            apply_move(&mut config, &p.mv);
            assert!(config.composition_matches(&comp));
        }
    }

    #[test]
    fn forward_logprob_matches_teacher_forced_replay() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(10, 8);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else {
            panic!("expected reassign")
        };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let targets: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
        let replay = kern.log_prob_of_reassignment(&config, &nt, &sites, &targets);
        assert!(
            (replay - p.log_q_forward).abs() < 1e-10,
            "{replay} vs {}",
            p.log_q_forward
        );
    }

    #[test]
    fn reverse_logprob_matches_replay_from_proposed_state() {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(8, 9);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else {
            panic!("expected reassign")
        };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let old: Vec<Species> = sites.iter().map(|&s| config.species_at(s)).collect();
        let mut proposed = config.clone();
        apply_move(&mut proposed, &p.mv);
        let replay = kern.log_prob_of_reassignment(&proposed, &nt, &sites, &old);
        assert!(
            (replay - p.log_q_reverse).abs() < 1e-10,
            "{replay} vs {}",
            p.log_q_reverse
        );
    }

    #[test]
    fn decode_probabilities_normalize_over_all_outcomes() {
        // Tiny system: 4 selected sites holding {0,0,1,1}; the 6 distinct
        // assignments must have probabilities summing to 1.
        let cell = Supercell::cubic(Structure::simple_cubic(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = {
            let mut krng = ChaCha8Rng::seed_from_u64(11);
            DeepProposal::new(
                2,
                1,
                &DeepProposalConfig {
                    k: 4,
                    hidden: vec![8],
                },
                &mut krng,
            )
        };
        // Choose 4 sites with two of each species.
        let mut sites = Vec::new();
        let mut c0 = 0;
        let mut c1 = 0;
        for s in 0..8u32 {
            match config.species_at(s).0 {
                0 if c0 < 2 => {
                    sites.push(s);
                    c0 += 1;
                }
                1 if c1 < 2 => {
                    sites.push(s);
                    c1 += 1;
                }
                _ => {}
            }
        }
        sites.sort_unstable();
        assert_eq!(sites.len(), 4);

        // All distinct arrangements of {0,0,1,1} over 4 slots.
        let mut total = 0.0;
        let mut count = 0;
        for bits in 0u32..16 {
            if bits.count_ones() != 2 {
                continue;
            }
            let targets: Vec<Species> = (0..4)
                .map(|i| Species(u8::from(bits & (1 << i) != 0)))
                .collect();
            total += kern
                .log_prob_of_reassignment(&config, &nt, &sites, &targets)
                .exp();
            count += 1;
        }
        assert_eq!(count, 6);
        assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }

    #[test]
    fn untrained_deep_proposal_behaves_like_random_on_average() {
        // With a random network the proposal is still a valid distribution;
        // log_q values must be finite and the identity move reachable.
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext {
            neighbors: &nt,
            composition: &comp,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(6, 10);
        for _ in 0..20 {
            let p = kern.propose(&config, &ctx, &mut rng);
            assert!(p.log_q_forward.is_finite());
            assert!(p.log_q_reverse.is_finite());
            assert!(p.log_q_forward <= 0.0 + 1e-12);
            assert!(p.log_q_reverse <= 0.0 + 1e-12);
        }
    }

    #[test]
    fn feature_layout_dim_matches_fill() {
        let (_, nt, comp) = fixture();
        let layout = FeatureLayout {
            num_species: 4,
            num_shells: 2,
        };
        assert_eq!(layout.dim(), 2 * 4 + 2 + 4 + 1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = Configuration::random(&comp, &mut rng);
        let mut out = vec![0.0; layout.dim()];
        let decided = vec![true; config.num_sites()];
        layout.fill(
            &mut out,
            0,
            &nt,
            config.species(),
            &decided,
            &[4, 4, 4, 4],
            16,
            0.0,
        );
        // Neighbor histograms normalize to <= 1 per shell.
        let shell0: f64 = out[0..4].iter().sum();
        assert!(
            (shell0 - 1.0).abs() < 1e-12,
            "all decided: fractions sum to 1"
        );
        assert_eq!(out[8], 0.0, "no undecided neighbors");
    }

    proptest! {
        /// The proposal context features must size and normalize correctly
        /// for every species count m ∈ 2..=6 and shell count ∈ 1..=6 —
        /// what the material layer needs to run arbitrary alloys through
        /// the deep kernel. For each shell, decided histogram + undecided
        /// fraction partition the coordination sphere.
        #[test]
        fn feature_sizing_is_material_agnostic(
            m in 2usize..=6,
            shells in 1usize..=6,
            bcc in any::<bool>(),
            seed in 0u64..1 << 48,
        ) {
            use rand::RngExt;
            let structure = if bcc { Structure::bcc() } else { Structure::fcc() };
            let cell = Supercell::cubic(structure, 2);
            let nt = cell.try_neighbor_table(shells).unwrap();
            let comp = Composition::equiatomic(m, cell.num_sites()).unwrap();
            let layout = FeatureLayout {
                num_species: m,
                num_shells: shells,
            };
            prop_assert_eq!(layout.dim(), shells * m + shells + m + 1);

            // The network built for this layout consumes exactly dim().
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let kern = DeepProposal::new(
                m,
                shells,
                &DeepProposalConfig {
                    k: 4,
                    hidden: vec![8],
                },
                &mut rng,
            );
            prop_assert_eq!(kern.layout(), layout);
            prop_assert_eq!(kern.net().in_dim(), layout.dim());

            let config = Configuration::random(&comp, &mut rng);
            let decided: Vec<bool> = (0..config.num_sites())
                .map(|_| rng.random_range(0..2u8) == 0)
                .collect();
            let mut out = vec![0.0; layout.dim()];
            layout.fill(
                &mut out,
                0,
                &nt,
                config.species(),
                &decided,
                comp.counts(),
                config.num_sites(),
                0.5,
            );
            for shell in 0..shells {
                let hist: f64 = out[shell * m..(shell + 1) * m].iter().sum();
                let undecided = out[shells * m + shell];
                prop_assert!(
                    (hist + undecided - 1.0).abs() < 1e-9,
                    "shell {}: {} + {} != 1",
                    shell, hist, undecided
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiset")]
    fn replay_rejects_non_permutation_targets() {
        let (_, nt, comp) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = kernel(4, 3);
        // Find 2 sites of species 0 and force targets that overdraw species 1.
        let sites: Vec<SiteId> = (0..config.num_sites() as SiteId)
            .filter(|&s| config.species_at(s) == Species(0))
            .take(2)
            .collect();
        let _ = kern.log_prob_of_reassignment(&config, &nt, &sites, &[Species(1), Species(1)]);
    }
}
