//! Asserts that a warmed-up lockstep `propose_batch` — the multi-walker
//! decode path — allocates only the W returned move lists and nothing
//! else, using a counting global allocator.
//!
//! This file must stay a single `#[test]`: the counter is process-global,
//! and concurrent tests in the same binary would race it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dt_lattice::{Composition, Configuration, Structure, Supercell};
use dt_proposal::{
    DeepProposal, DeepProposalConfig, Proposal, ProposalContext, ProposalKernel, ProposalSlot,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count heap allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warmed_lockstep_decode_allocates_only_the_move_lists() {
    const W: usize = 8;
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let configs: Vec<Configuration> = (0..W)
        .map(|_| Configuration::random(&comp, &mut rng))
        .collect();
    let mut rngs: Vec<ChaCha8Rng> = (0..W as u64)
        .map(|i| ChaCha8Rng::seed_from_u64(100 + i))
        .collect();
    let mut kern = DeepProposal::new(
        4,
        2,
        &DeepProposalConfig {
            k: 8,
            hidden: vec![16, 16],
        },
        &mut rng,
    );
    kern.warm_up_for(cell.num_sites(), W);

    // One full batch to finish warming every internal buffer (including
    // the output vector's capacity).
    let mut out: Vec<Proposal> = Vec::new();
    {
        let mut slots: Vec<ProposalSlot<'_>> = configs
            .iter()
            .zip(&mut rngs)
            .map(|(c, r)| ProposalSlot { config: c, rng: r })
            .collect();
        kern.propose_batch(&mut slots, &ctx, &mut out);
    }
    assert_eq!(out.len(), W);

    // Steady state: each batch may allocate exactly the W `moves` vectors
    // it hands back in the proposals — nothing else (no per-step feature
    // rows, masks, or activation buffers).
    const ROUNDS: usize = 20;
    let count = allocations_in(|| {
        for _ in 0..ROUNDS {
            let mut slots: Vec<ProposalSlot<'_>> = configs
                .iter()
                .zip(&mut rngs)
                .map(|(c, r)| ProposalSlot { config: c, rng: r })
                .collect();
            kern.propose_batch(&mut slots, &ctx, &mut out);
            std::hint::black_box(&out);
        }
    });
    assert_eq!(out.len(), W);
    // The slot vector itself is counted too: it is rebuilt per round the
    // way `sweep_lockstep` rebuilds it per step, from a fresh Vec.
    let budget = ROUNDS * (W + 1);
    assert!(
        count <= budget,
        "warmed lockstep decode should allocate at most {budget} \
         ({W} move lists + 1 slot vec per round), saw {count}"
    );

    // Sanity check that the counter actually counts.
    let count = allocations_in(|| {
        let v: Vec<f64> = Vec::with_capacity(64);
        std::hint::black_box(&v);
    });
    assert!(count >= 1, "counter should see an explicit allocation");
}
