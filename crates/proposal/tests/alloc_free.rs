//! Asserts that warmed-up teacher-forced replay — the hot path on every
//! deep-proposal Metropolis–Hastings step — performs **zero heap
//! allocations**, using a counting global allocator.
//!
//! This file must stay a single `#[test]`: the counter is process-global,
//! and concurrent tests in the same binary would race it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use dt_lattice::{Composition, Configuration, SiteId, Species, Structure, Supercell};
use dt_proposal::{
    DeepProposal, DeepProposalConfig, ProposalContext, ProposalKernel, ProposedMove,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Count heap allocations performed by `f`.
fn allocations_in(f: impl FnOnce()) -> usize {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn warmed_replay_is_allocation_free() {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
    let ctx = ProposalContext {
        neighbors: &nt,
        composition: &comp,
    };
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let config = Configuration::random(&comp, &mut rng);
    let mut kern = DeepProposal::new(
        4,
        2,
        &DeepProposalConfig {
            k: 8,
            hidden: vec![16, 16],
        },
        &mut rng,
    );
    kern.warm_up(cell.num_sites());

    // One full proposal to derive a (sites, targets) pair and finish
    // warming every internal buffer.
    let p = kern.propose(&config, &ctx, &mut rng);
    let ProposedMove::Reassign { moves } = &p.mv else {
        panic!("deep kernel must emit a reassignment")
    };
    let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
    let targets: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
    let want = kern.log_prob_of_reassignment(&config, &nt, &sites, &targets);

    // Steady state: the replay that runs on every MH step must not touch
    // the allocator.
    let mut sink = 0.0;
    let count = allocations_in(|| {
        for _ in 0..100 {
            sink += kern.log_prob_of_reassignment(&config, &nt, &sites, &targets);
        }
    });
    assert!((sink / 100.0 - want).abs() < 1e-12);
    assert_eq!(
        count, 0,
        "warmed-up replay must not allocate, saw {count} allocations"
    );

    // Sanity check that the counter actually counts.
    let count = allocations_in(|| {
        let v: Vec<f64> = Vec::with_capacity(64);
        std::hint::black_box(&v);
    });
    assert!(count >= 1, "counter should see an explicit allocation");
}
