//! Property tests of proposal-kernel invariants: composition conservation
//! and the exactness of the deep kernel's forward/reverse log-probabilities
//! (the requirements for Metropolis–Hastings detailed balance).

use dt_lattice::{
    Composition, Configuration, NeighborTable, SiteId, Species, Structure, Supercell,
};
use dt_nn::{log_softmax_masked, Matrix};
use dt_proposal::{
    apply_move, DeepProposal, DeepProposalConfig, FeatureLayout, LocalSwap, Proposal,
    ProposalContext, ProposalKernel, ProposalMix, ProposalSlot, ProposedMove, RandomReassign,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn fixture() -> (Supercell, dt_lattice::NeighborTable, Composition) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
    (cell, nt, comp)
}

/// The seed implementation of teacher-forced replay: one allocating
/// batch-1 forward per site. Kept as the reference the batched engine
/// must reproduce bit-for-bit.
fn replay_batch1_reference(
    kern: &DeepProposal,
    layout: FeatureLayout,
    config: &Configuration,
    neighbors: &NeighborTable,
    sites: &[SiteId],
    targets: &[Species],
) -> f64 {
    let m = layout.num_species;
    let n = config.num_sites();
    let mut work = config.species().to_vec();
    let mut decided = vec![true; n];
    for &s in sites {
        decided[s as usize] = false;
    }
    let mut remaining = vec![0usize; m];
    for &s in sites {
        remaining[config.species_at(s).index()] += 1;
    }
    let k = sites.len();
    let mut feat = vec![0.0; layout.dim()];
    let mut total = 0.0;
    for (step, (&site, &target)) in sites.iter().zip(targets).enumerate() {
        layout.fill(
            &mut feat,
            site,
            neighbors,
            &work,
            &decided,
            &remaining,
            k - step,
            step as f64 / k as f64,
        );
        let logits = kern.net().forward(&Matrix::row_vector(&feat));
        let mask: Vec<bool> = remaining.iter().map(|&r| r > 0).collect();
        let logp = log_softmax_masked(logits.row(0), Some(&mask));
        total += logp[target.index()];
        remaining[target.index()] -= 1;
        work[site as usize] = target;
        decided[site as usize] = true;
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every kernel conserves composition across long move sequences.
    #[test]
    fn all_kernels_conserve_composition(seed in any::<u64>(), k in 2usize..12) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut kernels: Vec<Box<dyn ProposalKernel>> = vec![
            Box::new(LocalSwap::new()),
            Box::new(RandomReassign::new(k)),
            Box::new(DeepProposal::new(4, 2, &DeepProposalConfig { k, hidden: vec![8] }, &mut rng)),
        ];
        for kern in &mut kernels {
            for _ in 0..10 {
                let p = kern.propose(&config, &ctx, &mut rng);
                apply_move(&mut config, &p.mv);
                prop_assert!(config.composition_matches(&comp));
                prop_assert_eq!(config.recount(), comp.counts().to_vec());
            }
        }
    }

    /// Replay identity: the deep kernel's reported log q values equal an
    /// independent teacher-forced recomputation in both directions.
    #[test]
    fn deep_kernel_logprobs_are_replay_exact(seed in any::<u64>(), k in 2usize..10) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k, hidden: vec![12] }, &mut rng);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else { panic!() };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let new_s: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
        let old_s: Vec<Species> = sites.iter().map(|&s| config.species_at(s)).collect();

        let fwd = kern.log_prob_of_reassignment(&config, &nt, &sites, &new_s);
        prop_assert!((fwd - p.log_q_forward).abs() < 1e-9);

        let mut proposed = config.clone();
        apply_move(&mut proposed, &p.mv);
        let rev = kern.log_prob_of_reassignment(&proposed, &nt, &sites, &old_s);
        prop_assert!((rev - p.log_q_reverse).abs() < 1e-9);

        // Symmetry of the identity: proposing the same state back has
        // q-ratio exactly zero.
        if new_s == old_s {
            prop_assert!((p.log_q_forward - p.log_q_reverse).abs() < 1e-9);
        }
    }

    /// The batched k-row replay is **bit-identical** to the seed's
    /// sequential batch-1 decode loop, in both the forward and reverse
    /// directions. Metropolis–Hastings acceptance depends on these exact
    /// values, so the batching must not perturb a single bit.
    #[test]
    fn batched_replay_is_bit_identical_to_batch1_reference(
        seed in any::<u64>(),
        k in 2usize..10,
        hidden in 4usize..16,
    ) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k, hidden: vec![hidden] }, &mut rng);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else { panic!() };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let new_s: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
        let old_s: Vec<Species> = sites.iter().map(|&s| config.species_at(s)).collect();
        let layout = kern.layout();

        let fwd_ref = replay_batch1_reference(&kern, layout, &config, &nt, &sites, &new_s);
        let fwd = kern.log_prob_of_reassignment(&config, &nt, &sites, &new_s);
        prop_assert_eq!(fwd.to_bits(), fwd_ref.to_bits(), "{} vs {}", fwd, fwd_ref);
        prop_assert_eq!(fwd.to_bits(), p.log_q_forward.to_bits());

        let mut proposed = config.clone();
        apply_move(&mut proposed, &p.mv);
        let rev_ref = replay_batch1_reference(&kern, layout, &proposed, &nt, &sites, &old_s);
        let rev = kern.log_prob_of_reassignment(&proposed, &nt, &sites, &old_s);
        prop_assert_eq!(rev.to_bits(), rev_ref.to_bits(), "{} vs {}", rev, rev_ref);
        prop_assert_eq!(rev.to_bits(), p.log_q_reverse.to_bits());
    }

    /// The deep kernel never leaks scratch state: proposing twice from the
    /// same configuration with the same RNG stream gives identical moves.
    #[test]
    fn deep_kernel_is_deterministic_given_rng(seed in any::<u64>()) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k: 6, hidden: vec![8] }, &mut rng);

        let mut rng_a = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let p1 = kern.propose(&config, &ctx, &mut rng_a);
        // Interleave an unrelated proposal to dirty the scratch buffers.
        let mut rng_junk = ChaCha8Rng::seed_from_u64(!seed);
        let _ = kern.propose(&config, &ctx, &mut rng_junk);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let p2 = kern.propose(&config, &ctx, &mut rng_b);
        prop_assert_eq!(p1.mv, p2.mv);
        prop_assert_eq!(p1.log_q_forward, p2.log_q_forward);
        prop_assert_eq!(p1.log_q_reverse, p2.log_q_reverse);
    }

    /// Local swaps always exchange two existing species and never change
    /// any other site.
    #[test]
    fn local_swap_touches_exactly_two_sites(seed in any::<u64>()) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = LocalSwap::new();
        let p = kern.propose(&config, &ctx, &mut rng);
        let mut after = config.clone();
        apply_move(&mut after, &p.mv);
        let changed = (0..config.num_sites() as SiteId)
            .filter(|&s| config.species_at(s) != after.species_at(s))
            .count();
        prop_assert_eq!(changed, 2);
    }

    /// The lockstep decoder is **bit-identical** to sequential batch-1:
    /// `propose_batch` over W walkers must reproduce W independent
    /// `propose` calls exactly — same moves, same forward/reverse log-q
    /// bits, and each per-walker RNG left at the same stream position.
    #[test]
    fn lockstep_batch_is_bit_identical_to_sequential(
        seed in any::<u64>(),
        w in 1usize..6,
        k in 2usize..8,
    ) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let configs: Vec<Configuration> =
            (0..w).map(|_| Configuration::random(&comp, &mut rng)).collect();
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k, hidden: vec![10] }, &mut rng);

        // Identical per-walker RNG streams for both code paths.
        let mut rngs_seq: Vec<ChaCha8Rng> =
            (0..w as u64).map(|i| ChaCha8Rng::seed_from_u64(seed ^ (i + 1))).collect();
        let mut rngs_batch = rngs_seq.clone();

        let seq: Vec<Proposal> = configs
            .iter()
            .zip(&mut rngs_seq)
            .map(|(c, r)| kern.propose(c, &ctx, r))
            .collect();

        let mut slots: Vec<ProposalSlot<'_>> = configs
            .iter()
            .zip(&mut rngs_batch)
            .map(|(c, r)| ProposalSlot { config: c, rng: r })
            .collect();
        let mut out = Vec::new();
        kern.propose_batch(&mut slots, &ctx, &mut out);
        drop(slots);

        prop_assert_eq!(out.len(), w);
        prop_assert_eq!(kern.last_batch_rows(), w);
        for (i, (b, s)) in out.iter().zip(&seq).enumerate() {
            prop_assert_eq!(&b.mv, &s.mv, "moves diverge at slot {}", i);
            prop_assert_eq!(b.log_q_forward.to_bits(), s.log_q_forward.to_bits());
            prop_assert_eq!(b.log_q_reverse.to_bits(), s.log_q_reverse.to_bits());
            prop_assert_eq!(
                rngs_batch[i].get_word_pos(), rngs_seq[i].get_word_pos(),
                "slot {} consumed a different number of RNG words", i
            );
        }
    }

    /// The mixture's grouped batch dispatch — component picks drawn per
    /// slot, sub-batches routed to each kernel, results scattered back —
    /// is bit-identical to sequential per-slot proposals too.
    #[test]
    fn mix_batch_is_bit_identical_to_sequential(seed in any::<u64>(), w in 1usize..7) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let configs: Vec<Configuration> =
            (0..w).map(|_| Configuration::random(&comp, &mut rng)).collect();
        let mk_mix = |rng: &mut ChaCha8Rng| {
            ProposalMix::new(vec![
                (Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>, 0.5),
                (Box::new(RandomReassign::new(4)), 0.3),
                (
                    Box::new(DeepProposal::new(
                        4, 2, &DeepProposalConfig { k: 3, hidden: vec![8] }, rng)),
                    0.2,
                ),
            ])
        };
        let mut mix = mk_mix(&mut rng.clone());

        let mut rngs_seq: Vec<ChaCha8Rng> =
            (0..w as u64).map(|i| ChaCha8Rng::seed_from_u64(seed ^ (i + 11))).collect();
        let mut rngs_batch = rngs_seq.clone();

        let seq: Vec<Proposal> = configs
            .iter()
            .zip(&mut rngs_seq)
            .map(|(c, r)| mix.propose(c, &ctx, r))
            .collect();

        let mut slots: Vec<ProposalSlot<'_>> = configs
            .iter()
            .zip(&mut rngs_batch)
            .map(|(c, r)| ProposalSlot { config: c, rng: r })
            .collect();
        let mut out = Vec::new();
        mix.propose_batch(&mut slots, &ctx, &mut out);
        drop(slots);

        prop_assert_eq!(out.len(), w);
        for (i, (b, s)) in out.iter().zip(&seq).enumerate() {
            prop_assert_eq!(&b.mv, &s.mv, "moves diverge at slot {}", i);
            prop_assert_eq!(b.log_q_forward.to_bits(), s.log_q_forward.to_bits());
            prop_assert_eq!(b.log_q_reverse.to_bits(), s.log_q_reverse.to_bits());
            prop_assert_eq!(rngs_batch[i].get_word_pos(), rngs_seq[i].get_word_pos());
        }
    }
}
