//! Property tests of proposal-kernel invariants: composition conservation
//! and the exactness of the deep kernel's forward/reverse log-probabilities
//! (the requirements for Metropolis–Hastings detailed balance).

use dt_lattice::{Composition, Configuration, SiteId, Species, Structure, Supercell};
use dt_proposal::{
    apply_move, DeepProposal, DeepProposalConfig, LocalSwap, ProposalContext, ProposalKernel,
    ProposedMove, RandomReassign,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn fixture() -> (Supercell, dt_lattice::NeighborTable, Composition) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(2);
    let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
    (cell, nt, comp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every kernel conserves composition across long move sequences.
    #[test]
    fn all_kernels_conserve_composition(seed in any::<u64>(), k in 2usize..12) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut kernels: Vec<Box<dyn ProposalKernel>> = vec![
            Box::new(LocalSwap::new()),
            Box::new(RandomReassign::new(k)),
            Box::new(DeepProposal::new(4, 2, &DeepProposalConfig { k, hidden: vec![8] }, &mut rng)),
        ];
        for kern in &mut kernels {
            for _ in 0..10 {
                let p = kern.propose(&config, &ctx, &mut rng);
                apply_move(&mut config, &p.mv);
                prop_assert!(config.composition_matches(&comp));
                prop_assert_eq!(config.recount(), comp.counts().to_vec());
            }
        }
    }

    /// Replay identity: the deep kernel's reported log q values equal an
    /// independent teacher-forced recomputation in both directions.
    #[test]
    fn deep_kernel_logprobs_are_replay_exact(seed in any::<u64>(), k in 2usize..10) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k, hidden: vec![12] }, &mut rng);
        let p = kern.propose(&config, &ctx, &mut rng);
        let ProposedMove::Reassign { moves } = &p.mv else { panic!() };
        let sites: Vec<SiteId> = moves.iter().map(|&(s, _)| s).collect();
        let new_s: Vec<Species> = moves.iter().map(|&(_, t)| t).collect();
        let old_s: Vec<Species> = sites.iter().map(|&s| config.species_at(s)).collect();

        let fwd = kern.log_prob_of_reassignment(&config, &nt, &sites, &new_s);
        prop_assert!((fwd - p.log_q_forward).abs() < 1e-9);

        let mut proposed = config.clone();
        apply_move(&mut proposed, &p.mv);
        let rev = kern.log_prob_of_reassignment(&proposed, &nt, &sites, &old_s);
        prop_assert!((rev - p.log_q_reverse).abs() < 1e-9);

        // Symmetry of the identity: proposing the same state back has
        // q-ratio exactly zero.
        if new_s == old_s {
            prop_assert!((p.log_q_forward - p.log_q_reverse).abs() < 1e-9);
        }
    }

    /// The deep kernel never leaks scratch state: proposing twice from the
    /// same configuration with the same RNG stream gives identical moves.
    #[test]
    fn deep_kernel_is_deterministic_given_rng(seed in any::<u64>()) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = DeepProposal::new(
            4, 2, &DeepProposalConfig { k: 6, hidden: vec![8] }, &mut rng);

        let mut rng_a = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let p1 = kern.propose(&config, &ctx, &mut rng_a);
        // Interleave an unrelated proposal to dirty the scratch buffers.
        let mut rng_junk = ChaCha8Rng::seed_from_u64(!seed);
        let _ = kern.propose(&config, &ctx, &mut rng_junk);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed ^ 0xabcd);
        let p2 = kern.propose(&config, &ctx, &mut rng_b);
        prop_assert_eq!(p1.mv, p2.mv);
        prop_assert_eq!(p1.log_q_forward, p2.log_q_forward);
        prop_assert_eq!(p1.log_q_reverse, p2.log_q_reverse);
    }

    /// Local swaps always exchange two existing species and never change
    /// any other site.
    #[test]
    fn local_swap_touches_exactly_two_sites(seed in any::<u64>()) {
        let (_, nt, comp) = fixture();
        let ctx = ProposalContext { neighbors: &nt, composition: &comp };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let mut kern = LocalSwap::new();
        let p = kern.propose(&config, &ctx, &mut rng);
        let mut after = config.clone();
        apply_move(&mut after, &p.mv);
        let changed = (0..config.num_sites() as SiteId)
            .filter(|&s| config.species_at(s) != after.species_at(s))
            .count();
        prop_assert_eq!(changed, 2);
    }
}
