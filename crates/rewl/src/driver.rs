//! The REWL drivers.

use dt_hamiltonian::EnergyModel;
use dt_hpc::{rank_rng, Communicator, ThreadCluster};
use dt_lattice::{sro::ordered_pair_counts, Composition, Configuration, NeighborTable};
use dt_proposal::{
    DeepProposal, LocalSwap, MoveStats, ProposalContext, ProposalKernel, ProposalMix,
    ProposalTrainer, RandomReassign, SampleBuffer,
};
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::{DosEstimate, EnergyGrid, WlParams, WlWalker};

use crate::merge::merge_windows;
use crate::spec::{DeepSpec, KernelSpec};
use crate::windows::WindowLayout;
use crate::wire;

/// Configuration of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlConfig {
    /// Number of energy windows `M`.
    pub num_windows: usize,
    /// Walkers per window `W` (total ranks = `M·W`).
    pub walkers_per_window: usize,
    /// Window overlap fraction (0.75 is the REWL standard).
    pub overlap: f64,
    /// Bins of the global energy grid.
    pub num_bins: usize,
    /// Wang–Landau parameters applied per walker.
    pub wl: WlParams,
    /// Attempt replica exchange every this many sweeps.
    pub exchange_every_sweeps: u64,
    /// Record an SRO observation every this many sweeps.
    pub observe_every_sweeps: u64,
    /// Hard sweep cap per walker.
    pub max_sweeps: u64,
    /// Master seed (per-rank streams derive from it).
    pub seed: u64,
    /// Proposal kernels.
    pub kernel: KernelSpec,
}

impl Default for RewlConfig {
    fn default() -> Self {
        RewlConfig {
            num_windows: 2,
            walkers_per_window: 2,
            overlap: 0.75,
            num_bins: 64,
            wl: WlParams::default(),
            exchange_every_sweeps: 10,
            observe_every_sweeps: 2,
            max_sweeps: 1_000_000,
            seed: 0,
            kernel: KernelSpec::LocalSwap,
        }
    }
}

/// Per-window summary of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: usize,
    /// Exchange attempts with the next window.
    pub exchange_attempts: u64,
    /// Accepted exchanges with the next window.
    pub exchange_accepted: u64,
    /// Merged proposal statistics of the window's walkers.
    pub stats: MoveStats,
    /// Did every walker of the window converge?
    pub converged: bool,
    /// Final `ln f` (max over walkers).
    pub ln_f: f64,
}

impl WindowReport {
    /// Replica-exchange acceptance rate toward the next window.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchange_attempts == 0 {
            0.0
        } else {
            self.exchange_accepted as f64 / self.exchange_attempts as f64
        }
    }
}

/// The result of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlOutput {
    /// Merged global density of states (un-normalized; use
    /// `normalize_total` with the composition's configuration count).
    pub dos: DosEstimate,
    /// Ever-visited mask over global bins.
    pub mask: Vec<bool>,
    /// Per-window reports.
    pub windows: Vec<WindowReport>,
    /// Did every walker converge before `max_sweeps`?
    pub converged: bool,
    /// Sweeps executed per walker.
    pub sweeps: u64,
    /// Merged microcanonical pair-probability accumulator
    /// (`obs_dim = num_shells · m²`, values are directed-pair
    /// probabilities `p_s(a,b)`), binned on the global grid.
    pub sro: MicrocanonicalAccumulator,
    /// Total MC moves across all walkers.
    pub total_moves: u64,
}

/// Data one rank contributes to the final gather.
struct RankPiece {
    ln_g: Vec<f64>,
    mask: Vec<bool>,
    stats: MoveStats,
    /// `[exchange_attempts, exchange_accepted, converged, ln_f bits, moves]`.
    counts: Vec<u64>,
}

/// Per-rank deep-proposal state.
struct DeepState {
    deep: DeepProposal,
    trainer: ProposalTrainer,
    buffer: SampleBuffer,
    spec: DeepSpec,
}

fn build_kernel(
    spec: &KernelSpec,
    deep_state: &Option<DeepState>,
) -> Box<dyn ProposalKernel> {
    match spec {
        KernelSpec::LocalSwap => Box::new(LocalSwap::new()),
        KernelSpec::RandomGlobal { k, weight } => Box::new(ProposalMix::new(vec![
            (
                Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                1.0 - weight,
            ),
            (Box::new(RandomReassign::new(*k)), *weight),
        ])),
        KernelSpec::Deep(ds) => {
            let deep = deep_state
                .as_ref()
                .expect("deep state must exist for deep kernels")
                .deep
                .clone();
            Box::new(ProposalMix::new(vec![
                (
                    Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                    1.0 - ds.deep_weight,
                ),
                (Box::new(deep), ds.deep_weight),
            ]))
        }
    }
}

/// Run REWL on a simulated cluster of `M·W` ranks (threads).
///
/// `(e_min, e_max)` is the global energy range (discover it with
/// [`dt_wanglandau::explore_energy_range`]).
///
/// # Panics
/// Panics when a walker cannot reach its window or configuration is
/// inconsistent.
pub fn run_rewl<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> RewlOutput {
    let layout = WindowLayout::new(
        EnergyGrid::new(e_min, e_max, cfg.num_bins),
        cfg.num_windows,
        cfg.overlap,
    );
    let size = cfg.num_windows * cfg.walkers_per_window;
    let m_species = comp.num_species();
    let num_shells = model.num_shells();
    let obs_dim = num_shells * m_species * m_species;

    let results = ThreadCluster::run(size, |comm| {
        run_rank(
            comm, model, neighbors, comp, &layout, cfg, obs_dim, num_shells,
        )
    });
    // Rank 0 produced the assembled output.
    results
        .into_iter()
        .next()
        .expect("cluster returns rank results")
        .expect("rank 0 assembles the output")
}

/// Message tags.
mod tags {
    pub const EXCH_ENERGY: u64 = 1;
    pub const EXCH_REPLY: u64 = 2;
    pub const EXCH_DECISION: u64 = 3;
    pub const EXCH_CONFIG: u64 = 4;
    pub const SYNC_PARAMS: u64 = 5;
    pub const SYNC_PARAMS_BACK: u64 = 6;
    pub const GATHER_LN_G: u64 = 7;
    pub const GATHER_MASK: u64 = 8;
    pub const GATHER_STATS: u64 = 9;
    pub const GATHER_COUNTS: u64 = 10;
    pub const GATHER_SRO_SUMS: u64 = 11;
    pub const GATHER_SRO_COUNTS: u64 = 12;

    /// Pack a round number into the tag space.
    pub fn with_round(tag: u64, round: u64) -> u64 {
        (round << 8) | tag
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank<M: EnergyModel + Sync>(
    comm: Communicator,
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    layout: &WindowLayout,
    cfg: &RewlConfig,
    obs_dim: usize,
    num_shells: usize,
) -> Option<RewlOutput> {
    let rank = comm.rank();
    let w = cfg.walkers_per_window;
    let window = rank / w;
    let slot = rank % w;
    let m_species = comp.num_species();
    let grid = layout.window_grid(window);
    let mut rng = rank_rng(cfg.seed, rank as u64);

    // Deep-proposal state (per rank).
    let mut deep_state = match &cfg.kernel {
        KernelSpec::Deep(ds) => {
            let deep = DeepProposal::new(m_species, num_shells, &ds.proposal, &mut rng);
            let layout_f = deep.layout();
            Some(DeepState {
                deep,
                trainer: ProposalTrainer::new(layout_f, ds.trainer.clone()),
                buffer: SampleBuffer::new(ds.buffer_capacity),
                spec: (**ds).clone(),
            })
        }
        _ => None,
    };

    let config = Configuration::random(comp, &mut rng);
    let kernel = build_kernel(&cfg.kernel, &deep_state);
    let mut walker = WlWalker::new(
        grid,
        cfg.wl.clone(),
        config,
        model,
        neighbors,
        kernel,
        cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    assert!(
        walker.drive_into_window(model, neighbors, 20_000),
        "rank {rank}: failed to reach window {window} {:?}",
        layout.bin_range(window)
    );

    let ctx = ProposalContext {
        neighbors,
        composition: comp,
    };
    let mut sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
    let mut exchange_attempts = 0u64;
    let mut exchange_accepted = 0u64;
    let mut sweeps = 0u64;
    let mut sweeps_since_check = 0u64;
    let mut round = 0u64;
    let mut obs_buf = vec![0.0f64; obs_dim];

    loop {
        // --- sampling phase ------------------------------------------
        for _ in 0..cfg.exchange_every_sweeps {
            walker.sweep(model, neighbors, &ctx);
            sweeps += 1;
            sweeps_since_check += 1;
            if sweeps_since_check >= cfg.wl.sweeps_per_check as u64 {
                walker.check_and_advance(model, neighbors);
                sweeps_since_check = 0;
            }
            if sweeps % cfg.observe_every_sweeps == 0 {
                if let Some(bin) = layout.global_grid().bin(walker.energy()) {
                    fill_pair_probabilities(
                        walker.config(),
                        neighbors,
                        num_shells,
                        m_species,
                        &mut obs_buf,
                    );
                    sro.record(bin, &obs_buf);
                }
            }
            if let Some(ds) = deep_state.as_mut() {
                if sweeps % ds.spec.sample_every_sweeps == 0 {
                    ds.buffer.push(walker.config().clone(), walker.energy());
                }
            }
        }

        // --- deep retraining ------------------------------------------
        let mut kernel_dirty = false;
        if let Some(ds) = deep_state.as_mut() {
            if sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                for _ in 0..ds.spec.epochs_per_round {
                    ds.trainer.train_epoch(
                        ds.deep.net_mut(),
                        &ds.buffer,
                        neighbors,
                        walker.rng_mut(),
                    );
                }
                kernel_dirty = true;
            }
        }
        // Window-wide weight averaging (simulated allreduce). Every rank
        // of the window participates every round so the message pattern
        // stays aligned; it is a no-op when no training happened (weights
        // are averaged regardless, which is idempotent for equal weights).
        if let Some(ds) = deep_state.as_mut() {
            if ds.spec.sync_weights && w > 1 {
                let params = ds.deep.net().flatten_params();
                let leader = window * w;
                if slot == 0 {
                    let mut acc = params.clone();
                    for other in 1..w {
                        let got = comm.recv(
                            leader + other,
                            tags::with_round(tags::SYNC_PARAMS, round),
                        );
                        for (a, b) in acc.iter_mut().zip(wire::decode_f64s(&got)) {
                            *a += b;
                        }
                    }
                    for a in &mut acc {
                        *a /= w as f64;
                    }
                    let payload = wire::encode_f64s(&acc);
                    for other in 1..w {
                        comm.send(
                            leader + other,
                            tags::with_round(tags::SYNC_PARAMS_BACK, round),
                            payload.clone(),
                        );
                    }
                    ds.deep.net_mut().set_params(&acc);
                } else {
                    comm.send(
                        leader,
                        tags::with_round(tags::SYNC_PARAMS, round),
                        wire::encode_f64s(&params),
                    );
                    let avg = comm.recv(leader, tags::with_round(tags::SYNC_PARAMS_BACK, round));
                    ds.deep.net_mut().set_params(&wire::decode_f64s(&avg));
                }
                kernel_dirty = true;
            }
        }
        if kernel_dirty {
            walker.set_kernel(build_kernel(&cfg.kernel, &deep_state));
        }

        // --- replica exchange -----------------------------------------
        if cfg.num_windows > 1 {
            let parity = (round % 2) as usize;
            // Am I the initiator ('a', lower window of an active pair)?
            if window % 2 == parity && window + 1 < cfg.num_windows {
                let partner_slot = (slot + round as usize) % w;
                let partner = (window + 1) * w + partner_slot;
                exchange_attempts += 1;
                comm.send(
                    partner,
                    tags::with_round(tags::EXCH_ENERGY, round),
                    wire::encode_f64s(&[walker.energy()]),
                );
                let reply =
                    wire::decode_f64s(&comm.recv(partner, tags::with_round(tags::EXCH_REPLY, round)));
                // reply = [valid, E_b, ln_gB(E_b) - ln_gB(E_a)]
                let mut accepted = false;
                if reply[0] > 0.5 {
                    let e_b = reply[1];
                    if let (Some(_), Some(_)) =
                        (walker.ln_g_at(e_b), walker.ln_g_at(walker.energy()))
                    {
                        let ln_acc = walker.ln_g_at(walker.energy()).expect("own energy")
                            - walker.ln_g_at(e_b).expect("checked")
                            + reply[2];
                        let u: f64 = rand::RngExt::random(walker.rng_mut());
                        accepted = ln_acc >= 0.0 || u < ln_acc.exp();
                    }
                }
                comm.send(
                    partner,
                    tags::with_round(tags::EXCH_DECISION, round),
                    vec![u8::from(accepted)],
                );
                if accepted {
                    exchange_accepted += 1;
                    let mine = wire::encode_state(walker.energy(), walker.config());
                    comm.send(partner, tags::with_round(tags::EXCH_CONFIG, round), mine);
                    let theirs =
                        comm.recv(partner, tags::with_round(tags::EXCH_CONFIG, round));
                    let (e, c) = wire::decode_state(&theirs, m_species);
                    walker.set_state(c, e);
                }
            } else if window % 2 != parity && window > 0 {
                // I may be the responder 'b'.
                let initiator_slot = (slot + w - (round as usize % w)) % w;
                let initiator = (window - 1) * w + initiator_slot;
                let e_a = wire::decode_f64s(
                    &comm.recv(initiator, tags::with_round(tags::EXCH_ENERGY, round)),
                )[0];
                let reply = match (walker.ln_g_at(e_a), walker.ln_g_at(walker.energy())) {
                    (Some(g_at_a), Some(g_at_mine)) => {
                        vec![1.0, walker.energy(), g_at_mine - g_at_a]
                    }
                    _ => vec![0.0, 0.0, 0.0],
                };
                comm.send(
                    initiator,
                    tags::with_round(tags::EXCH_REPLY, round),
                    wire::encode_f64s(&reply),
                );
                let decision =
                    comm.recv(initiator, tags::with_round(tags::EXCH_DECISION, round));
                if decision[0] == 1 {
                    // Only the initiator counts the exchange, so window
                    // reports read as "attempts toward the next window".
                    let mine = wire::encode_state(walker.energy(), walker.config());
                    let theirs =
                        comm.recv(initiator, tags::with_round(tags::EXCH_CONFIG, round));
                    comm.send(initiator, tags::with_round(tags::EXCH_CONFIG, round), mine);
                    let (e, c) = wire::decode_state(&theirs, m_species);
                    walker.set_state(c, e);
                }
            }
        }

        // --- convergence poll -----------------------------------------
        let mut flags = [f64::from(u8::from(walker.ln_f() <= cfg.wl.ln_f_final))];
        comm.allreduce_sum(&mut flags);
        round += 1;
        if flags[0] as usize == comm.size() || sweeps >= cfg.max_sweeps {
            break;
        }
    }

    // --- gather at rank 0 ---------------------------------------------
    let converged = walker.ln_f() <= cfg.wl.ln_f_final;
    let stats_text = serialize_stats(walker.stats());
    let counts = vec![
        exchange_attempts,
        exchange_accepted,
        u64::from(converged),
        walker.ln_f().to_bits(),
        walker.total_moves(),
    ];
    if rank != 0 {
        comm.send(0, tags::GATHER_LN_G, wire::encode_f64s(walker.dos().ln_g()));
        comm.send(0, tags::GATHER_MASK, wire::encode_mask(&walker.visited_mask()));
        comm.send(0, tags::GATHER_STATS, stats_text.into_bytes());
        comm.send(0, tags::GATHER_COUNTS, wire::encode_u64s(&counts));
        send_accumulator(&comm, &sro, obs_dim);
        return None;
    }

    // Rank 0: collect everyone (including itself).
    let mut per_rank: Vec<RankPiece> = Vec::with_capacity(comm.size());
    per_rank.push(RankPiece {
        ln_g: walker.dos().ln_g().to_vec(),
        mask: walker.visited_mask(),
        stats: walker.stats().clone(),
        counts,
    });
    let mut merged_sro = sro;
    for other in 1..comm.size() {
        let ln_g = wire::decode_f64s(&comm.recv(other, tags::GATHER_LN_G));
        let mask = wire::decode_mask(&comm.recv(other, tags::GATHER_MASK));
        let stats = deserialize_stats(
            std::str::from_utf8(&comm.recv(other, tags::GATHER_STATS)).expect("utf8 stats"),
        );
        let counts = wire::decode_u64s(&comm.recv(other, tags::GATHER_COUNTS));
        per_rank.push(RankPiece {
            ln_g,
            mask,
            stats,
            counts,
        });
        let acc = recv_accumulator(&comm, other, layout.global_grid().num_bins(), obs_dim);
        merged_sro.merge(&acc);
    }

    // Average walkers within each window (aligning additive constants),
    // then merge windows.
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        let ranks = (win * w)..((win + 1) * w);
        let members: Vec<&RankPiece> = ranks.clone().map(|r| &per_rank[r]).collect();
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        for p in &members {
            stats.merge(&p.stats);
            attempts += p.counts[0];
            accepted += p.counts[1];
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: attempts,
            exchange_accepted: accepted,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
        });
    }
    let (dos, mask) = merge_windows(layout, &pieces);
    let total_moves = per_rank.iter().map(|p| p.counts[4]).sum();
    let converged_all = reports.iter().all(|r| r.converged);
    Some(RewlOutput {
        dos,
        mask,
        windows: reports,
        converged: converged_all,
        sweeps,
        sro: merged_sro,
        total_moves,
    })
}

/// Average the `ln_g` of a window's walkers after aligning their additive
/// constants on co-visited bins; mask is the union of visited bins.
fn average_window(members: &[&RankPiece]) -> (Vec<f64>, Vec<bool>) {
    let bins = members[0].ln_g.len();
    let reference = members[0];
    let mut sum = vec![0.0f64; bins];
    let mut count = vec![0u32; bins];
    for (mi, piece) in members.iter().enumerate() {
        // Align to the reference on co-visited bins.
        let mut shift = 0.0;
        if mi > 0 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for b in 0..bins {
                if piece.mask[b] && reference.mask[b] {
                    acc += reference.ln_g[b] - piece.ln_g[b];
                    n += 1;
                }
            }
            if n > 0 {
                shift = acc / n as f64;
            }
        }
        for b in 0..bins {
            if piece.mask[b] {
                sum[b] += piece.ln_g[b] + shift;
                count[b] += 1;
            }
        }
    }
    let mask: Vec<bool> = count.iter().map(|&c| c > 0).collect();
    let avg = sum
        .iter()
        .zip(&count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    (avg, mask)
}

fn fill_pair_probabilities(
    config: &Configuration,
    neighbors: &NeighborTable,
    num_shells: usize,
    m: usize,
    out: &mut [f64],
) {
    for shell in 0..num_shells {
        let counts = ordered_pair_counts(config, neighbors, shell, m);
        let total = neighbors.directed_pair_count(shell) as f64;
        for (o, &c) in out[shell * m * m..(shell + 1) * m * m]
            .iter_mut()
            .zip(&counts)
        {
            *o = c as f64 / total;
        }
    }
}

fn serialize_stats(stats: &MoveStats) -> String {
    let mut s = String::new();
    for (name, p, a) in stats.iter() {
        s.push_str(&format!("{name} {p} {a}\n"));
    }
    s
}

fn deserialize_stats(text: &str) -> MoveStats {
    let mut stats = MoveStats::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("kernel name");
        let p: u64 = parts.next().expect("proposed").parse().expect("number");
        let a: u64 = parts.next().expect("accepted").parse().expect("number");
        for _ in 0..a {
            stats.record(name, true);
        }
        for _ in 0..p - a {
            stats.record(name, false);
        }
    }
    stats
}

fn send_accumulator(comm: &Communicator, acc: &MicrocanonicalAccumulator, obs_dim: usize) {
    let bins = acc.num_bins();
    let mut sums = Vec::with_capacity(bins * obs_dim);
    let mut counts = Vec::with_capacity(bins);
    for b in 0..bins {
        let c = acc.count(b);
        counts.push(c);
        match acc.bin_mean(b) {
            Some(mean) => sums.extend(mean.iter().map(|&m| m * c as f64)),
            None => sums.extend(std::iter::repeat_n(0.0, obs_dim)),
        }
    }
    comm.send(0, tags::GATHER_SRO_SUMS, wire::encode_f64s(&sums));
    comm.send(0, tags::GATHER_SRO_COUNTS, wire::encode_u64s(&counts));
}

fn recv_accumulator(
    comm: &Communicator,
    from: usize,
    bins: usize,
    obs_dim: usize,
) -> MicrocanonicalAccumulator {
    let sums = wire::decode_f64s(&comm.recv(from, tags::GATHER_SRO_SUMS));
    let counts = wire::decode_u64s(&comm.recv(from, tags::GATHER_SRO_COUNTS));
    let mut acc = MicrocanonicalAccumulator::new(bins, obs_dim);
    let mut mean = vec![0.0; obs_dim];
    for b in 0..bins {
        let c = counts[b];
        if c == 0 {
            continue;
        }
        // Reconstruct by recording the mean c times (exact totals).
        for (m, &s) in mean.iter_mut().zip(&sums[b * obs_dim..(b + 1) * obs_dim]) {
            *m = s / c as f64;
        }
        for _ in 0..c {
            acc.record(b, &mean);
        }
    }
    acc
}

/// Serial baseline: run each window's walkers one after another (rayon
/// across ranks, but no replica exchange and no weight sync). Useful as an
/// ablation (what replica exchange buys) and as a debugging reference.
pub fn run_windows_serial<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> RewlOutput {
    use rayon::prelude::*;
    let layout = WindowLayout::new(
        EnergyGrid::new(e_min, e_max, cfg.num_bins),
        cfg.num_windows,
        cfg.overlap,
    );
    let size = cfg.num_windows * cfg.walkers_per_window;
    let m_species = comp.num_species();
    let num_shells = model.num_shells();
    let obs_dim = num_shells * m_species * m_species;

    let per_rank: Vec<_> = (0..size)
        .into_par_iter()
        .map(|rank| {
            let window = rank / cfg.walkers_per_window;
            let grid = layout.window_grid(window);
            let mut rng = rank_rng(cfg.seed, rank as u64);
            let deep_state = match &cfg.kernel {
                KernelSpec::Deep(ds) => {
                    let deep =
                        DeepProposal::new(m_species, num_shells, &ds.proposal, &mut rng);
                    let lay = deep.layout();
                    Some(DeepState {
                        deep,
                        trainer: ProposalTrainer::new(lay, ds.trainer.clone()),
                        buffer: SampleBuffer::new(ds.buffer_capacity),
                        spec: (**ds).clone(),
                    })
                }
                _ => None,
            };
            let mut deep_state = deep_state;
            let config = Configuration::random(comp, &mut rng);
            let kernel = build_kernel(&cfg.kernel, &deep_state);
            let mut walker = WlWalker::new(
                grid,
                cfg.wl.clone(),
                config,
                model,
                neighbors,
                kernel,
                cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            assert!(
                walker.drive_into_window(model, neighbors, 20_000),
                "rank {rank}: failed to reach window {window}"
            );
            let ctx = ProposalContext {
                neighbors,
                composition: comp,
            };
            let mut sro =
                MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
            let mut obs_buf = vec![0.0f64; obs_dim];
            let mut sweeps = 0u64;
            let mut since_check = 0u64;
            while walker.ln_f() > cfg.wl.ln_f_final && sweeps < cfg.max_sweeps {
                walker.sweep(model, neighbors, &ctx);
                sweeps += 1;
                since_check += 1;
                if since_check >= cfg.wl.sweeps_per_check as u64 {
                    walker.check_and_advance(model, neighbors);
                    since_check = 0;
                }
                if sweeps % cfg.observe_every_sweeps == 0 {
                    if let Some(bin) = layout.global_grid().bin(walker.energy()) {
                        fill_pair_probabilities(
                            walker.config(),
                            neighbors,
                            num_shells,
                            m_species,
                            &mut obs_buf,
                        );
                        sro.record(bin, &obs_buf);
                    }
                }
                if let Some(ds) = deep_state.as_mut() {
                    if sweeps % ds.spec.sample_every_sweeps == 0 {
                        ds.buffer.push(walker.config().clone(), walker.energy());
                    }
                    if sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                        for _ in 0..ds.spec.epochs_per_round {
                            ds.trainer.train_epoch(
                                ds.deep.net_mut(),
                                &ds.buffer,
                                neighbors,
                                walker.rng_mut(),
                            );
                        }
                        walker.set_kernel(build_kernel(&cfg.kernel, &deep_state));
                    }
                }
            }
            let converged = walker.ln_f() <= cfg.wl.ln_f_final;
            (
                RankPiece {
                    ln_g: walker.dos().ln_g().to_vec(),
                    mask: walker.visited_mask(),
                    stats: walker.stats().clone(),
                    counts: vec![
                        0u64,
                        0,
                        u64::from(converged),
                        walker.ln_f().to_bits(),
                        walker.total_moves(),
                    ],
                },
                sro,
                sweeps,
            )
        })
        .collect();

    let mut merged_sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
    for (_, s, _) in &per_rank {
        merged_sro.merge(s);
    }
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        let members: Vec<&RankPiece> = per_rank
            [win * cfg.walkers_per_window..(win + 1) * cfg.walkers_per_window]
            .iter()
            .map(|(p, _, _)| p)
            .collect();
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        for p in &members {
            stats.merge(&p.stats);
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: 0,
            exchange_accepted: 0,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
        });
    }
    let (dos, mask) = merge_windows(&layout, &pieces);
    let total_moves = per_rank.iter().map(|(p, _, _)| p.counts[4]).sum();
    let sweeps = per_rank.iter().map(|(_, _, s)| *s).max().unwrap_or(0);
    RewlOutput {
        dos,
        mask,
        converged: reports.iter().all(|r| r.converged),
        windows: reports,
        sweeps,
        sro: merged_sro,
        total_moves,
    }
}

