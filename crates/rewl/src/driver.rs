//! The REWL drivers: configuration/result types and the thin
//! orchestration that wires a `RankEngine` (in `rank`) to a cluster.
//!
//! The per-rank work lives in `rank` (the phase state machine),
//! [`crate::exchange`] (the swap protocol), and `gather` (the
//! final merge). This module only decides *where* the ranks run:
//! [`run_rewl`] spawns them as threads on the in-memory fabric, while
//! [`run_rewl_on`] runs exactly one rank on a caller-supplied transport
//! (e.g. a TCP worker process).

use dt_hamiltonian::EnergyModel;
use dt_hpc::{Communicator, FaultPlan, RankOutcome, ThreadCluster, Transport};
use dt_lattice::{Composition, Configuration, NeighborTable};
use dt_proposal::{LocalSwap, MoveStats, ProposalContext};
use dt_telemetry::RankTelemetry;
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::{DosEstimate, EnergyGrid, WlParams, WlWalker};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::checkpoint::{self, CheckpointSpec, ResumePoint};
use crate::rank::RankEngine;
use crate::spec::KernelSpec;
use crate::windows::WindowLayout;

/// Configuration of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlConfig {
    /// Number of energy windows `M`.
    pub num_windows: usize,
    /// Walkers per window `W` (total ranks = `M·W`).
    pub walkers_per_window: usize,
    /// Window overlap fraction (0.75 is the REWL standard).
    pub overlap: f64,
    /// Bins of the global energy grid.
    pub num_bins: usize,
    /// Wang–Landau parameters applied per walker.
    pub wl: WlParams,
    /// Attempt replica exchange every this many sweeps.
    pub exchange_every_sweeps: u64,
    /// Record an SRO observation every this many sweeps.
    pub observe_every_sweeps: u64,
    /// Hard sweep cap per walker.
    pub max_sweeps: u64,
    /// Master seed (per-rank streams derive from it).
    pub seed: u64,
    /// Proposal kernels.
    pub kernel: KernelSpec,
    /// Injected failures applied by the simulated fabric (kills, message
    /// drops/delays) — [`FaultPlan::none`] for a reliable cluster. Only
    /// [`run_rewl`] reads this; [`run_rewl_on`] inherits whatever plan
    /// its communicator was built with.
    pub faults: FaultPlan,
    /// Periodic cluster checkpointing; `None` disables persistence. When
    /// set, [`run_rewl`] also *resumes* from the newest consistent
    /// snapshot found in the directory (see [`crate::checkpoint`]).
    pub checkpoint: Option<CheckpointSpec>,
    /// Record per-rank phase timings, acceptance counters, and message
    /// traffic into [`RewlOutput::telemetry`]. Off by default; when off
    /// the instrumentation reduces to a single branch per site.
    pub telemetry: bool,
    /// Self-healing mode: dead peers are treated as temporarily absent
    /// (a supervisor is expected to respawn them), survivors wait for
    /// replacements instead of degrading, and the cluster snapshots
    /// every round so a replacement always finds an exact image of its
    /// death point. Requires `checkpoint` to be set to be useful.
    pub recovery: bool,
    /// How many times THIS rank's process has already been respawned by
    /// its supervisor. `0` for a first life. A respawned rank resumes
    /// from its own newest rank file (not the committed manifest, which
    /// may lag the death round) and restores its collective generation
    /// counters so it rejoins the exact protocol point where it died.
    pub respawns: u64,
    /// Place window boundaries with
    /// [`WindowLayout::equal_diffusion`] instead of the uniform layout,
    /// seeding the cost profile from a deterministic pilot pass
    /// ([`pilot_window_costs`]). Off by default — the uniform layout and
    /// all golden fingerprints are unchanged.
    pub adaptive_windows: bool,
    /// Every this many exchange rounds, rank 0 gathers round-trip
    /// statistics and may migrate one walker from the fastest window to
    /// the slowest (see [`crate::rebalance`]). `0` (the default)
    /// disables reallocation entirely: the `Rebalance` phase is a strict
    /// no-op — no messages, no RNG draws.
    pub rebalance_every: u64,
}

impl Default for RewlConfig {
    fn default() -> Self {
        RewlConfig {
            num_windows: 2,
            walkers_per_window: 2,
            overlap: 0.75,
            num_bins: 64,
            wl: WlParams::default(),
            exchange_every_sweeps: 10,
            observe_every_sweeps: 2,
            max_sweeps: 1_000_000,
            seed: 0,
            kernel: KernelSpec::LocalSwap,
            faults: FaultPlan::none(),
            checkpoint: None,
            telemetry: false,
            recovery: false,
            respawns: 0,
            adaptive_windows: false,
            rebalance_every: 0,
        }
    }
}

/// Unrecoverable failures of a REWL run.
///
/// Degraded-but-survivable situations (a dead non-root walker, a lost
/// message, a failed checkpoint write) are *not* errors — they are
/// reported through [`WindowReport::lost_walkers`] and
/// [`RewlOutput::lost_ranks`]. These variants cover the cases where no
/// meaningful output exists at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewlError {
    /// Rank 0 — the gather root that assembles the output — died.
    /// Every other rank is expendable; point fault plans away from
    /// rank 0.
    RootRankDied(String),
    /// Every walker of one window died or was dropped from the final
    /// gather, so that window's DOS piece is unrecoverable (resume from
    /// a checkpoint instead).
    WindowLost {
        /// Index of the unrecoverable window.
        window: usize,
        /// Walkers the window started with (all lost).
        walkers: usize,
    },
    /// The checkpoint directory records a different fault schedule than
    /// this run was asked to inject. Resuming would replay a different
    /// failure history (or re-kill ranks that already died), so the
    /// resume is refused outright. Re-run with the recorded plan, with no
    /// plan at all (an empty plan resumes anything), or point the run at
    /// a fresh checkpoint directory.
    FaultPlanMismatch {
        /// The plan recorded in the newest committed manifest
        /// ([`FaultPlan::encode`] form).
        recorded: String,
        /// The plan this run was configured with.
        requested: String,
    },
}

impl std::fmt::Display for RewlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewlError::RootRankDied(cause) => {
                write!(f, "rank 0 (the gather root) died: {cause}")
            }
            RewlError::WindowLost { window, walkers } => write!(
                f,
                "window {window}: all {walkers} walkers lost — the DOS piece is unrecoverable"
            ),
            RewlError::FaultPlanMismatch {
                recorded,
                requested,
            } => write!(
                f,
                "checkpoint records fault plan `{recorded}` but this run requested \
                 `{requested}` — refusing to resume under a different failure schedule"
            ),
        }
    }
}

impl std::error::Error for RewlError {}

/// Per-window summary of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: usize,
    /// Exchange attempts with the next window.
    pub exchange_attempts: u64,
    /// Accepted exchanges with the next window.
    pub exchange_accepted: u64,
    /// Merged proposal statistics of the window's walkers.
    pub stats: MoveStats,
    /// Did every surviving walker of the window converge?
    pub converged: bool,
    /// Final `ln f` (max over walkers).
    pub ln_f: f64,
    /// Walkers of this window that died (or could not be gathered) and
    /// therefore contribute nothing to the merged DOS.
    pub lost_walkers: usize,
    /// Completed round trips (lowest ↔ highest window bin) summed over
    /// the window's walkers. Move-count based — deterministic given the
    /// seed, identical across backends.
    pub round_trips: u64,
    /// Moves spent inside completed boundary crossings, summed over the
    /// window's walkers. `round_trip_moves / max(round_trips, 1)` is the
    /// window's mean round-trip cost.
    pub round_trip_moves: u64,
}

impl WindowReport {
    /// Replica-exchange acceptance rate toward the next window.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchange_attempts == 0 {
            0.0
        } else {
            self.exchange_accepted as f64 / self.exchange_attempts as f64
        }
    }
}

/// The result of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlOutput {
    /// Merged global density of states (un-normalized; use
    /// `normalize_total` with the composition's configuration count).
    pub dos: DosEstimate,
    /// Ever-visited mask over global bins.
    pub mask: Vec<bool>,
    /// Per-window reports.
    pub windows: Vec<WindowReport>,
    /// Did every surviving walker converge before `max_sweeps`?
    pub converged: bool,
    /// Sweeps executed per walker.
    pub sweeps: u64,
    /// Merged microcanonical pair-probability accumulator
    /// (`obs_dim = num_shells · m²`, values are directed-pair
    /// probabilities `p_s(a,b)`), binned on the global grid.
    pub sro: MicrocanonicalAccumulator,
    /// Total MC moves across all walkers.
    pub total_moves: u64,
    /// Ranks that died or were dropped from the final gather.
    pub lost_ranks: Vec<usize>,
    /// The checkpoint round this run resumed from, when it did.
    pub resumed_from: Option<u64>,
    /// Per-rank telemetry snapshots (surviving ranks only, in rank
    /// order). Empty unless [`RewlConfig::telemetry`] was set.
    pub telemetry: Vec<RankTelemetry>,
    /// Self-healing statistics aggregated over the gathered ranks. All
    /// zero on a run without recovery (or without faults).
    pub recovery: RecoveryStats,
    /// Walker migrations applied by dynamic reallocation, summed over
    /// the gathered ranks (each migration counts once, on the migrant).
    /// Zero unless [`RewlConfig::rebalance_every`] was set.
    pub walkers_rebalanced: u64,
}

/// Aggregate self-healing statistics of one run, summed over the ranks
/// that made it to the final gather.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Total respawns across all ranks (a rank respawned twice counts
    /// twice).
    pub ranks_respawned: u64,
    /// Total wall-clock nanoseconds replacement ranks spent restoring
    /// state and rejoining the cluster.
    pub rejoin_duration_ns: u64,
    /// Heartbeat deadlines missed across all ranks (each one marked a
    /// peer dead ahead of any socket-level signal).
    pub heartbeat_misses: u64,
}

/// Seed the adaptive window solver with a deterministic pilot pass: one
/// short Wang–Landau walker per window of the *uniform* baseline layout,
/// each measuring its window's round-trip cost (mean moves per boundary
/// crossing, pending-leg moves when no crossing completed). Those
/// per-window costs feed [`WindowLayout::refit_equal_diffusion`], which
/// spreads them into a per-bin profile and re-solves the boundaries so
/// slow-diffusing windows shrink. Measuring round trips directly is what
/// makes the profile honest: visit-count occupancy proxies systematically
/// mistake "where the pilot happened to wander" for "where diffusion is
/// cheap".
///
/// Everything is derived from `seed` with a private RNG stream, so every
/// rank computes the identical costs with no communication, and a
/// resumed run rebuilds the identical layout.
///
/// Windows whose pilot walker cannot even enter its range (a
/// pathological configuration) report a flat unit cost; if that happens
/// everywhere the refit degenerates to the uniform layout.
pub fn pilot_window_costs<M: EnergyModel>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    uniform: &WindowLayout,
    seed: u64,
) -> Vec<f64> {
    /// Sweep budget of each pilot walker — enough for several boundary
    /// crossings on test-sized systems, negligible next to the main run.
    const PILOT_SWEEPS: usize = 1024;
    /// Pilot walkers advance their own Wang–Landau stage on this sweep
    /// cadence so the measured dynamics resemble the production run
    /// rather than staying pinned at the initial `ln f`.
    const PILOT_CHECK_EVERY: usize = 4;
    /// Stream-splitting constant: keeps pilot RNGs disjoint from every
    /// per-rank stream (`seed ^ rank · 0x9E37…`).
    const PILOT_STREAM: u64 = 0x51C0_7AB5_D1F0_0E11;

    let ctx = ProposalContext {
        neighbors,
        composition: comp,
    };
    (0..uniform.num_windows())
        .map(|w| {
            let stream = seed ^ PILOT_STREAM ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = ChaCha8Rng::seed_from_u64(stream);
            let config = Configuration::random(comp, &mut rng);
            let mut walker = WlWalker::new(
                uniform.window_grid(w),
                WlParams::fast(),
                config,
                model,
                neighbors,
                Box::new(LocalSwap::new()),
                stream.rotate_left(17),
            );
            if !walker.drive_into_window(model, neighbors, 20_000) {
                return 1.0;
            }
            let mut since_check = 0usize;
            for _ in 0..PILOT_SWEEPS {
                walker.sweep(model, neighbors, &ctx);
                since_check += 1;
                if since_check >= PILOT_CHECK_EVERY {
                    walker.check_and_advance(model, neighbors);
                    since_check = 0;
                }
            }
            let rt = walker.round_trip_stats();
            if rt.crossings > 0 {
                rt.crossing_moves as f64 / rt.crossings as f64
            } else {
                // No full crossing in the budget: the unfinished leg's
                // length is a lower bound on the true cost and already
                // ranks the window as expensive.
                rt.pending_moves.max(1) as f64
            }
        })
        .collect()
}

/// Build the window layout for a run: uniform by default, cost-balanced
/// via the per-window pilot when `cfg.adaptive_windows` is set. Pure
/// given `cfg` — every rank calls this independently and gets the same
/// layout.
fn build_layout<M: EnergyModel>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> WindowLayout {
    let grid = EnergyGrid::new(e_min, e_max, cfg.num_bins);
    let uniform = WindowLayout::new(grid, cfg.num_windows, cfg.overlap);
    if cfg.adaptive_windows {
        // The pilot runs at high ln f, where the Wang–Landau bias still
        // assists diffusion, so measured costs compress the converged-
        // regime skew roughly as a square root. Squaring restores it
        // before the boundary solver equalizes the profile.
        const PILOT_SKEW_EXPONENT: i32 = 2;
        let costs: Vec<f64> = pilot_window_costs(model, neighbors, comp, &uniform, cfg.seed)
            .into_iter()
            .map(|c| c.powi(PILOT_SKEW_EXPONENT))
            .collect();
        uniform.refit_equal_diffusion(&costs)
    } else {
        uniform
    }
}

/// Locate the newest usable resume point for this config, creating the
/// checkpoint directory as a side effect. `Ok(None)` when checkpointing
/// is off, the directory is unusable, or no consistent snapshot exists.
///
/// A respawned rank (`cfg.respawns > 0`) bypasses the committed manifest
/// and resumes from its own newest rank file: the file was written at the
/// start of the round it died in, which may be newer than the last
/// manifest rank 0 managed to commit (the supervisor can respawn a worker
/// faster than the coordinator collects commit confirmations). Resuming
/// one round behind the survivors would desynchronize the whole protocol;
/// the own-file round is exact by construction.
///
/// # Errors
/// [`RewlError::FaultPlanMismatch`] when the manifest records a different
/// (non-empty vs different) fault schedule than `requested`. An empty
/// requested plan resumes anything — "rerun without faults" is the normal
/// recovery action after a faulty run. Respawned ranks skip the check:
/// their plan was validated when the cluster launched, and the supervisor
/// hands them a disarmed variant (spent kills removed) that would never
/// compare equal.
fn find_resume_point(
    cfg: &RewlConfig,
    digest: u64,
    rank: usize,
    size: usize,
    requested: &FaultPlan,
) -> Result<Option<ResumePoint>, RewlError> {
    let Some(spec) = cfg.checkpoint.as_ref() else {
        return Ok(None);
    };
    if let Err(e) = std::fs::create_dir_all(&spec.dir) {
        eprintln!(
            "rewl: cannot create checkpoint dir {}: {e}; checkpointing disabled",
            spec.dir.display()
        );
        return Ok(None);
    }
    if cfg.respawns > 0 {
        return Ok(checkpoint::load_own_resume_point(&spec.dir, rank, size));
    }
    match checkpoint::load_resume_point(&spec.dir, digest, size) {
        Some(rp) => {
            if *requested != FaultPlan::none() && rp.faults != *requested {
                return Err(RewlError::FaultPlanMismatch {
                    recorded: rp.faults.encode(),
                    requested: requested.encode(),
                });
            }
            Ok(Some(rp))
        }
        None => Ok(None),
    }
}

/// Run REWL on a simulated cluster of `M·W` ranks (threads).
///
/// `(e_min, e_max)` is the global energy range (discover it with
/// [`dt_wanglandau::explore_energy_range`]).
///
/// Fault tolerance: with `cfg.faults` the fabric injects failures; dead
/// walkers are skipped by survivors and reported via
/// [`WindowReport::lost_walkers`] / [`RewlOutput::lost_ranks`]. With
/// `cfg.checkpoint` the cluster snapshots itself periodically and this
/// function resumes from the newest consistent snapshot on the next call.
///
/// # Errors
/// [`RewlError::RootRankDied`] when rank 0 (the gather root) dies —
/// every other rank is expendable — and [`RewlError::WindowLost`] when
/// an entire window loses all of its walkers, leaving a hole no merge
/// can bridge.
///
/// # Panics
/// Panics when a walker cannot reach its assigned energy window during
/// warm-up (a configuration problem, not a runtime fault).
pub fn run_rewl<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> Result<RewlOutput, RewlError> {
    let layout = build_layout(model, neighbors, comp, (e_min, e_max), cfg);
    let size = cfg.num_windows * cfg.walkers_per_window;
    let digest = checkpoint::config_digest(cfg);
    let resume = find_resume_point(cfg, digest, 0, size, &cfg.faults)?;
    let resume_ref = resume.as_ref();

    let outcomes = ThreadCluster::run_with_faults(size, cfg.faults.clone(), |comm| {
        RankEngine::new(
            comm, model, neighbors, comp, &layout, cfg, digest, resume_ref, false,
        )
        .run()
    });
    // Rank 0 produced the assembled output; every surviving rank
    // contributed a telemetry snapshot (when enabled).
    let mut telemetry = Vec::new();
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            RankOutcome::Completed((result, tel)) => {
                telemetry.extend(tel);
                if rank == 0 {
                    root = Some(result.expect("rank 0 assembles the output"));
                }
            }
            RankOutcome::Died { cause } => {
                if rank == 0 {
                    return Err(RewlError::RootRankDied(cause));
                }
            }
        }
    }
    let mut out = root.expect("rank 0 completes or dies")?;
    out.telemetry = telemetry;
    Ok(out)
}

/// What [`run_rewl_on`] hands back for one rank of a cluster.
#[derive(Debug)]
pub struct RankRun {
    /// The assembled run output — `Some` only on rank 0 (the gather
    /// root); every other rank contributes its piece over the wire and
    /// returns `None` here.
    pub output: Option<RewlOutput>,
    /// This rank's own telemetry snapshot (when enabled). On rank 0 the
    /// cluster-wide snapshots are also in
    /// [`RewlOutput::telemetry`].
    pub telemetry: Option<RankTelemetry>,
}

/// Run ONE rank of a REWL cluster on a caller-supplied [`Transport`] —
/// the entry point for multi-process backends (each TCP worker process
/// calls this with its own [`Communicator`]).
///
/// The communicator's `rank`/`size` must match the
/// `num_windows · walkers_per_window` layout in `cfg`. Fault injection
/// comes from the plan the communicator was built with (`cfg.faults` is
/// not consulted). Checkpoint/resume behaves exactly as in [`run_rewl`]:
/// every rank reads the shared checkpoint directory and restores its own
/// slice. A fault-free run produces bit-identical `ln g` to the thread
/// backend under the same seed.
///
/// # Errors
/// Same failure modes as [`run_rewl`], surfaced on rank 0:
/// [`RewlError::WindowLost`] when a window loses every walker. (A dead
/// rank 0 cannot return at all — supervise the process instead.)
///
/// # Panics
/// Panics when a walker cannot reach its assigned energy window during
/// warm-up, or when the communicator size does not match the layout.
pub fn run_rewl_on<M: EnergyModel, T: Transport>(
    comm: Communicator<T>,
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> Result<RankRun, RewlError> {
    let size = cfg.num_windows * cfg.walkers_per_window;
    assert_eq!(
        comm.size(),
        size,
        "communicator size must equal num_windows × walkers_per_window"
    );
    let layout = build_layout(model, neighbors, comp, (e_min, e_max), cfg);
    let digest = checkpoint::config_digest(cfg);
    let resume = find_resume_point(cfg, digest, comm.rank(), size, comm.fault_plan())?;
    let (result, telemetry) = RankEngine::new(
        comm,
        model,
        neighbors,
        comp,
        &layout,
        cfg,
        digest,
        resume.as_ref(),
        true,
    )
    .run();
    match result {
        Some(Ok(output)) => Ok(RankRun {
            output: Some(output),
            telemetry,
        }),
        Some(Err(e)) => Err(e),
        None => Ok(RankRun {
            output: None,
            telemetry,
        }),
    }
}
