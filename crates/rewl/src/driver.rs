//! The REWL drivers.

use std::time::Duration;

use dt_hamiltonian::EnergyModel;
use dt_hpc::{
    rank_rng, CommError, Communicator, FaultPlan, RankOutcome, ThreadCluster, TrafficSnapshot,
};
use dt_lattice::{sro::ordered_pair_counts, Composition, Configuration, NeighborTable};
use dt_proposal::{
    DeepProposal, LocalSwap, MoveStats, ProposalContext, ProposalKernel, ProposalMix,
    ProposalTrainer, RandomReassign, SampleBuffer,
};
use dt_telemetry::{Phase, RankTelemetry, Telemetry};
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::{DosEstimate, EnergyGrid, WlParams, WlWalker};

use crate::checkpoint::{self, CheckpointSpec, RankCheckpoint, ResumePoint, RunManifest};
use crate::merge::merge_windows;
use crate::spec::{DeepSpec, KernelSpec};
use crate::windows::WindowLayout;
use crate::wire;

/// Configuration of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlConfig {
    /// Number of energy windows `M`.
    pub num_windows: usize,
    /// Walkers per window `W` (total ranks = `M·W`).
    pub walkers_per_window: usize,
    /// Window overlap fraction (0.75 is the REWL standard).
    pub overlap: f64,
    /// Bins of the global energy grid.
    pub num_bins: usize,
    /// Wang–Landau parameters applied per walker.
    pub wl: WlParams,
    /// Attempt replica exchange every this many sweeps.
    pub exchange_every_sweeps: u64,
    /// Record an SRO observation every this many sweeps.
    pub observe_every_sweeps: u64,
    /// Hard sweep cap per walker.
    pub max_sweeps: u64,
    /// Master seed (per-rank streams derive from it).
    pub seed: u64,
    /// Proposal kernels.
    pub kernel: KernelSpec,
    /// Injected failures applied by the simulated fabric (kills, message
    /// drops/delays) — [`FaultPlan::none`] for a reliable cluster.
    pub faults: FaultPlan,
    /// Periodic cluster checkpointing; `None` disables persistence. When
    /// set, [`run_rewl`] also *resumes* from the newest consistent
    /// snapshot found in the directory (see [`crate::checkpoint`]).
    pub checkpoint: Option<CheckpointSpec>,
    /// Record per-rank phase timings, acceptance counters, and message
    /// traffic into [`RewlOutput::telemetry`]. Off by default; when off
    /// the instrumentation reduces to a single branch per site.
    pub telemetry: bool,
}

impl Default for RewlConfig {
    fn default() -> Self {
        RewlConfig {
            num_windows: 2,
            walkers_per_window: 2,
            overlap: 0.75,
            num_bins: 64,
            wl: WlParams::default(),
            exchange_every_sweeps: 10,
            observe_every_sweeps: 2,
            max_sweeps: 1_000_000,
            seed: 0,
            kernel: KernelSpec::LocalSwap,
            faults: FaultPlan::none(),
            checkpoint: None,
            telemetry: false,
        }
    }
}

/// Unrecoverable failures of a REWL run.
///
/// Degraded-but-survivable situations (a dead non-root walker, a lost
/// message, a failed checkpoint write) are *not* errors — they are
/// reported through [`WindowReport::lost_walkers`] and
/// [`RewlOutput::lost_ranks`]. These variants cover the cases where no
/// meaningful output exists at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewlError {
    /// Rank 0 — the gather root that assembles the output — died.
    /// Every other rank is expendable; point fault plans away from
    /// rank 0.
    RootRankDied(String),
    /// Every walker of one window died or was dropped from the final
    /// gather, so that window's DOS piece is unrecoverable (resume from
    /// a checkpoint instead).
    WindowLost {
        /// Index of the unrecoverable window.
        window: usize,
        /// Walkers the window started with (all lost).
        walkers: usize,
    },
}

impl std::fmt::Display for RewlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewlError::RootRankDied(cause) => {
                write!(f, "rank 0 (the gather root) died: {cause}")
            }
            RewlError::WindowLost { window, walkers } => write!(
                f,
                "window {window}: all {walkers} walkers lost — the DOS piece is unrecoverable"
            ),
        }
    }
}

impl std::error::Error for RewlError {}

/// Per-window summary of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowReport {
    /// Window index.
    pub window: usize,
    /// Exchange attempts with the next window.
    pub exchange_attempts: u64,
    /// Accepted exchanges with the next window.
    pub exchange_accepted: u64,
    /// Merged proposal statistics of the window's walkers.
    pub stats: MoveStats,
    /// Did every surviving walker of the window converge?
    pub converged: bool,
    /// Final `ln f` (max over walkers).
    pub ln_f: f64,
    /// Walkers of this window that died (or could not be gathered) and
    /// therefore contribute nothing to the merged DOS.
    pub lost_walkers: usize,
}

impl WindowReport {
    /// Replica-exchange acceptance rate toward the next window.
    pub fn exchange_rate(&self) -> f64 {
        if self.exchange_attempts == 0 {
            0.0
        } else {
            self.exchange_accepted as f64 / self.exchange_attempts as f64
        }
    }
}

/// The result of a REWL run.
#[derive(Debug, Clone)]
pub struct RewlOutput {
    /// Merged global density of states (un-normalized; use
    /// `normalize_total` with the composition's configuration count).
    pub dos: DosEstimate,
    /// Ever-visited mask over global bins.
    pub mask: Vec<bool>,
    /// Per-window reports.
    pub windows: Vec<WindowReport>,
    /// Did every surviving walker converge before `max_sweeps`?
    pub converged: bool,
    /// Sweeps executed per walker.
    pub sweeps: u64,
    /// Merged microcanonical pair-probability accumulator
    /// (`obs_dim = num_shells · m²`, values are directed-pair
    /// probabilities `p_s(a,b)`), binned on the global grid.
    pub sro: MicrocanonicalAccumulator,
    /// Total MC moves across all walkers.
    pub total_moves: u64,
    /// Ranks that died or were dropped from the final gather.
    pub lost_ranks: Vec<usize>,
    /// The checkpoint round this run resumed from, when it did.
    pub resumed_from: Option<u64>,
    /// Per-rank telemetry snapshots (surviving ranks only, in rank
    /// order). Empty unless [`RewlConfig::telemetry`] was set.
    pub telemetry: Vec<RankTelemetry>,
}

/// Data one rank contributes to the final gather.
struct RankPiece {
    ln_g: Vec<f64>,
    mask: Vec<bool>,
    stats: MoveStats,
    /// `[exchange_attempts, exchange_accepted, converged, ln_f bits, moves]`.
    counts: Vec<u64>,
}

/// Per-rank deep-proposal state.
struct DeepState {
    deep: DeepProposal,
    trainer: ProposalTrainer,
    buffer: SampleBuffer,
    spec: DeepSpec,
}

fn build_kernel(spec: &KernelSpec, deep_state: &Option<DeepState>) -> Box<dyn ProposalKernel> {
    match spec {
        KernelSpec::LocalSwap => Box::new(LocalSwap::new()),
        KernelSpec::RandomGlobal { k, weight } => Box::new(ProposalMix::new(vec![
            (
                Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                1.0 - weight,
            ),
            (Box::new(RandomReassign::new(*k)), *weight),
        ])),
        KernelSpec::Deep(ds) => {
            let deep = deep_state
                .as_ref()
                .expect("deep state must exist for deep kernels")
                .deep
                .clone();
            Box::new(ProposalMix::new(vec![
                (
                    Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                    1.0 - ds.deep_weight,
                ),
                (Box::new(deep), ds.deep_weight),
            ]))
        }
    }
}

/// Run REWL on a simulated cluster of `M·W` ranks (threads).
///
/// `(e_min, e_max)` is the global energy range (discover it with
/// [`dt_wanglandau::explore_energy_range`]).
///
/// Fault tolerance: with `cfg.faults` the fabric injects failures; dead
/// walkers are skipped by survivors and reported via
/// [`WindowReport::lost_walkers`] / [`RewlOutput::lost_ranks`]. With
/// `cfg.checkpoint` the cluster snapshots itself periodically and this
/// function resumes from the newest consistent snapshot on the next call.
///
/// # Errors
/// [`RewlError::RootRankDied`] when rank 0 (the gather root) dies —
/// every other rank is expendable — and [`RewlError::WindowLost`] when
/// an entire window loses all of its walkers, leaving a hole no merge
/// can bridge.
///
/// # Panics
/// Panics when a walker cannot reach its assigned energy window during
/// warm-up (a configuration problem, not a runtime fault).
pub fn run_rewl<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> Result<RewlOutput, RewlError> {
    let layout = WindowLayout::new(
        EnergyGrid::new(e_min, e_max, cfg.num_bins),
        cfg.num_windows,
        cfg.overlap,
    );
    let size = cfg.num_windows * cfg.walkers_per_window;
    let m_species = comp.num_species();
    let num_shells = model.num_shells();
    let obs_dim = num_shells * m_species * m_species;

    let digest = checkpoint::config_digest(cfg);
    let resume = cfg.checkpoint.as_ref().and_then(|spec| {
        if let Err(e) = std::fs::create_dir_all(&spec.dir) {
            eprintln!(
                "rewl: cannot create checkpoint dir {}: {e}; checkpointing disabled",
                spec.dir.display()
            );
            return None;
        }
        checkpoint::load_resume_point(&spec.dir, digest, size)
    });
    let resume_ref = resume.as_ref();

    let outcomes = ThreadCluster::run_with_faults(size, cfg.faults.clone(), |comm| {
        run_rank(
            comm, model, neighbors, comp, &layout, cfg, obs_dim, num_shells, digest, resume_ref,
        )
    });
    // Rank 0 produced the assembled output; every surviving rank
    // contributed a telemetry snapshot (when enabled).
    let mut telemetry = Vec::new();
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            RankOutcome::Completed((result, tel)) => {
                telemetry.extend(tel);
                if rank == 0 {
                    root = Some(result.expect("rank 0 assembles the output"));
                }
            }
            RankOutcome::Died { cause } => {
                if rank == 0 {
                    return Err(RewlError::RootRankDied(cause));
                }
            }
        }
    }
    let mut out = root.expect("rank 0 completes or dies")?;
    out.telemetry = telemetry;
    Ok(out)
}

/// Message tags.
mod tags {
    pub const EXCH_ENERGY: u64 = 1;
    pub const EXCH_REPLY: u64 = 2;
    pub const EXCH_DECISION: u64 = 3;
    pub const EXCH_CONFIG: u64 = 4;
    pub const SYNC_PARAMS: u64 = 5;
    pub const SYNC_PARAMS_BACK: u64 = 6;
    pub const GATHER_LN_G: u64 = 7;
    pub const GATHER_MASK: u64 = 8;
    pub const GATHER_STATS: u64 = 9;
    pub const GATHER_COUNTS: u64 = 10;
    pub const GATHER_SRO_SUMS: u64 = 11;
    pub const GATHER_SRO_COUNTS: u64 = 12;
    pub const CKPT_META: u64 = 13;

    /// Pack a round number into the tag space.
    pub fn with_round(tag: u64, round: u64) -> u64 {
        (round << 8) | tag
    }
}

/// First receive timeout of the bounded retry schedule.
const RECV_BASE: Duration = Duration::from_millis(100);
/// Retries with doubling timeout: total patience ≈ 6.3 s before a peer
/// is written off for this protocol step.
const RECV_RETRIES: u32 = 6;
/// Patience for the final gather and checkpoint commits, where peers are
/// known to be at (or past) the same protocol point.
const COLLECT_DEADLINE: Duration = Duration::from_secs(30);

/// Deadline-bounded receive with exponential backoff. Returns the first
/// hard failure: a dead peer immediately, a timeout after the full retry
/// budget. Never blocks unboundedly.
fn recv_resilient(comm: &Communicator, from: usize, tag: u64) -> Result<Vec<u8>, CommError> {
    let mut timeout = RECV_BASE;
    let mut last = CommError::Timeout { from, tag };
    for _ in 0..RECV_RETRIES {
        match comm.recv_timeout(from, tag, timeout) {
            Ok(bytes) => return Ok(bytes),
            Err(dead @ CommError::RankDead(_)) => return Err(dead),
            Err(timed_out) => last = timed_out,
        }
        timeout *= 2;
    }
    Err(last)
}

/// What one rank hands back to [`run_rewl`]: the assembled output (rank 0
/// only, or the error that prevented assembly) plus this rank's telemetry
/// snapshot (when enabled).
type RankReturn = (Option<Result<RewlOutput, RewlError>>, Option<RankTelemetry>);

#[allow(clippy::too_many_arguments)]
fn run_rank<M: EnergyModel + Sync>(
    comm: Communicator,
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    layout: &WindowLayout,
    cfg: &RewlConfig,
    obs_dim: usize,
    num_shells: usize,
    digest: u64,
    resume: Option<&ResumePoint>,
) -> RankReturn {
    let rank = comm.rank();
    let w = cfg.walkers_per_window;
    let window = rank / w;
    let slot = rank % w;
    let m_species = comp.num_species();
    let grid = layout.window_grid(window);
    let global_bins = layout.global_grid().num_bins();
    let mut rng = rank_rng(cfg.seed, rank as u64);
    let tel = Telemetry::new(cfg.telemetry);

    // Deep-proposal state (per rank).
    let mut deep_state = match &cfg.kernel {
        KernelSpec::Deep(ds) => {
            let mut deep = DeepProposal::new(m_species, num_shells, &ds.proposal, &mut rng);
            // Pre-size every inference buffer so the sampling loop never
            // allocates on a proposal.
            deep.warm_up(comp.num_sites());
            deep.set_telemetry(tel.clone());
            let layout_f = deep.layout();
            let mut trainer = ProposalTrainer::new(layout_f, ds.trainer.clone());
            trainer.set_telemetry(tel.clone());
            Some(DeepState {
                deep,
                trainer,
                buffer: SampleBuffer::new(ds.buffer_capacity),
                spec: (**ds).clone(),
            })
        }
        _ => None,
    };

    let walker_seed = cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut sro = MicrocanonicalAccumulator::new(global_bins, obs_dim);
    let mut exchange_attempts = 0u64;
    let mut exchange_accepted = 0u64;
    let mut sweeps = 0u64;
    let mut sweeps_since_check = 0u64;
    let resumed_round = resume.map(|rp| rp.round);
    let mut round = resumed_round.unwrap_or(0);

    // A usable per-rank snapshot must have been taken on the same window
    // grid (the digest guards the config, not the energy range).
    let rank_state = resume.and_then(|rp| rp.ranks[rank].as_ref()).filter(|rc| {
        rc.walker.num_bins == grid.num_bins()
            && rc.walker.e_min.to_bits() == grid.e_min().to_bits()
            && rc.walker.e_max.to_bits() == grid.e_max().to_bits()
    });

    let mut walker = match rank_state {
        Some(rc) => {
            // Restore the deep net BEFORE building the kernel so the
            // walker samples with the trained weights. (The deep sample
            // buffer is not persisted; it refills during sampling.)
            if let (Some(ds), Some(params)) = (deep_state.as_mut(), rc.deep_params.as_ref()) {
                ds.deep.net_mut().set_params(params);
            }
            let kernel = build_kernel(&cfg.kernel, &deep_state);
            let mut walker =
                WlWalker::from_checkpoint(&rc.walker, cfg.wl.clone(), kernel, walker_seed);
            // Same seed + saved stream position ⇒ the RNG continues
            // bit-exactly where the snapshot left off.
            walker.rng_mut().set_word_pos(rc.rng_word_pos);
            walker.set_stats(rc.stats.clone());
            exchange_attempts = rc.exchange_attempts;
            exchange_accepted = rc.exchange_accepted;
            sweeps = rc.sweeps;
            sweeps_since_check = rc.sweeps_since_check;
            if rc.obs_dim == obs_dim
                && rc.sro_counts.len() == global_bins
                && rc.sro_sums.len() == global_bins * obs_dim
            {
                for b in 0..global_bins {
                    sro.record_sum(
                        b,
                        &rc.sro_sums[b * obs_dim..(b + 1) * obs_dim],
                        rc.sro_counts[b],
                    );
                }
            }
            walker
        }
        None => {
            let config = Configuration::random(comp, &mut rng);
            let kernel = build_kernel(&cfg.kernel, &deep_state);
            let mut walker = WlWalker::new(
                grid,
                cfg.wl.clone(),
                config,
                model,
                neighbors,
                kernel,
                walker_seed,
            );
            assert!(
                walker.drive_into_window(model, neighbors, 20_000),
                "rank {rank}: failed to reach window {window} {:?}",
                layout.bin_range(window)
            );
            walker
        }
    };
    walker.set_telemetry(tel.clone());

    let ctx = ProposalContext {
        neighbors,
        composition: comp,
    };
    let mut obs_buf = vec![0.0f64; obs_dim];

    loop {
        // Injected kills fire here, at a deterministic protocol point.
        comm.poll_faults(round);

        // --- periodic cluster checkpoint (start of round) -------------
        if let Some(spec) = cfg.checkpoint.as_ref() {
            if round > 0 && round % spec.every_rounds == 0 && Some(round) != resumed_round {
                let _span = tel.span(Phase::Checkpoint);
                checkpoint_cluster(
                    &comm,
                    spec,
                    digest,
                    round,
                    &mut walker,
                    &deep_state,
                    &sro,
                    obs_dim,
                    [
                        exchange_attempts,
                        exchange_accepted,
                        sweeps,
                        sweeps_since_check,
                    ],
                );
            }
        }

        // --- sampling phase ------------------------------------------
        for _ in 0..cfg.exchange_every_sweeps {
            walker.sweep(model, neighbors, &ctx);
            sweeps += 1;
            sweeps_since_check += 1;
            if sweeps_since_check >= cfg.wl.sweeps_per_check as u64 {
                walker.check_and_advance(model, neighbors);
                sweeps_since_check = 0;
            }
            if sweeps % cfg.observe_every_sweeps == 0 {
                if let Some(bin) = layout.global_grid().bin(walker.energy()) {
                    fill_pair_probabilities(
                        walker.config(),
                        neighbors,
                        num_shells,
                        m_species,
                        &mut obs_buf,
                    );
                    sro.record(bin, &obs_buf);
                }
            }
            if let Some(ds) = deep_state.as_mut() {
                if sweeps % ds.spec.sample_every_sweeps == 0 {
                    ds.buffer.push(walker.config().clone(), walker.energy());
                }
            }
        }

        // --- deep retraining ------------------------------------------
        let mut kernel_dirty = false;
        if let Some(ds) = deep_state.as_mut() {
            if sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                for _ in 0..ds.spec.epochs_per_round {
                    ds.trainer.train_epoch(
                        ds.deep.net_mut(),
                        &ds.buffer,
                        neighbors,
                        walker.rng_mut(),
                    );
                }
                kernel_dirty = true;
            }
        }
        // Window-wide weight averaging (simulated allreduce). The leader
        // slot is fixed (first rank of the window): if the leader is dead
        // the window skips syncing and every walker keeps local weights;
        // if a member is dead (or its message lost) the leader averages
        // over whatever arrived. A fixed leader cannot race the failure
        // detector the way electing "first live rank" would.
        if let Some(ds) = deep_state.as_mut() {
            if ds.spec.sync_weights && w > 1 {
                let _span = tel.span(Phase::Allreduce);
                let params = ds.deep.net().flatten_params();
                let leader = window * w;
                if slot == 0 {
                    let mut acc = params.clone();
                    let mut contributors = 1.0f64;
                    for other in (leader + 1)..(leader + w) {
                        if !comm.is_alive(other) {
                            continue;
                        }
                        let got = recv_resilient(
                            &comm,
                            other,
                            tags::with_round(tags::SYNC_PARAMS, round),
                        )
                        .ok()
                        .and_then(|bytes| wire::decode_f64s(&bytes).ok());
                        match got {
                            Some(theirs) if theirs.len() == acc.len() => {
                                for (a, b) in acc.iter_mut().zip(theirs) {
                                    *a += b;
                                }
                                contributors += 1.0;
                            }
                            _ => {}
                        }
                    }
                    for a in &mut acc {
                        *a /= contributors;
                    }
                    let payload = wire::encode_f64s(&acc);
                    for other in (leader + 1)..(leader + w) {
                        comm.send(
                            other,
                            tags::with_round(tags::SYNC_PARAMS_BACK, round),
                            payload.clone(),
                        );
                    }
                    ds.deep.net_mut().set_params(&acc);
                } else if comm.is_alive(leader) {
                    comm.send(
                        leader,
                        tags::with_round(tags::SYNC_PARAMS, round),
                        wire::encode_f64s(&params),
                    );
                    let avg = recv_resilient(
                        &comm,
                        leader,
                        tags::with_round(tags::SYNC_PARAMS_BACK, round),
                    )
                    .ok()
                    .and_then(|bytes| wire::decode_f64s(&bytes).ok());
                    if let Some(avg) = avg {
                        if avg.len() == params.len() {
                            ds.deep.net_mut().set_params(&avg);
                        }
                    }
                }
                kernel_dirty = true;
            }
        }
        if kernel_dirty {
            walker.set_kernel(build_kernel(&cfg.kernel, &deep_state));
        }

        // --- replica exchange -----------------------------------------
        if cfg.num_windows > 1 {
            let parity = (round % 2) as usize;
            // Am I the initiator ('a', lower window of an active pair)?
            if window % 2 == parity && window + 1 < cfg.num_windows {
                let partner_slot = (slot + round as usize) % w;
                let partner = (window + 1) * w + partner_slot;
                // Dead slots are skipped outright; a partner that dies
                // mid-protocol surfaces as a bounded comm error below.
                if comm.is_alive(partner) {
                    let _span = tel.span(Phase::Exchange);
                    exchange_attempts += 1;
                    match exchange_as_initiator(&comm, &mut walker, partner, round, m_species) {
                        Ok(true) => exchange_accepted += 1,
                        Ok(false) => {}
                        // Lost partner or lost message: abandon this
                        // exchange, keep local state, carry on.
                        Err(_) => {}
                    }
                }
            } else if window % 2 != parity && window > 0 {
                // I may be the responder 'b'.
                let initiator_slot = (slot + w - (round as usize % w)) % w;
                let initiator = (window - 1) * w + initiator_slot;
                if comm.is_alive(initiator) {
                    let _span = tel.span(Phase::Exchange);
                    let _ = exchange_as_responder(&comm, &mut walker, initiator, round, m_species);
                }
            }
        }

        // --- convergence poll -----------------------------------------
        // All survivors of one allreduce generation see identical sums,
        // so the stop decision is collective and no rank can exit the
        // round loop while a peer keeps waiting for it:
        //   [Σ converged, Σ 1 (= contributors), Σ hit-sweep-cap].
        let mut flags = [
            f64::from(u8::from(walker.ln_f() <= cfg.wl.ln_f_final)),
            1.0,
            f64::from(u8::from(sweeps >= cfg.max_sweeps)),
        ];
        {
            let _span = tel.span(Phase::Allreduce);
            comm.allreduce_sum(&mut flags);
        }
        round += 1;
        let contributors = flags[1].round() as usize;
        if flags[0].round() as usize >= contributors || flags[2] > 0.5 {
            break;
        }
    }

    // --- gather at rank 0 ---------------------------------------------
    let converged = walker.ln_f() <= cfg.wl.ln_f_final;
    let counts = vec![
        exchange_attempts,
        exchange_accepted,
        u64::from(converged),
        walker.ln_f().to_bits(),
        walker.total_moves(),
    ];
    if rank != 0 {
        {
            let _span = tel.span(Phase::Gather);
            comm.send(0, tags::GATHER_LN_G, wire::encode_f64s(walker.dos().ln_g()));
            comm.send(
                0,
                tags::GATHER_MASK,
                wire::encode_mask(&walker.visited_mask()),
            );
            comm.send(
                0,
                tags::GATHER_STATS,
                serialize_stats(walker.stats()).into_bytes(),
            );
            comm.send(0, tags::GATHER_COUNTS, wire::encode_u64s(&counts));
            send_accumulator(&comm, &sro, obs_dim);
        }
        let snap = snapshot_rank_telemetry(
            &tel,
            rank,
            &walker,
            [exchange_attempts, exchange_accepted, sweeps],
            Some(comm.traffic()),
        );
        return (None, snap);
    }

    // Rank 0: collect every surviving rank (including itself). A rank
    // that died (or whose payload is missing/corrupt) is dropped from
    // the merge and recorded as lost.
    let mut per_rank: Vec<Option<RankPiece>> = Vec::with_capacity(comm.size());
    per_rank.push(Some(RankPiece {
        ln_g: walker.dos().ln_g().to_vec(),
        mask: walker.visited_mask(),
        stats: walker.stats().clone(),
        counts,
    }));
    let mut merged_sro = sro;
    let mut lost_ranks = Vec::new();
    {
        let _span = tel.span(Phase::Gather);
        for other in 1..comm.size() {
            let (lo, hi) = layout.bin_range(other / w);
            match recv_rank_piece(&comm, other, hi - lo, global_bins, obs_dim) {
                Ok((piece, acc)) => {
                    merged_sro.merge(&acc);
                    per_rank.push(Some(piece));
                }
                Err(why) => {
                    eprintln!("rewl: dropping rank {other} from the gather: {why}");
                    per_rank.push(None);
                    lost_ranks.push(other);
                }
            }
        }
    }
    let rank_tel = snapshot_rank_telemetry(
        &tel,
        rank,
        &walker,
        [exchange_attempts, exchange_accepted, sweeps],
        Some(comm.traffic()),
    );

    // Average walkers within each window (aligning additive constants),
    // then merge windows. Lost walkers simply don't contribute; a window
    // that lost everyone cannot be reconstructed at all.
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        let members: Vec<&RankPiece> = per_rank[win * w..(win + 1) * w].iter().flatten().collect();
        if members.is_empty() {
            return (
                Some(Err(RewlError::WindowLost {
                    window: win,
                    walkers: w,
                })),
                rank_tel,
            );
        }
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        for p in &members {
            stats.merge(&p.stats);
            attempts += p.counts[0];
            accepted += p.counts[1];
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: attempts,
            exchange_accepted: accepted,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
            lost_walkers: w - members.len(),
        });
    }
    let (dos, mask) = merge_windows(layout, &pieces);
    let total_moves = per_rank.iter().flatten().map(|p| p.counts[4]).sum();
    let converged_all = reports.iter().all(|r| r.converged);
    (
        Some(Ok(RewlOutput {
            dos,
            mask,
            windows: reports,
            converged: converged_all,
            sweeps,
            sro: merged_sro,
            total_moves,
            lost_ranks,
            resumed_from: resumed_round,
            // Filled by `run_rewl` from every surviving rank's snapshot.
            telemetry: Vec::new(),
        })),
        rank_tel,
    )
}

/// Snapshot one rank's telemetry, folding in the sampler's acceptance
/// statistics, exchange counters, and (on the cluster driver) the
/// fabric's message-traffic counters. Returns `None` when disabled.
fn snapshot_rank_telemetry(
    tel: &Telemetry,
    rank: usize,
    walker: &WlWalker,
    [exchange_attempts, exchange_accepted, sweeps]: [u64; 3],
    traffic: Option<TrafficSnapshot>,
) -> Option<RankTelemetry> {
    if !tel.is_enabled() {
        return None;
    }
    tel.set_gauge("ln_f", walker.ln_f());
    let mut snap = tel.snapshot(rank);
    for (name, proposed, accepted) in walker.stats().iter() {
        snap.counters.push((format!("proposed_{name}"), proposed));
        snap.counters.push((format!("accepted_{name}"), accepted));
    }
    snap.counters
        .push(("exchange_attempts".into(), exchange_attempts));
    snap.counters
        .push(("exchange_accepted".into(), exchange_accepted));
    snap.counters.push(("sweeps".into(), sweeps));
    if let Some(t) = traffic {
        snap.counters.push(("comm_sends".into(), t.sends));
        snap.counters.push(("comm_send_bytes".into(), t.send_bytes));
        snap.counters.push(("comm_recvs".into(), t.recvs));
        snap.counters.push(("comm_recv_bytes".into(), t.recv_bytes));
        snap.counters.push(("comm_timeouts".into(), t.timeouts));
        snap.counters
            .push(("comm_dead_peer_errors".into(), t.dead_peer_errors));
        snap.counters
            .push(("comm_dropped_sends".into(), t.dropped_sends));
        snap.counters
            .push(("comm_delayed_sends".into(), t.delayed_sends));
    }
    snap.counters.sort();
    Some(snap)
}

/// The initiator ('a') side of one replica-exchange attempt. Returns
/// whether the swap was applied locally. Any comm failure aborts the
/// attempt without touching walker state; the partner, if alive, aborts
/// symmetrically via its own timeouts.
fn exchange_as_initiator(
    comm: &Communicator,
    walker: &mut WlWalker,
    partner: usize,
    round: u64,
    m_species: usize,
) -> Result<bool, CommError> {
    comm.send(
        partner,
        tags::with_round(tags::EXCH_ENERGY, round),
        wire::encode_f64s(&[walker.energy()]),
    );
    let reply_bytes = recv_resilient(comm, partner, tags::with_round(tags::EXCH_REPLY, round))?;
    // reply = [valid, E_b, ln_gB(E_b) - ln_gB(E_a)]
    let reply = wire::decode_f64s(&reply_bytes).unwrap_or_default();
    let mut accepted = false;
    if reply.len() == 3 && reply[0] > 0.5 {
        let e_b = reply[1];
        if let (Some(g_mine), Some(g_at_b)) = (walker.ln_g_at(walker.energy()), walker.ln_g_at(e_b))
        {
            let ln_acc = g_mine - g_at_b + reply[2];
            let u: f64 = rand::RngExt::random(walker.rng_mut());
            accepted = ln_acc >= 0.0 || u < ln_acc.exp();
        }
    }
    comm.send(
        partner,
        tags::with_round(tags::EXCH_DECISION, round),
        vec![u8::from(accepted)],
    );
    if !accepted {
        return Ok(false);
    }
    let mine = wire::encode_state(walker.energy(), walker.config());
    comm.send(partner, tags::with_round(tags::EXCH_CONFIG, round), mine);
    let theirs = recv_resilient(comm, partner, tags::with_round(tags::EXCH_CONFIG, round))?;
    match wire::decode_state(&theirs, m_species) {
        // The accepted partner state must land in this walker's window;
        // a malformed or out-of-window payload voids the swap (the
        // partner may then hold a duplicate of our configuration, which
        // is harmless: any in-window configuration is a valid WL state).
        Ok((e, c)) if walker.ln_g_at(e).is_some() => {
            walker.set_state(c, e);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The responder ('b') side of one replica-exchange attempt.
fn exchange_as_responder(
    comm: &Communicator,
    walker: &mut WlWalker,
    initiator: usize,
    round: u64,
    m_species: usize,
) -> Result<bool, CommError> {
    let e_a_bytes = recv_resilient(comm, initiator, tags::with_round(tags::EXCH_ENERGY, round))?;
    let e_a = wire::decode_f64s(&e_a_bytes)
        .ok()
        .and_then(|v| v.first().copied());
    let reply = match e_a {
        Some(e_a) => match (walker.ln_g_at(e_a), walker.ln_g_at(walker.energy())) {
            (Some(g_at_a), Some(g_at_mine)) => {
                vec![1.0, walker.energy(), g_at_mine - g_at_a]
            }
            _ => vec![0.0, 0.0, 0.0],
        },
        None => vec![0.0, 0.0, 0.0],
    };
    comm.send(
        initiator,
        tags::with_round(tags::EXCH_REPLY, round),
        wire::encode_f64s(&reply),
    );
    let decision = recv_resilient(
        comm,
        initiator,
        tags::with_round(tags::EXCH_DECISION, round),
    )?;
    if decision.first() != Some(&1) {
        return Ok(false);
    }
    // Only the initiator counts the exchange, so window reports read as
    // "attempts toward the next window".
    let mine = wire::encode_state(walker.energy(), walker.config());
    let theirs = recv_resilient(comm, initiator, tags::with_round(tags::EXCH_CONFIG, round))?;
    comm.send(initiator, tags::with_round(tags::EXCH_CONFIG, round), mine);
    match wire::decode_state(&theirs, m_species) {
        Ok((e, c)) if walker.ln_g_at(e).is_some() => {
            walker.set_state(c, e);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// One cluster snapshot: every rank persists its state, then rank 0
/// commits the round by writing the manifest listing who made it. The
/// data-then-commit order means a crash anywhere in here leaves either a
/// complete committed snapshot or garbage no reader will trust.
#[allow(clippy::too_many_arguments)]
fn checkpoint_cluster(
    comm: &Communicator,
    spec: &CheckpointSpec,
    digest: u64,
    round: u64,
    walker: &mut WlWalker,
    deep_state: &Option<DeepState>,
    sro: &MicrocanonicalAccumulator,
    obs_dim: usize,
    [exchange_attempts, exchange_accepted, sweeps, sweeps_since_check]: [u64; 4],
) {
    let rank = comm.rank();
    let (sro_sums, sro_counts) = accumulator_totals(sro, obs_dim);
    let rng_word_pos = walker.rng_mut().get_word_pos();
    let rc = RankCheckpoint {
        exchange_attempts,
        exchange_accepted,
        sweeps,
        sweeps_since_check,
        rng_word_pos,
        deep_params: deep_state.as_ref().map(|ds| ds.deep.net().flatten_params()),
        stats: walker.stats().clone(),
        obs_dim,
        sro_sums,
        sro_counts,
        walker: walker.checkpoint(),
    };
    let wrote = match rc.write(&spec.dir, round, rank) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("rewl: rank {rank}: checkpoint write at round {round} failed: {e}");
            false
        }
    };
    if rank != 0 {
        comm.send(
            0,
            tags::with_round(tags::CKPT_META, round),
            vec![u8::from(wrote)],
        );
        return;
    }
    // Rank 0 commits: collect confirmations, then write the manifest.
    let mut alive = vec![false; comm.size()];
    alive[0] = wrote;
    for (other, made_it) in alive.iter_mut().enumerate().skip(1) {
        if let Ok(meta) = comm.recv_timeout(
            other,
            tags::with_round(tags::CKPT_META, round),
            COLLECT_DEADLINE,
        ) {
            *made_it = meta.first() == Some(&1);
        }
    }
    let manifest = RunManifest {
        round,
        ranks: comm.size(),
        digest,
        alive,
    };
    if let Err(e) = manifest.write(&spec.dir) {
        eprintln!("rewl: manifest write at round {round} failed: {e}");
    }
}

/// Receive one rank's gather contribution, validating every shape; any
/// timeout, dead peer, or malformed payload drops the whole rank.
fn recv_rank_piece(
    comm: &Communicator,
    other: usize,
    window_bins: usize,
    global_bins: usize,
    obs_dim: usize,
) -> Result<(RankPiece, MicrocanonicalAccumulator), String> {
    let grab = |tag: u64| -> Result<Vec<u8>, String> {
        comm.recv_timeout(other, tag, COLLECT_DEADLINE)
            .map_err(|e| e.to_string())
    };
    let ln_g = wire::decode_f64s(&grab(tags::GATHER_LN_G)?).map_err(|e| e.to_string())?;
    let mask = wire::decode_mask(&grab(tags::GATHER_MASK)?);
    let stats_bytes = grab(tags::GATHER_STATS)?;
    let stats_text =
        std::str::from_utf8(&stats_bytes).map_err(|_| "stats not utf-8".to_string())?;
    let stats = deserialize_stats(stats_text)?;
    let counts = wire::decode_u64s(&grab(tags::GATHER_COUNTS)?).map_err(|e| e.to_string())?;
    if ln_g.len() != window_bins || mask.len() != window_bins {
        return Err(format!(
            "piece shape mismatch: {} ln_g / {} mask bins, expected {window_bins}",
            ln_g.len(),
            mask.len()
        ));
    }
    if counts.len() != 5 {
        return Err(format!("counts has {} fields, expected 5", counts.len()));
    }
    let acc = recv_accumulator(comm, other, global_bins, obs_dim)?;
    Ok((
        RankPiece {
            ln_g,
            mask,
            stats,
            counts,
        },
        acc,
    ))
}

/// Average the `ln_g` of a window's walkers after aligning their additive
/// constants on co-visited bins; mask is the union of visited bins.
fn average_window(members: &[&RankPiece]) -> (Vec<f64>, Vec<bool>) {
    let bins = members[0].ln_g.len();
    let reference = members[0];
    let mut sum = vec![0.0f64; bins];
    let mut count = vec![0u32; bins];
    for (mi, piece) in members.iter().enumerate() {
        // Align to the reference on co-visited bins.
        let mut shift = 0.0;
        if mi > 0 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for b in 0..bins {
                if piece.mask[b] && reference.mask[b] {
                    acc += reference.ln_g[b] - piece.ln_g[b];
                    n += 1;
                }
            }
            if n > 0 {
                shift = acc / n as f64;
            }
        }
        for b in 0..bins {
            if piece.mask[b] {
                sum[b] += piece.ln_g[b] + shift;
                count[b] += 1;
            }
        }
    }
    let mask: Vec<bool> = count.iter().map(|&c| c > 0).collect();
    let avg = sum
        .iter()
        .zip(&count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    (avg, mask)
}

fn fill_pair_probabilities(
    config: &Configuration,
    neighbors: &NeighborTable,
    num_shells: usize,
    m: usize,
    out: &mut [f64],
) {
    for shell in 0..num_shells {
        let counts = ordered_pair_counts(config, neighbors, shell, m);
        let total = neighbors.directed_pair_count(shell) as f64;
        for (o, &c) in out[shell * m * m..(shell + 1) * m * m]
            .iter_mut()
            .zip(&counts)
        {
            *o = c as f64 / total;
        }
    }
}

fn serialize_stats(stats: &MoveStats) -> String {
    let mut s = String::new();
    for (name, p, a) in stats.iter() {
        s.push_str(&format!("{name} {p} {a}\n"));
    }
    s
}

fn deserialize_stats(text: &str) -> Result<MoveStats, String> {
    let mut stats = MoveStats::new();
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or("stats line missing kernel name")?;
        let p: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("stats line missing proposed count")?;
        let a: u64 = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or("stats line missing accepted count")?;
        if a > p {
            return Err(format!("{name}: accepted {a} exceeds proposed {p}"));
        }
        stats.record_n(name, p, a);
    }
    Ok(stats)
}

/// Per-bin `(totals, counts)` of an accumulator — the wire/checkpoint
/// representation (means are re-derived from totals on merge).
fn accumulator_totals(acc: &MicrocanonicalAccumulator, obs_dim: usize) -> (Vec<f64>, Vec<u64>) {
    let bins = acc.num_bins();
    let mut sums = Vec::with_capacity(bins * obs_dim);
    let mut counts = Vec::with_capacity(bins);
    for b in 0..bins {
        let c = acc.count(b);
        counts.push(c);
        match acc.bin_mean(b) {
            Some(mean) => sums.extend(mean.iter().map(|&m| m * c as f64)),
            None => sums.extend(std::iter::repeat_n(0.0, obs_dim)),
        }
    }
    (sums, counts)
}

fn send_accumulator(comm: &Communicator, acc: &MicrocanonicalAccumulator, obs_dim: usize) {
    let (sums, counts) = accumulator_totals(acc, obs_dim);
    comm.send(0, tags::GATHER_SRO_SUMS, wire::encode_f64s(&sums));
    comm.send(0, tags::GATHER_SRO_COUNTS, wire::encode_u64s(&counts));
}

fn recv_accumulator(
    comm: &Communicator,
    from: usize,
    bins: usize,
    obs_dim: usize,
) -> Result<MicrocanonicalAccumulator, String> {
    let sums = wire::decode_f64s(
        &comm
            .recv_timeout(from, tags::GATHER_SRO_SUMS, COLLECT_DEADLINE)
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let counts = wire::decode_u64s(
        &comm
            .recv_timeout(from, tags::GATHER_SRO_COUNTS, COLLECT_DEADLINE)
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    if sums.len() != bins * obs_dim || counts.len() != bins {
        return Err(format!(
            "accumulator shape mismatch: {} sums / {} counts for {bins} bins × {obs_dim}",
            sums.len(),
            counts.len()
        ));
    }
    let mut acc = MicrocanonicalAccumulator::new(bins, obs_dim);
    for b in 0..bins {
        acc.record_sum(b, &sums[b * obs_dim..(b + 1) * obs_dim], counts[b]);
    }
    Ok(acc)
}

/// Serial baseline: run each window's walkers one after another (rayon
/// across ranks, but no replica exchange and no weight sync). Useful as an
/// ablation (what replica exchange buys) and as a debugging reference.
///
/// # Errors
/// Never fails today (there is no cluster to lose ranks on); the
/// signature matches [`run_rewl`] so callers can switch drivers freely.
pub fn run_windows_serial<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> Result<RewlOutput, RewlError> {
    use rayon::prelude::*;
    let layout = WindowLayout::new(
        EnergyGrid::new(e_min, e_max, cfg.num_bins),
        cfg.num_windows,
        cfg.overlap,
    );
    let size = cfg.num_windows * cfg.walkers_per_window;
    let m_species = comp.num_species();
    let num_shells = model.num_shells();
    let obs_dim = num_shells * m_species * m_species;

    let per_rank: Vec<_> = (0..size)
        .into_par_iter()
        .map(|rank| {
            let window = rank / cfg.walkers_per_window;
            let grid = layout.window_grid(window);
            let mut rng = rank_rng(cfg.seed, rank as u64);
            let tel = Telemetry::new(cfg.telemetry);
            let deep_state = match &cfg.kernel {
                KernelSpec::Deep(ds) => {
                    let mut deep = DeepProposal::new(m_species, num_shells, &ds.proposal, &mut rng);
                    // Pre-size inference buffers before the sampling loop.
                    deep.warm_up(comp.num_sites());
                    deep.set_telemetry(tel.clone());
                    let lay = deep.layout();
                    let mut trainer = ProposalTrainer::new(lay, ds.trainer.clone());
                    trainer.set_telemetry(tel.clone());
                    Some(DeepState {
                        deep,
                        trainer,
                        buffer: SampleBuffer::new(ds.buffer_capacity),
                        spec: (**ds).clone(),
                    })
                }
                _ => None,
            };
            let mut deep_state = deep_state;
            let config = Configuration::random(comp, &mut rng);
            let kernel = build_kernel(&cfg.kernel, &deep_state);
            let mut walker = WlWalker::new(
                grid,
                cfg.wl.clone(),
                config,
                model,
                neighbors,
                kernel,
                cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            assert!(
                walker.drive_into_window(model, neighbors, 20_000),
                "rank {rank}: failed to reach window {window}"
            );
            walker.set_telemetry(tel.clone());
            let ctx = ProposalContext {
                neighbors,
                composition: comp,
            };
            let mut sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
            let mut obs_buf = vec![0.0f64; obs_dim];
            let mut sweeps = 0u64;
            let mut since_check = 0u64;
            while walker.ln_f() > cfg.wl.ln_f_final && sweeps < cfg.max_sweeps {
                walker.sweep(model, neighbors, &ctx);
                sweeps += 1;
                since_check += 1;
                if since_check >= cfg.wl.sweeps_per_check as u64 {
                    walker.check_and_advance(model, neighbors);
                    since_check = 0;
                }
                if sweeps % cfg.observe_every_sweeps == 0 {
                    if let Some(bin) = layout.global_grid().bin(walker.energy()) {
                        fill_pair_probabilities(
                            walker.config(),
                            neighbors,
                            num_shells,
                            m_species,
                            &mut obs_buf,
                        );
                        sro.record(bin, &obs_buf);
                    }
                }
                if let Some(ds) = deep_state.as_mut() {
                    if sweeps % ds.spec.sample_every_sweeps == 0 {
                        ds.buffer.push(walker.config().clone(), walker.energy());
                    }
                    if sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                        for _ in 0..ds.spec.epochs_per_round {
                            ds.trainer.train_epoch(
                                ds.deep.net_mut(),
                                &ds.buffer,
                                neighbors,
                                walker.rng_mut(),
                            );
                        }
                        walker.set_kernel(build_kernel(&cfg.kernel, &deep_state));
                    }
                }
            }
            let converged = walker.ln_f() <= cfg.wl.ln_f_final;
            let snap = snapshot_rank_telemetry(&tel, rank, &walker, [0, 0, sweeps], None);
            (
                RankPiece {
                    ln_g: walker.dos().ln_g().to_vec(),
                    mask: walker.visited_mask(),
                    stats: walker.stats().clone(),
                    counts: vec![
                        0u64,
                        0,
                        u64::from(converged),
                        walker.ln_f().to_bits(),
                        walker.total_moves(),
                    ],
                },
                sro,
                sweeps,
                snap,
            )
        })
        .collect();

    let mut merged_sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
    for (_, s, _, _) in &per_rank {
        merged_sro.merge(s);
    }
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        let members: Vec<&RankPiece> = per_rank
            [win * cfg.walkers_per_window..(win + 1) * cfg.walkers_per_window]
            .iter()
            .map(|(p, _, _, _)| p)
            .collect();
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        for p in &members {
            stats.merge(&p.stats);
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: 0,
            exchange_accepted: 0,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
            lost_walkers: 0,
        });
    }
    let (dos, mask) = merge_windows(&layout, &pieces);
    let total_moves = per_rank.iter().map(|(p, _, _, _)| p.counts[4]).sum();
    let sweeps = per_rank.iter().map(|(_, _, s, _)| *s).max().unwrap_or(0);
    let telemetry = per_rank.into_iter().filter_map(|(_, _, _, t)| t).collect();
    Ok(RewlOutput {
        dos,
        mask,
        converged: reports.iter().all(|r| r.converged),
        windows: reports,
        sweeps,
        sro: merged_sro,
        total_moves,
        lost_ranks: Vec::new(),
        resumed_from: None,
        telemetry,
    })
}
