//! Byte-level encoding of the messages REWL ranks exchange.
//!
//! Kept deliberately simple (little-endian scalars, length-prefixed
//! vectors) — this plays the role MPI derived datatypes play in the
//! paper's implementation.

use dt_lattice::{Configuration, Species};

/// Encode `(energy, configuration)` for a replica-exchange transfer.
pub fn encode_state(energy: f64, config: &Configuration) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config.num_sites());
    out.extend_from_slice(&energy.to_le_bytes());
    out.extend(config.species().iter().map(|s| s.0));
    out
}

/// Decode a [`encode_state`] payload.
pub fn decode_state(bytes: &[u8], num_species: usize) -> (f64, Configuration) {
    let energy = f64::from_le_bytes(bytes[..8].try_into().expect("energy bytes"));
    let species: Vec<Species> = bytes[8..].iter().map(|&b| Species(b)).collect();
    (energy, Configuration::from_species(species, num_species))
}

/// Encode a vector of `f64`.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_f64s`] payload.
pub fn decode_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "truncated f64 payload");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Encode a vector of `u64`.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_u64s`] payload.
pub fn decode_u64s(bytes: &[u8]) -> Vec<u64> {
    assert_eq!(bytes.len() % 8, 0, "truncated u64 payload");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Encode a bool mask as bytes.
pub fn encode_mask(mask: &[bool]) -> Vec<u8> {
    mask.iter().map(|&b| u8::from(b)).collect()
}

/// Decode a [`encode_mask`] payload.
pub fn decode_mask(bytes: &[u8]) -> Vec<bool> {
    bytes.iter().map(|&b| b != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::Composition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn state_round_trip() {
        let comp = Composition::equiatomic(4, 32).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = Configuration::random(&comp, &mut rng);
        let bytes = encode_state(-1.25, &c);
        let (e, back) = decode_state(&bytes, 4);
        assert_eq!(e, -1.25);
        assert_eq!(back, c);
    }

    #[test]
    fn f64_and_u64_round_trips() {
        let f = vec![1.0, -2.5, f64::MIN_POSITIVE, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&f)), f);
        let u = vec![0u64, 7, u64::MAX];
        assert_eq!(decode_u64s(&encode_u64s(&u)), u);
    }

    #[test]
    fn mask_round_trip() {
        let m = vec![true, false, true, true];
        assert_eq!(decode_mask(&encode_mask(&m)), m);
    }
}
