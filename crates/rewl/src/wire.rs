//! Byte-level encoding of the messages REWL ranks exchange.
//!
//! Kept deliberately simple (little-endian scalars, length-prefixed
//! vectors) — this plays the role MPI derived datatypes play in the
//! paper's implementation.
//!
//! Decoders return [`WireError`] instead of panicking: on a faulty
//! cluster a payload may arrive truncated or be paired with the wrong
//! tag, and a malformed message must surface as a recoverable protocol
//! error on the receiving rank, never abort it.

use std::fmt;

use dt_lattice::{Configuration, Species};
use dt_proposal::MoveStats;
use dt_telemetry::{Phase, PhaseStat, RankTelemetry};

/// A malformed wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload shorter than the fixed-size prefix it must carry.
    Truncated {
        /// Minimum bytes required.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Payload length is not a multiple of the element size.
    Ragged {
        /// Element size in bytes.
        element: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A species label is outside `0..num_species`.
    BadSpecies {
        /// The offending label.
        species: u8,
        /// Number of species in the system.
        num_species: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A phase name does not match any [`Phase`].
    BadPhase,
    /// A shipped walker snapshot failed to decode.
    BadWalker,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated payload: need {needed} bytes, got {got}")
            }
            WireError::Ragged { element, got } => {
                write!(f, "ragged payload: {got} bytes not a multiple of {element}")
            }
            WireError::BadSpecies {
                species,
                num_species,
            } => {
                write!(
                    f,
                    "species {species} out of range (num_species {num_species})"
                )
            }
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadPhase => write!(f, "unknown telemetry phase name"),
            WireError::BadWalker => write!(f, "malformed walker snapshot"),
        }
    }
}

/// Serialize a full walker snapshot for the rebalance reshard (donor →
/// migrant). The checkpoint text format is already versioned and
/// bit-exact, so the wire form is its UTF-8 bytes.
pub fn encode_walker(cp: &dt_wanglandau::WalkerCheckpoint) -> Vec<u8> {
    cp.encode().into_bytes()
}

/// Decode an [`encode_walker`] payload.
///
/// # Errors
/// [`WireError::BadUtf8`] on invalid UTF-8, [`WireError::BadWalker`] when
/// the checkpoint text does not parse.
pub fn decode_walker(bytes: &[u8]) -> Result<dt_wanglandau::WalkerCheckpoint, WireError> {
    let text = std::str::from_utf8(bytes).map_err(|_| WireError::BadUtf8)?;
    dt_wanglandau::WalkerCheckpoint::decode(text).map_err(|_| WireError::BadWalker)
}

impl std::error::Error for WireError {}

/// Encode `(energy, configuration)` for a replica-exchange transfer.
pub fn encode_state(energy: f64, config: &Configuration) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config.num_sites());
    out.extend_from_slice(&energy.to_le_bytes());
    out.extend(config.species().iter().map(|s| s.0));
    out
}

/// Decode a [`encode_state`] payload, validating every species label
/// against `num_species`.
///
/// # Errors
/// [`WireError::Truncated`] when the energy prefix is missing,
/// [`WireError::BadSpecies`] on an out-of-range label.
pub fn decode_state(bytes: &[u8], num_species: usize) -> Result<(f64, Configuration), WireError> {
    if bytes.len() < 8 {
        return Err(WireError::Truncated {
            needed: 8,
            got: bytes.len(),
        });
    }
    let energy = f64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
    let mut species = Vec::with_capacity(bytes.len() - 8);
    for &b in &bytes[8..] {
        if usize::from(b) >= num_species {
            return Err(WireError::BadSpecies {
                species: b,
                num_species,
            });
        }
        species.push(Species(b));
    }
    Ok((energy, Configuration::from_species(species, num_species)))
}

/// Encode a vector of `f64`.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_f64s`] payload.
///
/// # Errors
/// [`WireError::Ragged`] when the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, WireError> {
    if bytes.len() % 8 != 0 {
        return Err(WireError::Ragged {
            element: 8,
            got: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Encode a vector of `u64`.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_u64s`] payload.
///
/// # Errors
/// [`WireError::Ragged`] when the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>, WireError> {
    if bytes.len() % 8 != 0 {
        return Err(WireError::Ragged {
            element: 8,
            got: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Encode a bool mask as bytes.
pub fn encode_mask(mask: &[bool]) -> Vec<u8> {
    mask.iter().map(|&b| u8::from(b)).collect()
}

/// Decode a [`encode_mask`] payload.
pub fn decode_mask(bytes: &[u8]) -> Vec<bool> {
    bytes.iter().map(|&b| b != 0).collect()
}

/// A malformed [`MoveStats`] payload ([`decode_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsWireError {
    /// The payload is not UTF-8 text.
    NotUtf8,
    /// A line is missing one of its three fields, or a count failed to
    /// parse.
    MissingField {
        /// 0-based line index.
        line: usize,
        /// Which field was missing or malformed.
        field: &'static str,
    },
    /// A line claims more accepted than proposed moves.
    AcceptedExceedsProposed {
        /// Kernel name of the offending line.
        kernel: String,
        /// Proposed count.
        proposed: u64,
        /// Accepted count.
        accepted: u64,
    },
}

impl fmt::Display for StatsWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsWireError::NotUtf8 => write!(f, "stats payload is not utf-8"),
            StatsWireError::MissingField { line, field } => {
                write!(f, "stats line {line}: missing or malformed {field}")
            }
            StatsWireError::AcceptedExceedsProposed {
                kernel,
                proposed,
                accepted,
            } => write!(
                f,
                "{kernel}: accepted {accepted} exceeds proposed {proposed}"
            ),
        }
    }
}

impl std::error::Error for StatsWireError {}

/// Encode per-kernel move statistics as newline-separated
/// `name proposed accepted` records.
pub fn encode_stats(stats: &MoveStats) -> Vec<u8> {
    let mut s = String::new();
    for (name, p, a) in stats.iter() {
        s.push_str(&format!("{name} {p} {a}\n"));
    }
    s.into_bytes()
}

/// Decode an [`encode_stats`] payload.
///
/// # Errors
/// [`StatsWireError`] on non-UTF-8 payloads, missing/malformed fields, or
/// an accepted count exceeding its proposed count.
pub fn decode_stats(bytes: &[u8]) -> Result<MoveStats, StatsWireError> {
    let text = std::str::from_utf8(bytes).map_err(|_| StatsWireError::NotUtf8)?;
    let mut stats = MoveStats::new();
    for (line_no, line) in text.lines().enumerate() {
        let mut parts = line.split_whitespace();
        let name = parts.next().ok_or(StatsWireError::MissingField {
            line: line_no,
            field: "kernel name",
        })?;
        let p: u64 =
            parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(StatsWireError::MissingField {
                    line: line_no,
                    field: "proposed count",
                })?;
        let a: u64 =
            parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or(StatsWireError::MissingField {
                    line: line_no,
                    field: "accepted count",
                })?;
        if a > p {
            return Err(StatsWireError::AcceptedExceedsProposed {
                kernel: name.to_string(),
                proposed: p,
                accepted: a,
            });
        }
        stats.record_n(name, p, a);
    }
    Ok(stats)
}

fn push_str_field(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A byte cursor for the length-prefixed telemetry payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                got: self.bytes.len(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str_field(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }
}

/// Encode one rank's telemetry snapshot for a cross-process gather (the
/// TCP backend ships these to rank 0; the thread backend passes them in
/// memory).
pub fn encode_telemetry(tel: &RankTelemetry) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tel.rank as u64).to_le_bytes());
    out.extend_from_slice(&(tel.phases.len() as u32).to_le_bytes());
    for p in &tel.phases {
        push_str_field(&mut out, p.phase.name());
        out.extend_from_slice(&p.total_s.to_le_bytes());
        out.extend_from_slice(&p.count.to_le_bytes());
        out.extend_from_slice(&p.p50_s.to_le_bytes());
        out.extend_from_slice(&p.p99_s.to_le_bytes());
    }
    out.extend_from_slice(&(tel.counters.len() as u32).to_le_bytes());
    for (name, v) in &tel.counters {
        push_str_field(&mut out, name);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(tel.gauges.len() as u32).to_le_bytes());
    for (name, v) in &tel.gauges {
        push_str_field(&mut out, name);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode an [`encode_telemetry`] payload.
///
/// # Errors
/// [`WireError::Truncated`] on short payloads, [`WireError::BadUtf8`] /
/// [`WireError::BadPhase`] on malformed names.
pub fn decode_telemetry(bytes: &[u8]) -> Result<RankTelemetry, WireError> {
    let mut c = Cursor { bytes, pos: 0 };
    let rank = c.u64()? as usize;
    let num_phases = c.u32()? as usize;
    let mut phases = Vec::with_capacity(num_phases.min(64));
    for _ in 0..num_phases {
        let name = c.str_field()?;
        let phase = Phase::from_name(&name).ok_or(WireError::BadPhase)?;
        phases.push(PhaseStat {
            phase,
            total_s: c.f64()?,
            count: c.u64()?,
            p50_s: c.f64()?,
            p99_s: c.f64()?,
        });
    }
    let num_counters = c.u32()? as usize;
    let mut counters = Vec::with_capacity(num_counters.min(64));
    for _ in 0..num_counters {
        let name = c.str_field()?;
        counters.push((name, c.u64()?));
    }
    let num_gauges = c.u32()? as usize;
    let mut gauges = Vec::with_capacity(num_gauges.min(64));
    for _ in 0..num_gauges {
        let name = c.str_field()?;
        gauges.push((name, c.f64()?));
    }
    Ok(RankTelemetry {
        rank,
        phases,
        counters,
        gauges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::Composition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn state_round_trip() {
        let comp = Composition::equiatomic(4, 32).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = Configuration::random(&comp, &mut rng);
        let bytes = encode_state(-1.25, &c);
        let (e, back) = decode_state(&bytes, 4).unwrap();
        assert_eq!(e, -1.25);
        assert_eq!(back, c);
    }

    #[test]
    fn f64_and_u64_round_trips() {
        let f = vec![1.0, -2.5, f64::MIN_POSITIVE, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&f)).unwrap(), f);
        let u = vec![0u64, 7, u64::MAX];
        assert_eq!(decode_u64s(&encode_u64s(&u)).unwrap(), u);
    }

    #[test]
    fn mask_round_trip() {
        let m = vec![true, false, true, true];
        assert_eq!(decode_mask(&encode_mask(&m)), m);
    }

    #[test]
    fn walker_snapshot_round_trips_bit_exact() {
        let cp = dt_wanglandau::WalkerCheckpoint {
            e_min: -2.0,
            e_max: 3.5,
            num_bins: 3,
            ln_g: vec![0.0, 1.25, -7.5e-12],
            visits: vec![4, 0, 9],
            ever_visited: vec![true, false, true],
            species: vec![0, 1, 1, 0],
            num_species: 2,
            energy: 0.625,
            ln_f: 0.125,
            total_moves: 777,
            stages: 4,
            one_over_t_phase: false,
            rt_last_boundary: 1,
            rt_crossings: 3,
            rt_crossing_moves: 250,
            rt_leg_start_moves: 700,
        };
        assert_eq!(decode_walker(&encode_walker(&cp)).unwrap(), cp);
        assert_eq!(decode_walker(&[0xff, 0xfe]), Err(WireError::BadUtf8));
        assert_eq!(decode_walker(b"dtwl v9\n"), Err(WireError::BadWalker));
    }

    #[test]
    fn truncated_state_is_rejected() {
        assert_eq!(
            decode_state(&[0u8; 5], 2),
            Err(WireError::Truncated { needed: 8, got: 5 })
        );
    }

    #[test]
    fn out_of_range_species_is_rejected() {
        let comp = Composition::equiatomic(2, 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = Configuration::random(&comp, &mut rng);
        let mut bytes = encode_state(0.0, &c);
        *bytes.last_mut().unwrap() = 7;
        assert_eq!(
            decode_state(&bytes, 2),
            Err(WireError::BadSpecies {
                species: 7,
                num_species: 2
            })
        );
    }

    #[test]
    fn ragged_vectors_are_rejected() {
        assert_eq!(
            decode_f64s(&[0u8; 12]),
            Err(WireError::Ragged {
                element: 8,
                got: 12
            })
        );
        assert_eq!(
            decode_u64s(&[0u8; 9]),
            Err(WireError::Ragged { element: 8, got: 9 })
        );
    }

    #[test]
    fn stats_reject_invalid_lines() {
        assert_eq!(decode_stats(&[0xff, 0xfe]), Err(StatsWireError::NotUtf8));
        assert_eq!(
            decode_stats(b"swap 3\n"),
            Err(StatsWireError::MissingField {
                line: 0,
                field: "accepted count"
            })
        );
        assert_eq!(
            decode_stats(b"swap three 1\n"),
            Err(StatsWireError::MissingField {
                line: 0,
                field: "proposed count"
            })
        );
        assert_eq!(
            decode_stats(b"swap 2 5\n"),
            Err(StatsWireError::AcceptedExceedsProposed {
                kernel: "swap".into(),
                proposed: 2,
                accepted: 5
            })
        );
    }

    #[test]
    fn telemetry_round_trip() {
        use dt_telemetry::Telemetry;
        let tel = Telemetry::enabled();
        {
            let _s = tel.span(Phase::MoveBatch);
        }
        tel.add("moves", 12);
        tel.set_gauge("ln_f", 0.5);
        let snap = tel.snapshot(3);
        let back = decode_telemetry(&encode_telemetry(&snap)).unwrap();
        assert_eq!(back.rank, snap.rank);
        assert_eq!(back.counters, snap.counters);
        assert_eq!(back.gauges, snap.gauges);
        assert_eq!(back.phases.len(), snap.phases.len());
        for (a, b) in back.phases.iter().zip(&snap.phases) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.count, b.count);
            assert_eq!(a.total_s.to_bits(), b.total_s.to_bits());
        }
    }

    #[test]
    fn truncated_telemetry_is_rejected() {
        let tel = dt_telemetry::Telemetry::enabled();
        let bytes = encode_telemetry(&tel.snapshot(0));
        assert!(matches!(
            decode_telemetry(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated { .. })
        ));
    }
}

#[cfg(test)]
mod stats_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Stats survive the wire bit-exactly for arbitrary kernel names
        /// and counts.
        #[test]
        fn stats_round_trip(
            entries in proptest::collection::vec(
                (proptest::collection::vec(0u8..38, 1..16), 0u64..u64::MAX / 2),
                0..6,
            ),
            accept_frac in proptest::collection::vec(0.0f64..=1.0, 6),
        ) {
            // Kernel names over [a-z0-9_.] (no whitespace — the format is
            // line-oriented), built from digit vectors since the vendored
            // proptest has no regex string strategies.
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_.";
            let mut stats = MoveStats::new();
            for (i, ((name_picks, proposed), frac)) in
                entries.iter().zip(&accept_frac).enumerate()
            {
                let name: String = name_picks
                    .iter()
                    .map(|&p| ALPHABET[p as usize] as char)
                    .collect();
                // Suffix with the index so duplicate names cannot collide.
                let accepted = (*proposed as f64 * frac) as u64;
                stats.record_n(&format!("{name}{i}"), *proposed, accepted.min(*proposed));
            }
            let back = decode_stats(&encode_stats(&stats)).unwrap();
            let a: Vec<(String, u64, u64)> =
                stats.iter().map(|(n, p, c)| (n.to_string(), p, c)).collect();
            let mut b: Vec<(String, u64, u64)> =
                back.iter().map(|(n, p, c)| (n.to_string(), p, c)).collect();
            // MoveStats iteration order is an implementation detail;
            // compare as sets.
            let mut a = a;
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }
}
