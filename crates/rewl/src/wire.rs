//! Byte-level encoding of the messages REWL ranks exchange.
//!
//! Kept deliberately simple (little-endian scalars, length-prefixed
//! vectors) — this plays the role MPI derived datatypes play in the
//! paper's implementation.
//!
//! Decoders return [`WireError`] instead of panicking: on a faulty
//! cluster a payload may arrive truncated or be paired with the wrong
//! tag, and a malformed message must surface as a recoverable protocol
//! error on the receiving rank, never abort it.

use std::fmt;

use dt_lattice::{Configuration, Species};

/// A malformed wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Payload shorter than the fixed-size prefix it must carry.
    Truncated {
        /// Minimum bytes required.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Payload length is not a multiple of the element size.
    Ragged {
        /// Element size in bytes.
        element: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// A species label is outside `0..num_species`.
    BadSpecies {
        /// The offending label.
        species: u8,
        /// Number of species in the system.
        num_species: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated payload: need {needed} bytes, got {got}")
            }
            WireError::Ragged { element, got } => {
                write!(f, "ragged payload: {got} bytes not a multiple of {element}")
            }
            WireError::BadSpecies {
                species,
                num_species,
            } => {
                write!(
                    f,
                    "species {species} out of range (num_species {num_species})"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Encode `(energy, configuration)` for a replica-exchange transfer.
pub fn encode_state(energy: f64, config: &Configuration) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + config.num_sites());
    out.extend_from_slice(&energy.to_le_bytes());
    out.extend(config.species().iter().map(|s| s.0));
    out
}

/// Decode a [`encode_state`] payload, validating every species label
/// against `num_species`.
///
/// # Errors
/// [`WireError::Truncated`] when the energy prefix is missing,
/// [`WireError::BadSpecies`] on an out-of-range label.
pub fn decode_state(bytes: &[u8], num_species: usize) -> Result<(f64, Configuration), WireError> {
    if bytes.len() < 8 {
        return Err(WireError::Truncated {
            needed: 8,
            got: bytes.len(),
        });
    }
    let energy = f64::from_le_bytes(bytes[..8].try_into().expect("checked length"));
    let mut species = Vec::with_capacity(bytes.len() - 8);
    for &b in &bytes[8..] {
        if usize::from(b) >= num_species {
            return Err(WireError::BadSpecies {
                species: b,
                num_species,
            });
        }
        species.push(Species(b));
    }
    Ok((energy, Configuration::from_species(species, num_species)))
}

/// Encode a vector of `f64`.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_f64s`] payload.
///
/// # Errors
/// [`WireError::Ragged`] when the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, WireError> {
    if bytes.len() % 8 != 0 {
        return Err(WireError::Ragged {
            element: 8,
            got: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Encode a vector of `u64`.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a [`encode_u64s`] payload.
///
/// # Errors
/// [`WireError::Ragged`] when the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>, WireError> {
    if bytes.len() % 8 != 0 {
        return Err(WireError::Ragged {
            element: 8,
            got: bytes.len(),
        });
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect())
}

/// Encode a bool mask as bytes.
pub fn encode_mask(mask: &[bool]) -> Vec<u8> {
    mask.iter().map(|&b| u8::from(b)).collect()
}

/// Decode a [`encode_mask`] payload.
pub fn decode_mask(bytes: &[u8]) -> Vec<bool> {
    bytes.iter().map(|&b| b != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::Composition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn state_round_trip() {
        let comp = Composition::equiatomic(4, 32).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = Configuration::random(&comp, &mut rng);
        let bytes = encode_state(-1.25, &c);
        let (e, back) = decode_state(&bytes, 4).unwrap();
        assert_eq!(e, -1.25);
        assert_eq!(back, c);
    }

    #[test]
    fn f64_and_u64_round_trips() {
        let f = vec![1.0, -2.5, f64::MIN_POSITIVE, 1e300];
        assert_eq!(decode_f64s(&encode_f64s(&f)).unwrap(), f);
        let u = vec![0u64, 7, u64::MAX];
        assert_eq!(decode_u64s(&encode_u64s(&u)).unwrap(), u);
    }

    #[test]
    fn mask_round_trip() {
        let m = vec![true, false, true, true];
        assert_eq!(decode_mask(&encode_mask(&m)), m);
    }

    #[test]
    fn truncated_state_is_rejected() {
        assert_eq!(
            decode_state(&[0u8; 5], 2),
            Err(WireError::Truncated { needed: 8, got: 5 })
        );
    }

    #[test]
    fn out_of_range_species_is_rejected() {
        let comp = Composition::equiatomic(2, 16).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = Configuration::random(&comp, &mut rng);
        let mut bytes = encode_state(0.0, &c);
        *bytes.last_mut().unwrap() = 7;
        assert_eq!(
            decode_state(&bytes, 2),
            Err(WireError::BadSpecies {
                species: 7,
                num_species: 2
            })
        );
    }

    #[test]
    fn ragged_vectors_are_rejected() {
        assert_eq!(
            decode_f64s(&[0u8; 12]),
            Err(WireError::Ragged {
                element: 8,
                got: 12
            })
        );
        assert_eq!(
            decode_u64s(&[0u8; 9]),
            Err(WireError::Ragged { element: 8, got: 9 })
        );
    }
}
