//! Dynamic walker reallocation: the rebalance planner.
//!
//! At rebalance rounds every rank ships its walker's round-trip sample
//! (move-count based, so bit-deterministic given the run seed) to rank 0,
//! which scores each window's diffusion speed and plans at most one
//! migration per round: the highest-ranked walker of the fastest window
//! (with ≥ 2 walkers) moves to the slowest window, adopting a copy of the
//! slow window's WL state from that window's lowest-ranked member (the
//! *donor*). The plan is broadcast and applied by every rank in lockstep,
//! keeping the shared rank→window assignment identical everywhere.
//!
//! Wall-clock round-trip times are exported through telemetry only —
//! planning uses move counts exclusively so recovered runs replay the
//! exact same plans.

/// One rank's deterministic round-trip sample (move counts only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtSample {
    /// Completed boundary crossings.
    pub crossings: u64,
    /// Moves spent inside completed crossings.
    pub crossing_moves: u64,
    /// Moves spent in the currently open (incomplete) leg.
    pub pending_moves: u64,
}

/// One planned walker migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// The rank that changes windows.
    pub migrant: usize,
    /// Window it leaves.
    pub from_window: usize,
    /// Window it joins.
    pub to_window: usize,
    /// Member of `to_window` that ships its WL state to the migrant.
    pub donor: usize,
}

/// A slow window must score at least this many times the fastest
/// window's cost before a walker is moved — hysteresis against
/// ping-ponging walkers between statistically even windows.
pub const REBALANCE_RATIO: f64 = 2.0;

/// Estimated diffusion cost of a window in moves-per-crossing: the mean
/// over completed crossings of its sampled members, or — when no member
/// has completed one — the largest open first-passage leg, which is a
/// measured lower bound on the (still unknown) crossing time.
fn window_cost(samples: &[(usize, RtSample)]) -> f64 {
    let crossings: u64 = samples.iter().map(|(_, s)| s.crossings).sum();
    let crossing_moves: u64 = samples.iter().map(|(_, s)| s.crossing_moves).sum();
    if crossings > 0 {
        crossing_moves as f64 / crossings as f64
    } else {
        samples
            .iter()
            .map(|(_, s)| s.pending_moves)
            .max()
            .unwrap_or(0) as f64
    }
}

/// Compute the migration plan for one rebalance round.
///
/// `samples[rank]` is `None` for ranks whose sample did not arrive (dead
/// peers in degraded runs) — those ranks are left untouched. Returns at
/// most one migration; `None` when windows are balanced within
/// [`REBALANCE_RATIO`], the fastest window cannot spare a walker, or
/// fewer than two windows have usable samples.
pub fn plan_rebalance(
    assignment: &[usize],
    num_windows: usize,
    samples: &[Option<RtSample>],
) -> Option<Migration> {
    assert_eq!(assignment.len(), samples.len());
    if num_windows < 2 {
        return None;
    }
    // Sampled members per window, in ascending rank order.
    let mut members: Vec<Vec<(usize, RtSample)>> = vec![Vec::new(); num_windows];
    for (rank, sample) in samples.iter().enumerate() {
        if let Some(s) = sample {
            members[assignment[rank]].push((rank, *s));
        }
    }
    let cost: Vec<Option<f64>> = members
        .iter()
        .map(|m| (!m.is_empty()).then(|| window_cost(m)))
        .collect();
    // Slowest window overall; fastest among windows that can give up a
    // walker without going empty. First index wins ties — deterministic.
    let slow = (0..num_windows)
        .filter(|&w| cost[w].is_some())
        .max_by(|&a, &b| cost[a].partial_cmp(&cost[b]).expect("finite"))?;
    let fast = (0..num_windows)
        .filter(|&w| members[w].len() >= 2 && w != slow)
        .min_by(|&a, &b| cost[a].partial_cmp(&cost[b]).expect("finite"))?;
    let (fast_cost, slow_cost) = (cost[fast].expect("sampled"), cost[slow].expect("sampled"));
    if slow_cost <= REBALANCE_RATIO * fast_cost {
        return None;
    }
    // Move the fast window's highest rank (never its lowest: that keeps
    // retrain-leader and donor identities stable) onto the slow window,
    // seeded from the slow window's lowest-ranked member.
    let migrant = members[fast].last().expect(">= 2 members").0;
    let donor = members[slow].first().expect("sampled").0;
    Some(Migration {
        migrant,
        from_window: fast,
        to_window: slow,
        donor,
    })
}

/// Encode a plan for the broadcast wire message: `[]` for no-op, else
/// `[migrant, from, to, donor]`.
pub fn encode_plan(plan: Option<Migration>) -> Vec<u64> {
    match plan {
        None => Vec::new(),
        Some(m) => vec![
            m.migrant as u64,
            m.from_window as u64,
            m.to_window as u64,
            m.donor as u64,
        ],
    }
}

/// Decode a broadcast plan; malformed payloads read as no-op (the
/// degraded-run policy: an unreadable plan must not kill the rank).
pub fn decode_plan(words: &[u64], num_ranks: usize, num_windows: usize) -> Option<Migration> {
    if words.len() != 4 {
        return None;
    }
    let (migrant, from, to, donor) = (
        words[0] as usize,
        words[1] as usize,
        words[2] as usize,
        words[3] as usize,
    );
    if migrant >= num_ranks || donor >= num_ranks || from >= num_windows || to >= num_windows {
        return None;
    }
    if from == to || migrant == donor {
        return None;
    }
    Some(Migration {
        migrant,
        from_window: from,
        to_window: to,
        donor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(crossings: u64, crossing_moves: u64, pending: u64) -> Option<RtSample> {
        Some(RtSample {
            crossings,
            crossing_moves,
            pending_moves: pending,
        })
    }

    #[test]
    fn moves_walker_from_fast_to_slow_window() {
        // Windows of 2: window 0 crosses every 100 moves, window 2 every
        // 10_000 — far past the ratio, so rank 1 (highest in window 0)
        // must move to window 2, seeded by rank 4 (lowest in window 2).
        let assignment = vec![0, 0, 1, 1, 2, 2];
        let samples = vec![
            s(10, 1_000, 5),
            s(10, 1_000, 9),
            s(8, 4_000, 3),
            s(8, 4_000, 7),
            s(2, 20_000, 100),
            s(2, 20_000, 50),
        ];
        let plan = plan_rebalance(&assignment, 3, &samples).expect("imbalance must trigger");
        assert_eq!(
            plan,
            Migration {
                migrant: 1,
                from_window: 0,
                to_window: 2,
                donor: 4,
            }
        );
    }

    #[test]
    fn balanced_windows_plan_nothing() {
        let assignment = vec![0, 0, 1, 1];
        let samples = vec![s(10, 1_000, 0), s(10, 1_000, 0), s(9, 950, 0), s(9, 950, 0)];
        assert_eq!(plan_rebalance(&assignment, 2, &samples), None);
    }

    #[test]
    fn fast_window_with_one_walker_cannot_donate() {
        // Window 0 is fastest but has a single member; window 1 cannot be
        // both source and destination, so nothing moves.
        let assignment = vec![0, 1, 1];
        let samples = vec![s(10, 100, 0), s(2, 20_000, 0), s(2, 20_000, 0)];
        assert_eq!(plan_rebalance(&assignment, 2, &samples), None);
    }

    #[test]
    fn windows_without_crossings_score_by_pending_leg() {
        // Window 1 never completed a crossing but its open leg is huge —
        // it must be recognized as the slow one.
        let assignment = vec![0, 0, 1, 1];
        let samples = vec![
            s(20, 2_000, 10),
            s(20, 2_000, 4),
            s(0, 0, 90_000),
            s(0, 0, 10),
        ];
        let plan = plan_rebalance(&assignment, 2, &samples).expect("pending leg must count");
        assert_eq!(plan.to_window, 1);
        assert_eq!(plan.migrant, 1);
        assert_eq!(plan.donor, 2);
    }

    #[test]
    fn missing_samples_are_skipped() {
        // Rank 1's sample is lost; window 0 still has one usable sample
        // but can no longer spare a walker (only one *sampled* member).
        let assignment = vec![0, 0, 1, 1];
        let samples = vec![s(10, 100, 0), None, s(1, 50_000, 0), s(1, 50_000, 0)];
        assert_eq!(plan_rebalance(&assignment, 2, &samples), None);
    }

    #[test]
    fn plan_wire_round_trips() {
        let plan = Some(Migration {
            migrant: 3,
            from_window: 1,
            to_window: 0,
            donor: 0,
        });
        assert_eq!(decode_plan(&encode_plan(plan), 4, 2), plan);
        assert_eq!(decode_plan(&encode_plan(None), 4, 2), None);
        // Out-of-range and degenerate payloads read as no-op.
        assert_eq!(decode_plan(&[9, 0, 1, 0], 4, 2), None);
        assert_eq!(decode_plan(&[1, 0, 0, 0], 4, 2), None);
        assert_eq!(decode_plan(&[1, 5, 1, 0], 4, 2), None);
        assert_eq!(decode_plan(&[1, 0], 4, 2), None);
    }
}
