//! Stitching per-window `ln g` pieces into the global density of states.

use dt_wanglandau::DosEstimate;

use crate::windows::WindowLayout;

/// Merge per-window `(ln_g, visited_mask)` pieces into a global DOS.
///
/// Wang–Landau determines `ln g` only up to an additive constant *per
/// window*. Adjacent windows are joined at the overlap bin where their
/// `ln g` slopes (the microcanonical inverse temperature `β(E) =
/// d ln g / dE`) agree best — the standard REWL stitching rule — and the
/// right-hand window is shifted to be continuous there. Left of the join
/// the left window's values are used, right of it the right window's.
///
/// Returns `(global DosEstimate, global visited mask)`.
///
/// # Panics
/// Panics when piece shapes disagree with the layout or when an overlap
/// contains no co-visited interior bins.
pub fn merge_windows(
    layout: &WindowLayout,
    pieces: &[(Vec<f64>, Vec<bool>)],
) -> (DosEstimate, Vec<bool>) {
    assert_eq!(pieces.len(), layout.num_windows(), "piece count mismatch");
    let n = layout.global_grid().num_bins();
    let mut ln_g = vec![f64::NEG_INFINITY; n];
    let mut mask = vec![false; n];

    // Place window 0 as-is.
    {
        let (lo, hi) = layout.bin_range(0);
        let (piece, visited) = &pieces[0];
        assert_eq!(piece.len(), hi - lo, "window 0 size mismatch");
        for (b, (&v, &vis)) in piece.iter().zip(visited).enumerate() {
            if vis {
                ln_g[lo + b] = v;
                mask[lo + b] = true;
            }
        }
    }

    let mut shift = 0.0;
    for w in 1..layout.num_windows() {
        let (lo_prev, hi_prev) = layout.bin_range(w - 1);
        let (lo, hi) = layout.bin_range(w);
        let (piece, visited) = &pieces[w];
        assert_eq!(piece.len(), hi - lo, "window {w} size mismatch");
        let (prev_piece, prev_visited) = &pieces[w - 1];

        // Co-visited overlap bins (sparse spectra leave holes, so no
        // contiguity is assumed).
        let overlap_lo = lo.max(lo_prev);
        let overlap_hi = hi_prev.min(hi);
        let covisited: Vec<usize> = (overlap_lo..overlap_hi)
            .filter(|&g| prev_visited[g - lo_prev] && visited[g - lo])
            .collect();
        assert!(
            !covisited.is_empty(),
            "windows {} and {w} share no co-visited interior bins",
            w - 1
        );

        // Join bin: prefer the slope-matched bin (REWL standard) when
        // enough visited neighbors exist for slope estimates; otherwise
        // the median co-visited bin.
        let mut best: Option<(usize, f64)> = None;
        for &g in &covisited {
            if g == overlap_lo || g + 1 >= overlap_hi {
                continue;
            }
            let pl = g - lo_prev;
            let pr = g - lo;
            let ok =
                prev_visited[pl - 1] && prev_visited[pl + 1] && visited[pr - 1] && visited[pr + 1];
            if !ok {
                continue;
            }
            let slope_prev = (prev_piece[pl + 1] - prev_piece[pl - 1]) / 2.0;
            let slope_cur = (piece[pr + 1] - piece[pr - 1]) / 2.0;
            let diff = (slope_prev - slope_cur).abs();
            if best.is_none_or(|(_, d)| diff < d) {
                best = Some((g, diff));
            }
        }
        let join = best
            .map(|(g, _)| g)
            .unwrap_or_else(|| covisited[covisited.len() / 2]);

        // Continuity shift: robust mean of the per-bin differences over all
        // co-visited overlap bins (prev piece already carries `shift`).
        let mean_diff = covisited
            .iter()
            .map(|&g| prev_piece[g - lo_prev] - piece[g - lo])
            .sum::<f64>()
            / covisited.len() as f64;
        shift += mean_diff;

        for (b, (&v, &vis)) in piece.iter().zip(visited).enumerate() {
            let g = lo + b;
            if vis && g >= join {
                ln_g[g] = v + shift;
                mask[g] = true;
            }
        }
    }

    // Zero unvisited bins for cleanliness (callers must consult the mask).
    for (v, &m) in ln_g.iter_mut().zip(&mask) {
        if !m {
            *v = 0.0;
        }
    }
    (
        DosEstimate::from_parts(layout.global_grid().clone(), ln_g),
        mask,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_wanglandau::EnergyGrid;

    /// Synthetic truth: a smooth `ln g` curve sampled on a global grid,
    /// split into windows with arbitrary per-window offsets. Merging must
    /// recover the truth up to one global constant.
    #[test]
    fn merge_recovers_truth_up_to_constant() {
        let n = 64;
        let grid = EnergyGrid::new(0.0, 1.0, n);
        let truth: Vec<f64> = (0..n)
            .map(|b| {
                let x = (b as f64 + 0.5) / n as f64;
                // Asymmetric dome like a real DOS.
                800.0 * (x * (1.0 - x)).sqrt() + 30.0 * x
            })
            .collect();
        for (m, o) in [(2usize, 0.5), (4, 0.75), (8, 0.5)] {
            let layout = WindowLayout::new(grid.clone(), m, o);
            let pieces: Vec<(Vec<f64>, Vec<bool>)> = (0..m)
                .map(|w| {
                    let (lo, hi) = layout.bin_range(w);
                    let offset = (w as f64 + 1.0) * 1234.5;
                    let vals: Vec<f64> = truth[lo..hi].iter().map(|&v| v + offset).collect();
                    let mask = vec![true; hi - lo];
                    (vals, mask)
                })
                .collect();
            let (merged, mask) = merge_windows(&layout, &pieces);
            assert!(mask.iter().all(|&v| v), "all bins visited");
            let delta = merged.ln_g()[0] - truth[0];
            for (b, &t) in truth.iter().enumerate() {
                assert!(
                    (merged.ln_g()[b] - t - delta).abs() < 1e-9,
                    "bin {b} (m={m}, o={o})"
                );
            }
        }
    }

    #[test]
    fn merge_with_noise_joins_at_best_slope_match() {
        // Add small window-dependent noise: the merged curve should still
        // track the truth to within the noise scale.
        let n = 48;
        let grid = EnergyGrid::new(0.0, 1.0, n);
        let truth: Vec<f64> = (0..n).map(|b| -0.02 * (b as f64 - 30.0).powi(2)).collect();
        let layout = WindowLayout::new(grid, 3, 0.5);
        let pieces: Vec<(Vec<f64>, Vec<bool>)> = (0..3)
            .map(|w| {
                let (lo, hi) = layout.bin_range(w);
                let vals: Vec<f64> = truth[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| v + w as f64 * 55.5 + 0.01 * ((i * 7 + w) % 3) as f64)
                    .collect();
                (vals, vec![true; hi - lo])
            })
            .collect();
        let (merged, _) = merge_windows(&layout, &pieces);
        let delta = merged.ln_g()[0] - truth[0];
        for (b, &t) in truth.iter().enumerate() {
            assert!(
                (merged.ln_g()[b] - t - delta).abs() < 0.1,
                "bin {b}: {} vs {}",
                merged.ln_g()[b] - delta,
                t
            );
        }
    }

    #[test]
    fn unvisited_edges_are_masked_out() {
        let n = 16;
        let grid = EnergyGrid::new(0.0, 1.0, n);
        let layout = WindowLayout::new(grid, 2, 0.5);
        let (lo0, hi0) = layout.bin_range(0);
        let (lo1, hi1) = layout.bin_range(1);
        let mut mask0 = vec![true; hi0 - lo0];
        mask0[0] = false; // unreachable lowest bin
        let piece0: Vec<f64> = (0..hi0 - lo0).map(|i| i as f64).collect();
        let mask1 = vec![true; hi1 - lo1];
        let piece1: Vec<f64> = (0..hi1 - lo1).map(|i| 100.0 + i as f64).collect();
        let (_, mask) = merge_windows(&layout, &[(piece0, mask0), (piece1, mask1)]);
        assert!(!mask[0]);
        assert!(mask[1]);
        assert!(mask[n - 1]);
    }

    #[test]
    #[should_panic(expected = "no co-visited")]
    fn disjoint_visits_panic() {
        let grid = EnergyGrid::new(0.0, 1.0, 16);
        let layout = WindowLayout::new(grid, 2, 0.5);
        let (lo0, hi0) = layout.bin_range(0);
        let (lo1, hi1) = layout.bin_range(1);
        let piece0 = vec![0.0; hi0 - lo0];
        let mut mask0 = vec![true; hi0 - lo0];
        // Previous window never visited the overlap.
        let (olo, ohi) = layout.overlap_range(0);
        for g in olo..ohi {
            mask0[g - lo0] = false;
        }
        let piece1 = vec![0.0; hi1 - lo1];
        let mask1 = vec![true; hi1 - lo1];
        let _ = merge_windows(&layout, &[(piece0, mask0), (piece1, mask1)]);
    }
}
