//! The per-rank REWL engine: one walker's life as an explicit state
//! machine over a pluggable [`Transport`].
//!
//! Each rank's life starts with a one-shot `Rejoin` phase, then steps
//! through the round phases
//!
//! ```text
//! Rejoin → Checkpoint → Sample → Retrain → Exchange → Rebalance → Converge
//!               ↑                                                    │
//!               └──────────────── not converged ─────────────────────┘
//!                                                                    ↓ converged / cap
//!                                                                 Gather
//! ```
//!
//! `Rebalance` is a strict no-op unless [`RewlConfig::rebalance_every`]
//! is set — zero messages, zero RNG draws — so runs without dynamic
//! reallocation are bit-identical to the pre-rebalance protocol.
//!
//! The engine is backend-agnostic: [`crate::run_rewl`] drives it on the
//! in-memory thread fabric, [`crate::run_rewl_on`] on any transport
//! (e.g. TCP worker processes). Phase order, message schedule, and RNG
//! consumption are identical on every backend, so a fault-free run
//! produces bit-identical `ln g` regardless of the wire underneath.
//!
//! With [`RewlConfig::recovery`] set the same state machine self-heals: a
//! killed rank's supervisor respawns it, `Rejoin` restores its collective
//! generation counters from the checkpoint it wrote at the start of its
//! death round, and the replacement replays that round bit-exactly while
//! the survivors' recovery-mode receives wait out (and, where a request
//! died with the victim, retransmit to) the returning peer.

use dt_hamiltonian::EnergyModel;
use dt_hpc::{rank_rng, Communicator, TrafficSnapshot, Transport};
use dt_lattice::{sro::ordered_pair_counts, Composition, Configuration, NeighborTable};
use dt_proposal::{
    DeepProposal, LocalSwap, ProposalContext, ProposalKernel, ProposalMix, ProposalTrainer,
    RandomReassign, SampleBuffer,
};
use dt_telemetry::{adaptive_counters, recovery_counters, Phase, RankTelemetry, Telemetry};
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::WlWalker;

use std::time::{Duration, Instant};

use crate::checkpoint::{CheckpointSpec, RankCheckpoint, ResumePoint, RunManifest};
use crate::driver::{RewlConfig, RewlError, RewlOutput};
use crate::exchange::{
    self, exchange_role, exchange_role_assigned, recv_recovering, recv_resilient, recv_until, tags,
    ExchangeRole, COLLECT_DEADLINE,
};
use crate::gather::{self, accumulator_totals, RankPiece};
use crate::rebalance::{self, Migration, RtSample};
use crate::spec::{DeepSpec, KernelSpec};
use crate::windows::WindowLayout;
use crate::wire;

/// What one rank hands back to its driver: the assembled output (rank 0
/// only, or the error that prevented assembly) plus this rank's telemetry
/// snapshot (when enabled).
pub(crate) type RankReturn = (Option<Result<RewlOutput, RewlError>>, Option<RankTelemetry>);

/// Per-rank deep-proposal state.
pub(crate) struct DeepState {
    pub(crate) deep: DeepProposal,
    pub(crate) trainer: ProposalTrainer,
    pub(crate) buffer: SampleBuffer,
    pub(crate) spec: DeepSpec,
}

pub(crate) fn build_kernel(
    spec: &KernelSpec,
    deep_state: &Option<DeepState>,
) -> Box<dyn ProposalKernel> {
    match spec {
        KernelSpec::LocalSwap => Box::new(LocalSwap::new()),
        KernelSpec::RandomGlobal { k, weight } => Box::new(ProposalMix::new(vec![
            (
                Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                1.0 - weight,
            ),
            (Box::new(RandomReassign::new(*k)), *weight),
        ])),
        KernelSpec::Deep(ds) => {
            let deep = deep_state
                .as_ref()
                .expect("deep state must exist for deep kernels")
                .deep
                .clone();
            Box::new(ProposalMix::new(vec![
                (
                    Box::new(LocalSwap::new()) as Box<dyn ProposalKernel>,
                    1.0 - ds.deep_weight,
                ),
                (Box::new(deep), ds.deep_weight),
            ]))
        }
    }
}

/// Build per-rank deep-proposal state (when the kernel spec asks for it),
/// consuming setup RNG exactly as the walker-construction path expects.
pub(crate) fn init_deep_state(
    kernel: &KernelSpec,
    comp: &Composition,
    num_shells: usize,
    tel: &Telemetry,
    rng: &mut impl rand::Rng,
) -> Option<DeepState> {
    match kernel {
        KernelSpec::Deep(ds) => {
            let mut deep = DeepProposal::new(comp.num_species(), num_shells, &ds.proposal, rng);
            // Pre-size every inference buffer so the sampling loop never
            // allocates on a proposal.
            deep.warm_up(comp.num_sites());
            deep.set_telemetry(tel.clone());
            let layout = deep.layout();
            let mut trainer = ProposalTrainer::new(layout, ds.trainer.clone());
            trainer.set_telemetry(tel.clone());
            Some(DeepState {
                deep,
                trainer,
                buffer: SampleBuffer::new(ds.buffer_capacity),
                spec: (**ds).clone(),
            })
        }
        _ => None,
    }
}

/// Directed pair probabilities `p_s(a,b)` of a configuration, written
/// shell-major into `out` (`len = num_shells · m²`).
pub(crate) fn fill_pair_probabilities(
    config: &Configuration,
    neighbors: &NeighborTable,
    num_shells: usize,
    m: usize,
    out: &mut [f64],
) {
    for shell in 0..num_shells {
        let counts = ordered_pair_counts(config, neighbors, shell, m);
        let total = neighbors.directed_pair_count(shell) as f64;
        for (o, &c) in out[shell * m * m..(shell + 1) * m * m]
            .iter_mut()
            .zip(&counts)
        {
            *o = c as f64 / total;
        }
    }
}

/// Snapshot one rank's telemetry, folding in the sampler's acceptance
/// statistics, exchange counters, self-healing counters, and (on the
/// cluster drivers) the transport's message-traffic counters. Returns
/// `None` when disabled.
pub(crate) fn snapshot_rank_telemetry(
    tel: &Telemetry,
    rank: usize,
    walker: &WlWalker,
    [exchange_attempts, exchange_accepted, sweeps]: [u64; 3],
    [respawns, rejoin_duration_ns, heartbeat_misses]: [u64; 3],
    [round_trips, round_trip_ns, walkers_rebalanced]: [u64; 3],
    traffic: Option<TrafficSnapshot>,
) -> Option<RankTelemetry> {
    if !tel.is_enabled() {
        return None;
    }
    tel.set_gauge("ln_f", walker.ln_f());
    // Achieved proposal-decode batch width: 1 on cluster ranks (one
    // walker per rank today), W under a lockstep multi-walker sweep — a
    // degraded value flags batching lost to e.g. a dead walker.
    tel.set_gauge(
        "proposal_batch_rows",
        walker.kernel().last_batch_rows() as f64,
    );
    let mut snap = tel.snapshot(rank);
    for (name, proposed, accepted) in walker.stats().iter() {
        snap.counters.push((format!("proposed_{name}"), proposed));
        snap.counters.push((format!("accepted_{name}"), accepted));
    }
    snap.counters
        .push(("exchange_attempts".into(), exchange_attempts));
    snap.counters
        .push(("exchange_accepted".into(), exchange_accepted));
    snap.counters.push(("sweeps".into(), sweeps));
    snap.counters
        .push((recovery_counters::RANKS_RESPAWNED.into(), respawns));
    snap.counters.push((
        recovery_counters::REJOIN_DURATION_NS.into(),
        rejoin_duration_ns,
    ));
    snap.counters
        .push((recovery_counters::HEARTBEAT_MISSES.into(), heartbeat_misses));
    snap.counters
        .push((adaptive_counters::ROUND_TRIPS_TOTAL.into(), round_trips));
    snap.counters
        .push((adaptive_counters::ROUND_TRIP_NS.into(), round_trip_ns));
    snap.counters.push((
        adaptive_counters::WALKERS_REBALANCED_TOTAL.into(),
        walkers_rebalanced,
    ));
    if let Some(t) = traffic {
        snap.counters.push(("comm_sends".into(), t.sends));
        snap.counters.push(("comm_send_bytes".into(), t.send_bytes));
        snap.counters.push(("comm_recvs".into(), t.recvs));
        snap.counters.push(("comm_recv_bytes".into(), t.recv_bytes));
        snap.counters.push(("comm_timeouts".into(), t.timeouts));
        snap.counters
            .push(("comm_dead_peer_errors".into(), t.dead_peer_errors));
        snap.counters
            .push(("comm_dropped_sends".into(), t.dropped_sends));
        snap.counters
            .push(("comm_delayed_sends".into(), t.delayed_sends));
    }
    snap.counters.sort();
    Some(snap)
}

/// The phases of one rank's life. `Rejoin` runs exactly once at startup;
/// each round then visits
/// `Checkpoint → Sample → Retrain → Exchange → Rebalance → Converge`;
/// the converge decision loops back or falls through to the terminal
/// `Gather`. `Rebalance` is a strict no-op (no messages, no RNG draws)
/// unless [`RewlConfig::rebalance_every`] is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EnginePhase {
    /// One-shot entry: arm recovery mode, and (for a respawned rank)
    /// restore collective generations from the checkpoint.
    Rejoin,
    /// Cluster snapshot (if due) + fault poll (start of round).
    Checkpoint,
    /// `exchange_every_sweeps` WL sweeps with SRO observation.
    Sample,
    /// Deep-proposal retraining and window-wide weight averaging.
    Retrain,
    /// Replica exchange with the paired rank (if any).
    Exchange,
    /// Dynamic walker reallocation: rank 0 gathers round-trip stats,
    /// plans at most one migration, and broadcasts the plan (rebalance
    /// rounds only).
    Rebalance,
    /// Collective convergence poll; decides loop-back vs gather.
    Converge,
    /// Terminal: ship (or collect) the gather pieces.
    Gather,
}

/// One rank's REWL run as a state machine over an arbitrary transport.
pub(crate) struct RankEngine<'a, M, T: Transport> {
    comm: Communicator<T>,
    model: &'a M,
    neighbors: &'a NeighborTable,
    comp: &'a Composition,
    layout: &'a WindowLayout,
    cfg: &'a RewlConfig,
    digest: u64,
    /// Ship telemetry snapshots over the wire at gather time (multi-
    /// process backends). The thread driver collects snapshots in memory
    /// instead and keeps this off, so its message schedule is unchanged.
    wire_telemetry: bool,

    rank: usize,
    w: usize,
    window: usize,
    m_species: usize,
    num_shells: usize,
    obs_dim: usize,
    global_bins: usize,

    tel: Telemetry,
    deep_state: Option<DeepState>,
    walker: WlWalker,
    sro: MicrocanonicalAccumulator,
    obs_buf: Vec<f64>,
    exchange_attempts: u64,
    exchange_accepted: u64,
    sweeps: u64,
    sweeps_since_check: u64,
    resumed_round: Option<u64>,
    round: u64,
    /// Collective generation counters restored from this rank's
    /// checkpoint (replacement ranks only).
    ckpt_coll_gens: Option<[u64; 3]>,
    /// When this engine was constructed — the respawn-to-rejoin clock.
    started: Instant,
    /// Nanoseconds this (respawned) rank spent restoring state and
    /// rejoining the cluster. Zero on a first life.
    rejoin_duration_ns: u64,
    /// The cluster-wide rank→window assignment. Starts uniform
    /// (`rank / W`) and is mutated in lockstep on every rank by applied
    /// rebalance plans; identical everywhere by construction.
    assignment: Vec<usize>,
    /// Migrations this rank's walker has undergone.
    rebalanced: u64,
    /// Round-trip crossings completed in windows this rank has since
    /// left (banked at migration so cumulative stats survive the reset).
    rt_banked_crossings: u64,
    /// Moves inside those banked crossings.
    rt_banked_moves: u64,
    /// Wall-clock nanoseconds inside banked crossings (telemetry only —
    /// never checkpointed, never planned on).
    rt_banked_ns: u64,
}

impl<'a, M: EnergyModel, T: Transport> RankEngine<'a, M, T> {
    /// Set up this rank's walker (fresh or restored from `resume`),
    /// deep-proposal state, and accumulators. Setup draws from the rank
    /// RNG in a fixed order, so every backend consumes the stream
    /// identically.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        comm: Communicator<T>,
        model: &'a M,
        neighbors: &'a NeighborTable,
        comp: &'a Composition,
        layout: &'a WindowLayout,
        cfg: &'a RewlConfig,
        digest: u64,
        resume: Option<&'a ResumePoint>,
        wire_telemetry: bool,
    ) -> Self {
        let started = Instant::now();
        let rank = comm.rank();
        let w = cfg.walkers_per_window;
        // Rank→window assignment: uniform on a fresh start, or — when
        // this rank's checkpoint recorded one (rebalancing runs only) —
        // the assignment at the snapshot round, which already folds in
        // every migration applied before the checkpoint.
        let resumed_rc = resume.and_then(|rp| rp.ranks[rank].as_ref());
        let assignment: Vec<usize> = resumed_rc
            .map(|rc| rc.assignment.clone())
            .filter(|a| a.len() == comm.size() && a.iter().all(|&win| win < cfg.num_windows))
            .unwrap_or_else(|| (0..comm.size()).map(|r| r / w).collect());
        let window = assignment[rank];
        let m_species = comp.num_species();
        let num_shells = model.num_shells();
        let obs_dim = num_shells * m_species * m_species;
        let grid = layout.window_grid(window);
        let global_bins = layout.global_grid().num_bins();
        let mut rng = rank_rng(cfg.seed, rank as u64);
        let tel = Telemetry::new(cfg.telemetry);

        let mut deep_state = init_deep_state(&cfg.kernel, comp, num_shells, &tel, &mut rng);

        let walker_seed = cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sro = MicrocanonicalAccumulator::new(global_bins, obs_dim);
        let mut exchange_attempts = 0u64;
        let mut exchange_accepted = 0u64;
        let mut sweeps = 0u64;
        let mut sweeps_since_check = 0u64;
        let resumed_round = resume.map(|rp| rp.round);

        // A usable per-rank snapshot must have been taken on the same
        // window grid (the digest guards the config, not the energy range).
        let rank_state = resumed_rc.filter(|rc| {
            rc.walker.num_bins == grid.num_bins()
                && rc.walker.e_min.to_bits() == grid.e_min().to_bits()
                && rc.walker.e_max.to_bits() == grid.e_max().to_bits()
        });
        let ckpt_coll_gens = rank_state.map(|rc| rc.coll_gens);
        let (rebalanced, rt_banked_crossings, rt_banked_moves) = rank_state
            .map(|rc| (rc.rebalanced, rc.rt_banked_crossings, rc.rt_banked_moves))
            .unwrap_or((0, 0, 0));

        let mut walker = match rank_state {
            Some(rc) => {
                // Restore the deep net BEFORE building the kernel so the
                // walker samples with the trained weights. (The deep
                // sample buffer is not persisted; it refills during
                // sampling.)
                if let (Some(ds), Some(params)) = (deep_state.as_mut(), rc.deep_params.as_ref()) {
                    ds.deep.net_mut().set_params(params);
                }
                let kernel = build_kernel(&cfg.kernel, &deep_state);
                let mut walker =
                    WlWalker::from_checkpoint(&rc.walker, cfg.wl.clone(), kernel, walker_seed);
                // Same seed + saved stream position ⇒ the RNG continues
                // bit-exactly where the snapshot left off.
                walker.rng_mut().set_word_pos(rc.rng_word_pos);
                walker.set_stats(rc.stats.clone());
                exchange_attempts = rc.exchange_attempts;
                exchange_accepted = rc.exchange_accepted;
                sweeps = rc.sweeps;
                sweeps_since_check = rc.sweeps_since_check;
                if rc.obs_dim == obs_dim
                    && rc.sro_counts.len() == global_bins
                    && rc.sro_sums.len() == global_bins * obs_dim
                {
                    for b in 0..global_bins {
                        sro.record_sum(
                            b,
                            &rc.sro_sums[b * obs_dim..(b + 1) * obs_dim],
                            rc.sro_counts[b],
                        );
                    }
                }
                walker
            }
            None => {
                let config = Configuration::random(comp, &mut rng);
                let kernel = build_kernel(&cfg.kernel, &deep_state);
                let mut walker = WlWalker::new(
                    grid,
                    cfg.wl.clone(),
                    config,
                    model,
                    neighbors,
                    kernel,
                    walker_seed,
                );
                assert!(
                    walker.drive_into_window(model, neighbors, 20_000),
                    "rank {rank}: failed to reach window {window} {:?}",
                    layout.bin_range(window)
                );
                walker
            }
        };
        walker.set_telemetry(tel.clone());

        RankEngine {
            comm,
            model,
            neighbors,
            comp,
            layout,
            cfg,
            digest,
            wire_telemetry,
            rank,
            w,
            window,
            m_species,
            num_shells,
            obs_dim,
            global_bins,
            tel,
            deep_state,
            walker,
            sro,
            obs_buf: vec![0.0f64; obs_dim],
            exchange_attempts,
            exchange_accepted,
            sweeps,
            sweeps_since_check,
            resumed_round,
            round: resumed_round.unwrap_or(0),
            ckpt_coll_gens,
            started,
            rejoin_duration_ns: 0,
            assignment,
            rebalanced,
            rt_banked_crossings,
            rt_banked_moves,
            rt_banked_ns: 0,
        }
    }

    /// Drive the state machine to completion.
    pub(crate) fn run(mut self) -> RankReturn {
        let mut phase = EnginePhase::Rejoin;
        loop {
            phase = match phase {
                EnginePhase::Rejoin => self.phase_rejoin(),
                EnginePhase::Checkpoint => self.phase_checkpoint(),
                EnginePhase::Sample => self.phase_sample(),
                EnginePhase::Retrain => self.phase_retrain(),
                EnginePhase::Exchange => self.phase_exchange(),
                EnginePhase::Rebalance => self.phase_rebalance(),
                EnginePhase::Converge => self.phase_converge(),
                EnginePhase::Gather => return self.phase_gather(),
            };
        }
    }

    /// One-shot entry phase. A first life falls straight through; under
    /// recovery it also arms the transport's recovery mode (dead peers
    /// are waited out, not written off) and heartbeat-based liveness. A
    /// respawned rank additionally restores its collective generation
    /// counters from the checkpoint, so its next barrier/allreduce/
    /// broadcast joins exactly the generation the survivors are parked
    /// in.
    fn phase_rejoin(&mut self) -> EnginePhase {
        if self.cfg.recovery {
            self.comm.set_recovery(true);
            self.comm
                .start_heartbeats(Duration::from_millis(250), Duration::from_secs(5));
        }
        if self.cfg.respawns > 0 {
            if let Some(gens) = self.ckpt_coll_gens {
                self.comm.set_collective_generations(gens);
            }
            self.rejoin_duration_ns = self.started.elapsed().as_nanos() as u64;
            eprintln!(
                "rewl: rank {} rejoined at round {} (respawn #{}, {:.1} ms)",
                self.rank,
                self.round,
                self.cfg.respawns,
                self.rejoin_duration_ns as f64 / 1e6,
            );
        }
        EnginePhase::Checkpoint
    }

    /// Start of round: the periodic cluster snapshot (if due), THEN the
    /// fault poll. Snapshot-before-kill means an injected death always
    /// leaves an exact on-disk image of its own round, which is what a
    /// replacement rank resumes from; under recovery the cadence is
    /// forced to every round for the same reason. (Checkpoint writes
    /// consume no walker RNG, so the extra snapshots cannot perturb the
    /// stream.)
    fn phase_checkpoint(&mut self) -> EnginePhase {
        let cfg = self.cfg;
        if let Some(spec) = cfg.checkpoint.as_ref() {
            let every = if cfg.recovery { 1 } else { spec.every_rounds };
            if self.round > 0 && self.round % every == 0 && Some(self.round) != self.resumed_round {
                let tel = self.tel.clone();
                let _span = tel.span(Phase::Checkpoint);
                self.checkpoint_cluster(spec);
            }
        }
        self.comm.poll_faults(self.round);
        EnginePhase::Sample
    }

    /// `exchange_every_sweeps` WL sweeps, with flatness checks, SRO
    /// observations, and deep-sample collection on their own cadences.
    /// Sweeps draw proposals through the batch-first `propose_batch`
    /// surface (each rank hosts one walker, so the achieved batch is 1;
    /// the `proposal_batch_rows` gauge records it per snapshot).
    fn phase_sample(&mut self) -> EnginePhase {
        let ctx = ProposalContext {
            neighbors: self.neighbors,
            composition: self.comp,
        };
        for _ in 0..self.cfg.exchange_every_sweeps {
            self.walker.sweep(self.model, self.neighbors, &ctx);
            self.sweeps += 1;
            self.sweeps_since_check += 1;
            if self.sweeps_since_check >= self.cfg.wl.sweeps_per_check as u64 {
                self.walker.check_and_advance(self.model, self.neighbors);
                self.sweeps_since_check = 0;
            }
            if self.sweeps % self.cfg.observe_every_sweeps == 0 {
                if let Some(bin) = self.layout.global_grid().bin(self.walker.energy()) {
                    fill_pair_probabilities(
                        self.walker.config(),
                        self.neighbors,
                        self.num_shells,
                        self.m_species,
                        &mut self.obs_buf,
                    );
                    self.sro.record(bin, &self.obs_buf);
                }
            }
            if let Some(ds) = self.deep_state.as_mut() {
                if self.sweeps % ds.spec.sample_every_sweeps == 0 {
                    ds.buffer
                        .push(self.walker.config().clone(), self.walker.energy());
                }
            }
        }
        EnginePhase::Retrain
    }

    /// Deep retraining plus window-wide weight averaging (simulated
    /// allreduce). The leader slot is fixed (first rank of the window):
    /// if the leader is dead the window skips syncing and every walker
    /// keeps local weights; if a member is dead (or its message lost)
    /// the leader averages over whatever arrived. A fixed leader cannot
    /// race the failure detector the way electing "first live rank"
    /// would.
    fn phase_retrain(&mut self) -> EnginePhase {
        let mut kernel_dirty = false;
        if let Some(ds) = self.deep_state.as_mut() {
            if self.sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                for _ in 0..ds.spec.epochs_per_round {
                    ds.trainer.train_epoch(
                        ds.deep.net_mut(),
                        &ds.buffer,
                        self.neighbors,
                        self.walker.rng_mut(),
                    );
                }
                kernel_dirty = true;
            }
        }
        // Members of this window in ascending rank order; the leader is
        // the lowest rank. Under the uniform assignment this is exactly
        // the classic `window·W .. (window+1)·W` block with leader
        // `window·W`, so the message schedule is unchanged; after a
        // rebalance it follows the walkers to their new windows.
        let peers = self.window_peers();
        let leader = peers[0];
        if let Some(ds) = self.deep_state.as_mut() {
            if ds.spec.sync_weights && peers.len() > 1 {
                let _span = self.tel.span(Phase::Allreduce);
                let recovery = self.cfg.recovery;
                let params = ds.deep.net().flatten_params();
                if self.rank == leader {
                    let mut acc = params.clone();
                    let mut contributors = 1.0f64;
                    for &other in &peers[1..] {
                        let tag = tags::with_round(tags::SYNC_PARAMS, self.round);
                        // Under recovery a dead member is only
                        // *temporarily* absent: its replacement replays
                        // this round and sends its weights when it gets
                        // here, so wait instead of skipping. (Nothing to
                        // retransmit — the leader hasn't sent yet.)
                        let got = if recovery {
                            recv_recovering(&self.comm, other, tag, || {}).ok()
                        } else if self.comm.is_alive(other) {
                            recv_resilient(&self.comm, other, tag).ok()
                        } else {
                            None
                        }
                        .and_then(|bytes| wire::decode_f64s(&bytes).ok());
                        match got {
                            Some(theirs) if theirs.len() == acc.len() => {
                                for (a, b) in acc.iter_mut().zip(theirs) {
                                    *a += b;
                                }
                                contributors += 1.0;
                            }
                            _ => {}
                        }
                    }
                    for a in &mut acc {
                        *a /= contributors;
                    }
                    let payload = wire::encode_f64s(&acc);
                    for &other in &peers[1..] {
                        self.comm.send(
                            other,
                            tags::with_round(tags::SYNC_PARAMS_BACK, self.round),
                            payload.clone(),
                        );
                    }
                    ds.deep.net_mut().set_params(&acc);
                } else if recovery || self.comm.is_alive(leader) {
                    let params_tag = tags::with_round(tags::SYNC_PARAMS, self.round);
                    let payload = wire::encode_f64s(&params);
                    self.comm.send(leader, params_tag, payload.clone());
                    let back_tag = tags::with_round(tags::SYNC_PARAMS_BACK, self.round);
                    // If the leader died after our send, the weights died
                    // with it — retransmit them for its replacement.
                    let avg = if recovery {
                        recv_recovering(&self.comm, leader, back_tag, || {
                            self.comm.send(leader, params_tag, payload.clone());
                        })
                        .ok()
                    } else {
                        recv_resilient(&self.comm, leader, back_tag).ok()
                    }
                    .and_then(|bytes| wire::decode_f64s(&bytes).ok());
                    if let Some(avg) = avg {
                        if avg.len() == params.len() {
                            ds.deep.net_mut().set_params(&avg);
                        }
                    }
                }
                kernel_dirty = true;
            }
        }
        if kernel_dirty {
            self.walker
                .set_kernel(build_kernel(&self.cfg.kernel, &self.deep_state));
        }
        EnginePhase::Exchange
    }

    /// Replica exchange with this round's paired rank, if the pairing
    /// function names one and it is alive. Dead partners are skipped
    /// outright; a partner that dies mid-protocol surfaces as a bounded
    /// comm error inside the handshake and voids the attempt.
    fn phase_exchange(&mut self) -> EnginePhase {
        // Under recovery a dead partner is only temporarily absent (its
        // replacement replays this round), so the attempt proceeds and
        // waits the partner out instead of being skipped.
        let recovery = self.cfg.recovery;
        // The assignment-aware pairing reduces exactly to the classic
        // one for the uniform assignment, but the classic function stays
        // the default so non-rebalancing runs share zero code with the
        // adaptive path.
        let role = if self.cfg.rebalance_every > 0 {
            exchange_role_assigned(
                self.rank,
                self.round,
                &self.assignment,
                self.cfg.num_windows,
            )
        } else {
            exchange_role(self.rank, self.round, self.w, self.cfg.num_windows)
        };
        match role {
            ExchangeRole::Initiator { partner } => {
                if recovery || self.comm.is_alive(partner) {
                    let _span = self.tel.span(Phase::Exchange);
                    self.exchange_attempts += 1;
                    match exchange::exchange_as_initiator(
                        &self.comm,
                        &mut self.walker,
                        partner,
                        self.round,
                        self.m_species,
                        recovery,
                    ) {
                        Ok(true) => self.exchange_accepted += 1,
                        Ok(false) => {}
                        // Lost partner or lost message: abandon this
                        // exchange, keep local state, carry on.
                        Err(_) => {}
                    }
                }
            }
            ExchangeRole::Responder { initiator } => {
                if recovery || self.comm.is_alive(initiator) {
                    let _span = self.tel.span(Phase::Exchange);
                    let _ = exchange::exchange_as_responder(
                        &self.comm,
                        &mut self.walker,
                        initiator,
                        self.round,
                        self.m_species,
                        recovery,
                    );
                }
            }
            ExchangeRole::Idle => {}
        }
        EnginePhase::Rebalance
    }

    /// Ranks currently assigned to this rank's window, ascending.
    fn window_peers(&self) -> Vec<usize> {
        (0..self.comm.size())
            .filter(|&r| self.assignment[r] == self.window)
            .collect()
    }

    /// Dynamic walker reallocation. On rebalance rounds every rank ships
    /// its walker's round-trip sample (move counts only — deterministic)
    /// to rank 0, which plans at most one fast→slow migration and
    /// broadcasts it; every rank applies the plan in lockstep so the
    /// shared assignment never diverges. When `rebalance_every` is 0 the
    /// phase is a strict no-op: no messages, no RNG draws — the protocol
    /// (and every golden fingerprint) is bit-identical to a build without
    /// this phase.
    fn phase_rebalance(&mut self) -> EnginePhase {
        let every = self.cfg.rebalance_every;
        if every == 0 || (self.round + 1) % every != 0 {
            return EnginePhase::Converge;
        }
        let recovery = self.cfg.recovery;
        let rt = self.walker.round_trip_stats();
        let sample = [rt.crossings, rt.crossing_moves, rt.pending_moves];
        let plan = if self.rank == 0 {
            let mut samples: Vec<Option<RtSample>> = vec![None; self.comm.size()];
            samples[0] = Some(RtSample {
                crossings: sample[0],
                crossing_moves: sample[1],
                pending_moves: sample[2],
            });
            // One shared deadline bounds the whole collection; a missing
            // sample just exempts that rank from this round's plan.
            let deadline = Instant::now() + COLLECT_DEADLINE;
            for (other, slot) in samples.iter_mut().enumerate().skip(1) {
                if let Ok(bytes) = recv_until(
                    &self.comm,
                    other,
                    tags::with_round(tags::RT_STATS, self.round),
                    deadline,
                    recovery,
                ) {
                    if let Ok(vals) = wire::decode_u64s(&bytes) {
                        if vals.len() == 3 {
                            *slot = Some(RtSample {
                                crossings: vals[0],
                                crossing_moves: vals[1],
                                pending_moves: vals[2],
                            });
                        }
                    }
                }
            }
            let plan = rebalance::plan_rebalance(&self.assignment, self.cfg.num_windows, &samples);
            let payload = wire::encode_u64s(&rebalance::encode_plan(plan));
            for other in 1..self.comm.size() {
                self.comm.send(
                    other,
                    tags::with_round(tags::REBALANCE_PLAN, self.round),
                    payload.clone(),
                );
            }
            plan
        } else {
            let stats_tag = tags::with_round(tags::RT_STATS, self.round);
            let payload = wire::encode_u64s(&sample);
            self.comm.send(0, stats_tag, payload.clone());
            let plan_tag = tags::with_round(tags::REBALANCE_PLAN, self.round);
            // If rank 0 died after our send, the sample died with it —
            // retransmit for its replacement.
            let got = if recovery {
                recv_recovering(&self.comm, 0, plan_tag, || {
                    self.comm.send(0, stats_tag, payload.clone());
                })
                .ok()
            } else {
                recv_resilient(&self.comm, 0, plan_tag).ok()
            };
            // A lost or malformed plan reads as no-op for THIS rank only;
            // the resulting assignment skew degrades future exchanges
            // into timeouts (bounded), never a hang — same policy as a
            // lost exchange message.
            got.and_then(|bytes| wire::decode_u64s(&bytes).ok())
                .and_then(|words| {
                    rebalance::decode_plan(&words, self.comm.size(), self.cfg.num_windows)
                })
        };
        if let Some(m) = plan {
            self.apply_rebalance(m);
        }
        EnginePhase::Converge
    }

    /// Apply one broadcast migration on every rank in lockstep: the
    /// donor ships its full WL state to the migrant, the migrant adopts
    /// it (keeping its OWN RNG stream and move counters), and everyone
    /// updates the shared assignment.
    fn apply_rebalance(&mut self, m: Migration) {
        let tag = tags::with_round(tags::REBALANCE_STATE, self.round);
        if self.rank == m.donor {
            self.comm.send(
                m.migrant,
                tag,
                wire::encode_walker(&self.walker.checkpoint()),
            );
        }
        if self.rank == m.migrant {
            let recovery = self.cfg.recovery;
            let got = if recovery {
                recv_recovering(&self.comm, m.donor, tag, || {}).ok()
            } else {
                recv_resilient(&self.comm, m.donor, tag).ok()
            };
            match got.and_then(|bytes| wire::decode_walker(&bytes).ok()) {
                Some(cp) => self.adopt_window(m.to_window, cp),
                // Donor state never arrived (degraded run): re-enter the
                // target window from our own configuration so the walker
                // grid still matches the assignment everyone else holds.
                None => self.rewindow(m.to_window),
            }
        }
        self.assignment[m.migrant] = m.to_window;
        if self.rank == m.migrant {
            self.window = m.to_window;
        }
    }

    /// Adopt a donor's WL state on the target window. The migrant keeps
    /// its own identity: RNG seed and stream position, cumulative move
    /// count, and proposal statistics stay local — only the WL estimator
    /// state (configuration, energy, `ln g`, histogram, `ln f` schedule)
    /// is copied. Round-trip counters reset; the old window's totals are
    /// banked for cumulative telemetry.
    fn adopt_window(&mut self, to_window: usize, mut cp: dt_wanglandau::WalkerCheckpoint) {
        let grid = self.layout.window_grid(to_window);
        if cp.num_bins != grid.num_bins()
            || cp.e_min.to_bits() != grid.e_min().to_bits()
            || cp.e_max.to_bits() != grid.e_max().to_bits()
        {
            // A donor on the wrong grid means the plan and our layout
            // disagree (possible only in degraded runs) — fall back.
            return self.rewindow(to_window);
        }
        let old_rt = self.walker.round_trip_stats();
        self.rt_banked_crossings += old_rt.crossings;
        self.rt_banked_moves += old_rt.crossing_moves;
        self.rt_banked_ns += old_rt.crossing_ns;
        let word_pos = self.walker.rng_mut().get_word_pos();
        let stats = self.walker.stats().clone();
        cp.total_moves = self.walker.total_moves();
        cp.rt_last_boundary = 0;
        cp.rt_crossings = 0;
        cp.rt_crossing_moves = 0;
        cp.rt_leg_start_moves = cp.total_moves;
        let walker_seed = self.cfg.seed ^ (self.rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let kernel = build_kernel(&self.cfg.kernel, &self.deep_state);
        let mut walker = WlWalker::from_checkpoint(&cp, self.cfg.wl.clone(), kernel, walker_seed);
        walker.rng_mut().set_word_pos(word_pos);
        walker.set_stats(stats);
        walker.set_telemetry(self.tel.clone());
        self.walker = walker;
        self.rebalanced += 1;
    }

    /// Degraded-path migration: no donor state, so rebuild the walker on
    /// the target window from its current configuration and walk it in.
    /// Loses the WL histogram (a fresh estimator) but keeps the cluster's
    /// assignment consistent; only reachable when messages are being
    /// lost, where bit-reproducibility is already forfeit.
    fn rewindow(&mut self, to_window: usize) {
        let grid = self.layout.window_grid(to_window);
        let old_rt = self.walker.round_trip_stats();
        self.rt_banked_crossings += old_rt.crossings;
        self.rt_banked_moves += old_rt.crossing_moves;
        self.rt_banked_ns += old_rt.crossing_ns;
        let word_pos = self.walker.rng_mut().get_word_pos();
        let stats = self.walker.stats().clone();
        let walker_seed = self.cfg.seed ^ (self.rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let kernel = build_kernel(&self.cfg.kernel, &self.deep_state);
        let mut walker = WlWalker::new(
            grid,
            self.cfg.wl.clone(),
            self.walker.config().clone(),
            self.model,
            self.neighbors,
            kernel,
            walker_seed,
        );
        walker.rng_mut().set_word_pos(word_pos);
        let _ = walker.drive_into_window(self.model, self.neighbors, 20_000);
        walker.set_stats(stats);
        walker.set_telemetry(self.tel.clone());
        self.walker = walker;
        self.rebalanced += 1;
    }

    /// Collective convergence poll. All survivors of one allreduce
    /// generation see identical sums, so the stop decision is collective
    /// and no rank can exit the round loop while a peer keeps waiting
    /// for it: `[Σ converged, Σ 1 (= contributors), Σ hit-sweep-cap]`.
    fn phase_converge(&mut self) -> EnginePhase {
        let mut flags = [
            f64::from(u8::from(self.walker.ln_f() <= self.cfg.wl.ln_f_final)),
            1.0,
            f64::from(u8::from(self.sweeps >= self.cfg.max_sweeps)),
        ];
        let reduced = {
            let _span = self.tel.span(Phase::Allreduce);
            self.comm.allreduce_sum(&mut flags)
        };
        if reduced.is_err() {
            // The collective coordinator died. No collective decision is
            // possible any more; fall through to the gather (sends to a
            // dead rank 0 are discarded harmlessly).
            return EnginePhase::Gather;
        }
        self.round += 1;
        let contributors = flags[1].round() as usize;
        if flags[0].round() as usize >= contributors || flags[2] > 0.5 {
            EnginePhase::Gather
        } else {
            EnginePhase::Checkpoint
        }
    }

    /// Terminal phase: non-root ranks ship their piece to rank 0; rank 0
    /// collects every survivor, merges, and assembles the output.
    fn phase_gather(mut self) -> RankReturn {
        let converged = self.walker.ln_f() <= self.cfg.wl.ln_f_final;
        let rt = self.walker.round_trip_stats();
        let counts = vec![
            self.exchange_attempts,
            self.exchange_accepted,
            u64::from(converged),
            self.walker.ln_f().to_bits(),
            self.walker.total_moves(),
            self.cfg.respawns,
            self.rejoin_duration_ns,
            self.comm.heartbeat_misses(),
            (self.rt_banked_crossings + rt.crossings) / 2,
            self.rt_banked_moves + rt.crossing_moves,
            self.rebalanced,
        ];
        let wire_tel = self.wire_telemetry && self.tel.is_enabled();
        if self.rank != 0 {
            {
                let _span = self.tel.span(Phase::Gather);
                gather::send_piece(&self.comm, &self.walker, &counts, &self.sro, self.obs_dim);
            }
            let snap = self.snapshot();
            if wire_tel {
                if let Some(snap) = snap.as_ref() {
                    self.comm
                        .send(0, tags::GATHER_TELEMETRY, wire::encode_telemetry(snap));
                }
            }
            return (None, snap);
        }

        // Rank 0: collect every surviving rank (including itself). A rank
        // that died (or whose payload is missing/corrupt) is dropped from
        // the merge and recorded as lost.
        let mut per_rank: Vec<Option<RankPiece>> = Vec::with_capacity(self.comm.size());
        per_rank.push(Some(RankPiece::from_walker(&self.walker, counts)));
        let mut merged_sro = std::mem::replace(&mut self.sro, MicrocanonicalAccumulator::new(1, 1));
        let mut lost_ranks = Vec::new();
        // ONE deadline bounds the whole collection: every peer is at (or
        // past) the gather already, so their payloads race each other,
        // not the clock — a flat per-message timeout would overshoot by
        // ranks × timeout when many peers are lost at once.
        let deadline = Instant::now() + COLLECT_DEADLINE;
        {
            let _span = self.tel.span(Phase::Gather);
            for other in 1..self.comm.size() {
                let (lo, hi) = self.layout.bin_range(self.assignment[other]);
                match gather::recv_rank_piece(
                    &self.comm,
                    other,
                    hi - lo,
                    self.global_bins,
                    self.obs_dim,
                    deadline,
                    self.cfg.recovery,
                ) {
                    Ok((piece, acc)) => {
                        merged_sro.merge(&acc);
                        per_rank.push(Some(piece));
                    }
                    Err(why) => {
                        eprintln!("rewl: dropping rank {other} from the gather: {why}");
                        per_rank.push(None);
                        lost_ranks.push(other);
                    }
                }
            }
        }
        let rank_tel = self.snapshot();
        // Multi-process backends gather telemetry over the wire (the
        // thread driver collects the in-memory snapshots instead).
        let mut telemetry = Vec::new();
        if wire_tel {
            telemetry.extend(rank_tel.clone());
            for (other, piece) in per_rank.iter().enumerate().skip(1) {
                if piece.is_none() {
                    continue;
                }
                if let Ok(bytes) = recv_until(
                    &self.comm,
                    other,
                    tags::GATHER_TELEMETRY,
                    deadline,
                    self.cfg.recovery,
                ) {
                    if let Ok(snap) = wire::decode_telemetry(&bytes) {
                        telemetry.push(snap);
                    }
                }
            }
        }
        let result = gather::assemble_output(
            self.layout,
            self.cfg,
            &self.assignment,
            &per_rank,
            merged_sro,
            lost_ranks,
            self.sweeps,
            self.resumed_round,
            telemetry,
        );
        (Some(result), rank_tel)
    }

    fn snapshot(&self) -> Option<RankTelemetry> {
        let rt = self.walker.round_trip_stats();
        snapshot_rank_telemetry(
            &self.tel,
            self.rank,
            &self.walker,
            [self.exchange_attempts, self.exchange_accepted, self.sweeps],
            [
                self.cfg.respawns,
                self.rejoin_duration_ns,
                self.comm.heartbeat_misses(),
            ],
            [
                (self.rt_banked_crossings + rt.crossings) / 2,
                self.rt_banked_ns + rt.crossing_ns,
                self.rebalanced,
            ],
            Some(self.comm.traffic()),
        )
    }

    /// One cluster snapshot: every rank persists its state, then rank 0
    /// commits the round by writing the manifest listing who made it. The
    /// data-then-commit order means a crash anywhere in here leaves
    /// either a complete committed snapshot or garbage no reader will
    /// trust.
    fn checkpoint_cluster(&mut self, spec: &CheckpointSpec) {
        let round = self.round;
        let (sro_sums, sro_counts) = accumulator_totals(&self.sro, self.obs_dim);
        let rng_word_pos = self.walker.rng_mut().get_word_pos();
        // Rebalance state is persisted only on rebalancing runs so
        // non-adaptive checkpoint files stay byte-identical.
        let rebalancing = self.cfg.rebalance_every > 0;
        let rc = RankCheckpoint {
            exchange_attempts: self.exchange_attempts,
            exchange_accepted: self.exchange_accepted,
            sweeps: self.sweeps,
            sweeps_since_check: self.sweeps_since_check,
            rng_word_pos,
            coll_gens: self.comm.collective_generations(),
            rebalanced: self.rebalanced,
            rt_banked_crossings: self.rt_banked_crossings,
            rt_banked_moves: self.rt_banked_moves,
            assignment: if rebalancing {
                self.assignment.clone()
            } else {
                Vec::new()
            },
            deep_params: self
                .deep_state
                .as_ref()
                .map(|ds| ds.deep.net().flatten_params()),
            stats: self.walker.stats().clone(),
            obs_dim: self.obs_dim,
            sro_sums,
            sro_counts,
            walker: self.walker.checkpoint(),
        };
        let wrote = match rc.write(&spec.dir, round, self.rank) {
            Ok(()) => true,
            Err(e) => {
                eprintln!(
                    "rewl: rank {}: checkpoint write at round {round} failed: {e}",
                    self.rank
                );
                false
            }
        };
        if self.rank != 0 {
            self.comm.send(
                0,
                tags::with_round(tags::CKPT_META, round),
                vec![u8::from(wrote)],
            );
            return;
        }
        // Rank 0 commits: collect confirmations (one shared deadline for
        // the whole commit round), then write the manifest.
        let mut alive = vec![false; self.comm.size()];
        alive[0] = wrote;
        let deadline = Instant::now() + COLLECT_DEADLINE;
        for (other, made_it) in alive.iter_mut().enumerate().skip(1) {
            if let Ok(meta) = recv_until(
                &self.comm,
                other,
                tags::with_round(tags::CKPT_META, round),
                deadline,
                self.cfg.recovery,
            ) {
                *made_it = meta.first() == Some(&1);
            }
        }
        let manifest = RunManifest {
            round,
            ranks: self.comm.size(),
            digest: self.digest,
            alive,
            faults: self.comm.fault_plan().clone(),
            assignment: if rebalancing {
                self.assignment.clone()
            } else {
                Vec::new()
            },
        };
        if let Err(e) = manifest.write(&spec.dir) {
            eprintln!("rewl: manifest write at round {round} failed: {e}");
        }
    }
}
