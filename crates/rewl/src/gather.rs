//! The final gather: rank pieces, window averaging, accumulator
//! reduction, and output assembly at rank 0.
//!
//! Every rank ends its run by shipping its window `ln g` piece, visited
//! mask, move statistics, counters, and SRO accumulator to rank 0 (tags
//! `GATHER_*`). Rank 0 validates every payload shape — a dead peer, a
//! timeout, or a malformed message drops that *rank* from the merge, not
//! the run — averages each window's surviving walkers (aligning their
//! additive `ln g` constants on co-visited bins), and stitches the
//! windows into the global density of states.

use std::time::Instant;

use dt_hpc::{Communicator, Transport};
use dt_proposal::MoveStats;
use dt_telemetry::RankTelemetry;
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::WlWalker;

use crate::driver::{RecoveryStats, RewlConfig, RewlError, RewlOutput, WindowReport};
use crate::exchange::{recv_until, tags};
use crate::merge::merge_windows;
use crate::windows::WindowLayout;
use crate::wire;

/// Data one rank contributes to the final gather.
pub(crate) struct RankPiece {
    pub(crate) ln_g: Vec<f64>,
    pub(crate) mask: Vec<bool>,
    pub(crate) stats: MoveStats,
    /// `[exchange_attempts, exchange_accepted, converged, ln_f bits,
    /// moves, respawns, rejoin_duration_ns, heartbeat_misses,
    /// round_trips, round_trip_moves, rebalanced]`.
    pub(crate) counts: Vec<u64>,
}

/// Number of fields in [`RankPiece::counts`].
const COUNT_FIELDS: usize = 11;

impl RankPiece {
    /// Capture this rank's own contribution (rank 0 keeps its piece
    /// local; every other rank encodes it onto the wire).
    pub(crate) fn from_walker(walker: &WlWalker, counts: Vec<u64>) -> RankPiece {
        RankPiece {
            ln_g: walker.dos().ln_g().to_vec(),
            mask: walker.visited_mask(),
            stats: walker.stats().clone(),
            counts,
        }
    }
}

/// Ship this rank's gather contribution to rank 0.
pub(crate) fn send_piece<T: Transport>(
    comm: &Communicator<T>,
    walker: &WlWalker,
    counts: &[u64],
    sro: &MicrocanonicalAccumulator,
    obs_dim: usize,
) {
    comm.send(0, tags::GATHER_LN_G, wire::encode_f64s(walker.dos().ln_g()));
    comm.send(
        0,
        tags::GATHER_MASK,
        wire::encode_mask(&walker.visited_mask()),
    );
    comm.send(0, tags::GATHER_STATS, wire::encode_stats(walker.stats()));
    comm.send(0, tags::GATHER_COUNTS, wire::encode_u64s(counts));
    send_accumulator(comm, sro, obs_dim);
}

/// Receive one rank's gather contribution, validating every shape; any
/// timeout, dead peer, or malformed payload drops the whole rank. All
/// receives share the caller's absolute `deadline` (one budget per
/// collection phase, not per message); `wait_dead` tolerates a peer that
/// is mid-respawn (recovery mode).
pub(crate) fn recv_rank_piece<T: Transport>(
    comm: &Communicator<T>,
    other: usize,
    window_bins: usize,
    global_bins: usize,
    obs_dim: usize,
    deadline: Instant,
    wait_dead: bool,
) -> Result<(RankPiece, MicrocanonicalAccumulator), String> {
    let grab = |tag: u64| -> Result<Vec<u8>, String> {
        recv_until(comm, other, tag, deadline, wait_dead).map_err(|e| e.to_string())
    };
    let ln_g = wire::decode_f64s(&grab(tags::GATHER_LN_G)?).map_err(|e| e.to_string())?;
    let mask = wire::decode_mask(&grab(tags::GATHER_MASK)?);
    let stats = wire::decode_stats(&grab(tags::GATHER_STATS)?).map_err(|e| e.to_string())?;
    let counts = wire::decode_u64s(&grab(tags::GATHER_COUNTS)?).map_err(|e| e.to_string())?;
    if ln_g.len() != window_bins || mask.len() != window_bins {
        return Err(format!(
            "piece shape mismatch: {} ln_g / {} mask bins, expected {window_bins}",
            ln_g.len(),
            mask.len()
        ));
    }
    if counts.len() != COUNT_FIELDS {
        return Err(format!(
            "counts has {} fields, expected {COUNT_FIELDS}",
            counts.len()
        ));
    }
    let acc = recv_accumulator(comm, other, global_bins, obs_dim, deadline, wait_dead)?;
    Ok((
        RankPiece {
            ln_g,
            mask,
            stats,
            counts,
        },
        acc,
    ))
}

/// Average the `ln_g` of a window's walkers after aligning their additive
/// constants on co-visited bins; mask is the union of visited bins.
pub(crate) fn average_window(members: &[&RankPiece]) -> (Vec<f64>, Vec<bool>) {
    let bins = members[0].ln_g.len();
    let reference = members[0];
    let mut sum = vec![0.0f64; bins];
    let mut count = vec![0u32; bins];
    for (mi, piece) in members.iter().enumerate() {
        // Align to the reference on co-visited bins.
        let mut shift = 0.0;
        if mi > 0 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for b in 0..bins {
                if piece.mask[b] && reference.mask[b] {
                    acc += reference.ln_g[b] - piece.ln_g[b];
                    n += 1;
                }
            }
            if n > 0 {
                shift = acc / n as f64;
            }
        }
        for b in 0..bins {
            if piece.mask[b] {
                sum[b] += piece.ln_g[b] + shift;
                count[b] += 1;
            }
        }
    }
    let mask: Vec<bool> = count.iter().map(|&c| c > 0).collect();
    let avg = sum
        .iter()
        .zip(&count)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    (avg, mask)
}

/// Per-bin `(totals, counts)` of an accumulator — the wire/checkpoint
/// representation (means are re-derived from totals on merge).
pub(crate) fn accumulator_totals(
    acc: &MicrocanonicalAccumulator,
    obs_dim: usize,
) -> (Vec<f64>, Vec<u64>) {
    let bins = acc.num_bins();
    let mut sums = Vec::with_capacity(bins * obs_dim);
    let mut counts = Vec::with_capacity(bins);
    for b in 0..bins {
        let c = acc.count(b);
        counts.push(c);
        match acc.bin_mean(b) {
            Some(mean) => sums.extend(mean.iter().map(|&m| m * c as f64)),
            None => sums.extend(std::iter::repeat_n(0.0, obs_dim)),
        }
    }
    (sums, counts)
}

fn send_accumulator<T: Transport>(
    comm: &Communicator<T>,
    acc: &MicrocanonicalAccumulator,
    obs_dim: usize,
) {
    let (sums, counts) = accumulator_totals(acc, obs_dim);
    comm.send(0, tags::GATHER_SRO_SUMS, wire::encode_f64s(&sums));
    comm.send(0, tags::GATHER_SRO_COUNTS, wire::encode_u64s(&counts));
}

fn recv_accumulator<T: Transport>(
    comm: &Communicator<T>,
    from: usize,
    bins: usize,
    obs_dim: usize,
    deadline: Instant,
    wait_dead: bool,
) -> Result<MicrocanonicalAccumulator, String> {
    let sums = wire::decode_f64s(
        &recv_until(comm, from, tags::GATHER_SRO_SUMS, deadline, wait_dead)
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    let counts = wire::decode_u64s(
        &recv_until(comm, from, tags::GATHER_SRO_COUNTS, deadline, wait_dead)
            .map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    if sums.len() != bins * obs_dim || counts.len() != bins {
        return Err(format!(
            "accumulator shape mismatch: {} sums / {} counts for {bins} bins × {obs_dim}",
            sums.len(),
            counts.len()
        ));
    }
    let mut acc = MicrocanonicalAccumulator::new(bins, obs_dim);
    for b in 0..bins {
        acc.record_sum(b, &sums[b * obs_dim..(b + 1) * obs_dim], counts[b]);
    }
    Ok(acc)
}

/// Rank 0's final step: average each window's surviving walkers, build
/// the per-window reports, and merge the windows into the global DOS.
///
/// # Errors
/// [`RewlError::WindowLost`] when a window has no surviving pieces.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_output(
    layout: &WindowLayout,
    cfg: &RewlConfig,
    assignment: &[usize],
    per_rank: &[Option<RankPiece>],
    merged_sro: MicrocanonicalAccumulator,
    lost_ranks: Vec<usize>,
    sweeps: u64,
    resumed_round: Option<u64>,
    telemetry: Vec<RankTelemetry>,
) -> Result<RewlOutput, RewlError> {
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        // Walker reallocation can leave windows with unequal headcounts;
        // group by the final rank→window assignment, not by rank blocks.
        let started = assignment.iter().filter(|&&a| a == win).count();
        let members: Vec<&RankPiece> = per_rank
            .iter()
            .enumerate()
            .filter(|&(r, _)| assignment[r] == win)
            .filter_map(|(_, p)| p.as_ref())
            .collect();
        if members.is_empty() {
            return Err(RewlError::WindowLost {
                window: win,
                walkers: started,
            });
        }
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut attempts = 0u64;
        let mut accepted = 0u64;
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        let mut round_trips = 0u64;
        let mut round_trip_moves = 0u64;
        for p in &members {
            stats.merge(&p.stats);
            attempts += p.counts[0];
            accepted += p.counts[1];
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
            round_trips += p.counts[8];
            round_trip_moves += p.counts[9];
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: attempts,
            exchange_accepted: accepted,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
            lost_walkers: started - members.len(),
            round_trips,
            round_trip_moves,
        });
    }
    let (dos, mask) = merge_windows(layout, &pieces);
    let total_moves = per_rank.iter().flatten().map(|p| p.counts[4]).sum();
    let converged_all = reports.iter().all(|r| r.converged);
    let mut recovery = RecoveryStats::default();
    let mut walkers_rebalanced = 0u64;
    for p in per_rank.iter().flatten() {
        recovery.ranks_respawned += p.counts[5];
        recovery.rejoin_duration_ns += p.counts[6];
        recovery.heartbeat_misses += p.counts[7];
        walkers_rebalanced += p.counts[10];
    }
    Ok(RewlOutput {
        dos,
        mask,
        windows: reports,
        converged: converged_all,
        sweeps,
        sro: merged_sro,
        total_moves,
        lost_ranks,
        resumed_from: resumed_round,
        telemetry,
        recovery,
        walkers_rebalanced,
    })
}
