//! # dt-rewl
//!
//! Replica-exchange Wang–Landau (REWL): the parallel sampling framework of
//! DeepThermo.
//!
//! The global energy range is split into `M` overlapping windows with `W`
//! walkers each (`M·W` ranks ≡ GPUs in the paper). Each walker runs
//! Wang–Landau inside its window; periodically, walkers in adjacent
//! windows attempt configuration exchanges with the acceptance
//!
//! `P = min(1, [g_i(E_x) · g_j(E_y)] / [g_i(E_y) · g_j(E_x)])`
//!
//! (valid only when both energies lie in the overlap), which lets
//! configurations tunnel across the whole range while every walker keeps a
//! local, rapidly-flattening histogram. At the end, per-window `ln g`
//! pieces are averaged over the window's walkers and stitched into the
//! global density of states at the overlap bin where the `ln g` slopes
//! match best.
//!
//! Deep proposals plug in per window: each walker can carry a
//! [`dt_proposal::DeepProposal`] trained on-the-fly from its own samples,
//! with optional weight averaging across the walkers of a window
//! (simulating the paper's NCCL/RCCL allreduce).
//!
//! Two drivers are provided:
//! * [`run_rewl`] — ranks on a [`dt_hpc::ThreadCluster`], full exchange
//!   protocol over tagged messages (the faithful parallel implementation);
//! * [`run_windows_serial`] — windows run one after another without
//!   exchange (a baseline and a debugging aid).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod merge;
pub mod spec;
pub mod wire;
pub mod windows;

pub use driver::{run_rewl, run_windows_serial, RewlConfig, RewlOutput, WindowReport};
pub use merge::merge_windows;
pub use spec::{DeepSpec, KernelSpec};
pub use windows::WindowLayout;
