//! # dt-rewl
//!
//! Replica-exchange Wang–Landau (REWL): the parallel sampling framework of
//! DeepThermo.
//!
//! The global energy range is split into `M` overlapping windows with `W`
//! walkers each (`M·W` ranks ≡ GPUs in the paper). Each walker runs
//! Wang–Landau inside its window; periodically, walkers in adjacent
//! windows attempt configuration exchanges with the acceptance
//!
//! `P = min(1, [g_i(E_x) · g_j(E_y)] / [g_i(E_y) · g_j(E_x)])`
//!
//! (valid only when both energies lie in the overlap), which lets
//! configurations tunnel across the whole range while every walker keeps a
//! local, rapidly-flattening histogram. At the end, per-window `ln g`
//! pieces are averaged over the window's walkers and stitched into the
//! global density of states at the overlap bin where the `ln g` slopes
//! match best.
//!
//! Deep proposals plug in per window: each walker can carry a
//! [`dt_proposal::DeepProposal`] trained on-the-fly from its own samples,
//! with optional weight averaging across the walkers of a window
//! (simulating the paper's NCCL/RCCL allreduce).
//!
//! Three drivers are provided:
//! * [`run_rewl`] — ranks on a [`dt_hpc::ThreadCluster`], full exchange
//!   protocol over tagged messages (the faithful parallel implementation);
//! * [`run_rewl_on`] — ONE rank of the same protocol on any
//!   [`dt_hpc::Transport`] (the entry point for multi-process clusters,
//!   e.g. TCP workers — see [`dt_hpc::TcpTransport`]);
//! * [`run_windows_serial`] — windows run one after another without
//!   exchange (a baseline and a debugging aid).
//!
//! The per-rank logic itself lives in `rank` (a phase state machine),
//! [`exchange`] (the swap protocol and message tags), and `gather`
//! (the final merge at rank 0); it is identical on every backend, so a
//! fault-free run yields bit-identical `ln g` regardless of transport.
//!
//! ## Fault tolerance
//!
//! [`run_rewl`] is built to survive a lossy cluster: a
//! [`dt_hpc::FaultPlan`] on [`RewlConfig::faults`] injects rank kills and
//! message drops/delays; every protocol receive is timeout-bounded, so a
//! dead or silent partner degrades an exchange or a weight sync instead
//! of hanging it; convergence is decided by a collective vote that only
//! counts survivors. Losses are reported through
//! [`WindowReport::lost_walkers`] and [`RewlOutput::lost_ranks`]. With
//! [`RewlConfig::checkpoint`] set, the cluster additionally snapshots
//! itself every few rounds (see [`checkpoint`]) and the next run over the
//! same directory resumes from the newest consistent snapshot. The fault
//! plan is recorded in the snapshot manifest; a resume that requests a
//! *different* non-empty plan is refused with
//! [`RewlError::FaultPlanMismatch`].
//!
//! ## Recovery (self-healing)
//!
//! With [`RewlConfig::recovery`] on (process clusters only), a dead rank
//! is not merely degraded around — it comes back. Recovery forces
//! checkpoint cadence 1 and orders each round *checkpoint, then poll
//! faults*, so a killed rank always leaves an exact image of its death
//! round; a respawned process (nonzero [`RewlConfig::respawns`]) resumes
//! from its own newest rank file via [`load_own_resume_point`], runs a
//! `Rejoin` phase that restores walker state, RNG word position, and the
//! transport's collective generation counters, then replays the death
//! round. First receives of each protocol step wait with recovery
//! patience and retransmit; round-scoped tags make replayed duplicates
//! harmless. The healed run is bit-identical to a fault-free one (see
//! `tests/tcp_backend.rs`), and [`RewlOutput::recovery`] carries the
//! respawn/rejoin/heartbeat counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod driver;
pub mod exchange;
pub(crate) mod gather;
pub mod merge;
pub(crate) mod rank;
pub mod rebalance;
pub mod serial;
pub mod spec;
pub mod windows;
pub mod wire;

pub use checkpoint::{
    load_own_resume_point, load_resume_point, CheckpointSpec, CkptError, RankCheckpoint,
    ResumePoint, RunManifest,
};
pub use driver::pilot_window_costs;
pub use driver::{
    run_rewl, run_rewl_on, RankRun, RecoveryStats, RewlConfig, RewlError, RewlOutput, WindowReport,
};
pub use exchange::{exchange_role, exchange_role_assigned, ExchangeRole};
pub use merge::merge_windows;
pub use rebalance::{plan_rebalance, Migration, RtSample};
pub use serial::run_windows_serial;
pub use spec::{DeepSpec, KernelSpec};
pub use windows::WindowLayout;
pub use wire::{StatsWireError, WireError};
