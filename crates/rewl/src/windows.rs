//! Overlapping energy-window layout.
//!
//! Two constructors build a layout over the same invariants:
//!
//! * [`WindowLayout::new`] — the classic REWL recipe: `M` equal-width
//!   windows with a fixed pairwise overlap fraction;
//! * [`WindowLayout::equal_diffusion`] — non-uniform boundaries placed so
//!   every window carries the same *estimated diffusion cost* (integrated
//!   per-bin cost profile). Walker round-trip times across an energy
//!   range vary by orders of magnitude, so equal-width windows leave most
//!   ranks idle-converged while a few slow windows gate time-to-solution;
//!   equalizing estimated diffusion time is the optimal-parallelisation
//!   fix (arXiv 2510.11562).
//!
//! Both constructors feed their raw boundaries through one shared
//! repair/validation pass that enforces the layout invariants explicitly:
//! full coverage of the global grid, ≥ 1-bin overlap between neighbors,
//! ≥ 2-bin windows, and strictly monotone window starts.

use dt_wanglandau::EnergyGrid;

/// Partition of a global energy grid into `M` windows with pairwise
/// overlaps. Windows are defined in *global bin* indices so every window
/// grid shares bin boundaries with the global grid (which makes merging
/// exact).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowLayout {
    global: EnergyGrid,
    /// `(start_bin, end_bin)` per window, end exclusive.
    ranges: Vec<(usize, usize)>,
    overlap: f64,
}

impl WindowLayout {
    /// Lay out `num_windows` equal-width windows over `global` with
    /// `overlap` ∈ [0, 0.95] (fraction of each window shared with its
    /// successor).
    ///
    /// # Panics
    /// Panics when parameters are out of range or the grid is too small to
    /// give every window at least 2 bins and every overlap at least 1 bin.
    pub fn new(global: EnergyGrid, num_windows: usize, overlap: f64) -> Self {
        assert!(num_windows >= 1, "need at least one window");
        assert!((0.0..=0.95).contains(&overlap), "overlap out of range");
        let n = global.num_bins();
        if num_windows == 1 {
            return WindowLayout {
                global,
                ranges: vec![(0, n)],
                overlap,
            };
        }
        // Window width w satisfies: w + (M-1)·w·(1-o) = n.
        let m = num_windows as f64;
        let w = n as f64 / (1.0 + (m - 1.0) * (1.0 - overlap));
        let stride = w * (1.0 - overlap);
        let width = w.round().max(2.0) as usize;
        let mut ranges = Vec::with_capacity(num_windows);
        for i in 0..num_windows {
            let start = (i as f64 * stride).round() as usize;
            let end = (start + width).min(n);
            ranges.push((start.min(n - 2), end));
        }
        let ranges = repair_and_validate(ranges, n);
        WindowLayout {
            global,
            ranges,
            overlap,
        }
    }

    /// Lay out `num_windows` windows so each carries (approximately) the
    /// same integrated diffusion cost, given a per-global-bin
    /// `cost_profile` (relative units; higher = slower to sample). The
    /// construction mirrors [`WindowLayout::new`] in *cost space*: window
    /// width and stride are computed from the same overlap equation, then
    /// mapped back to bin indices through the cost quantile function. A
    /// flat profile therefore reproduces a near-uniform layout; a profile
    /// that is expensive in the low-energy tail narrows the deep windows
    /// and widens the easy ones.
    ///
    /// Seed the profile from a cheap pilot pass
    /// ([`crate::pilot_window_costs`]), from a supplied visit histogram,
    /// or re-fit it from live round-trip measurements
    /// ([`WindowLayout::refit_equal_diffusion`]).
    ///
    /// # Panics
    /// Panics when parameters are out of range, `cost_profile` is not one
    /// finite non-negative entry per global bin with a positive total, or
    /// the grid is too small to satisfy the window invariants.
    pub fn equal_diffusion(
        global: EnergyGrid,
        num_windows: usize,
        overlap: f64,
        cost_profile: &[f64],
    ) -> Self {
        assert!(num_windows >= 1, "need at least one window");
        assert!((0.0..=0.95).contains(&overlap), "overlap out of range");
        let n = global.num_bins();
        assert_eq!(
            cost_profile.len(),
            n,
            "cost profile must have one entry per global bin"
        );
        assert!(
            cost_profile.iter().all(|c| c.is_finite() && *c >= 0.0),
            "cost profile entries must be finite and non-negative"
        );
        if num_windows == 1 {
            return WindowLayout {
                global,
                ranges: vec![(0, n)],
                overlap,
            };
        }
        // Floor every bin at a small fraction of the mean cost so
        // zero-cost stretches cannot collapse a window to nothing.
        let total_raw: f64 = cost_profile.iter().sum();
        assert!(total_raw > 0.0, "cost profile must have positive total");
        let floor = 1e-3 * total_raw / n as f64;
        let costs: Vec<f64> = cost_profile.iter().map(|&c| c.max(floor)).collect();
        // cum[b] = integrated cost of bins [0, b).
        let mut cum = Vec::with_capacity(n + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for &c in &costs {
            acc += c;
            cum.push(acc);
        }
        let total = acc;
        // Same overlap equation as the uniform constructor, in cost space.
        let m = num_windows as f64;
        let wc = total / (1.0 + (m - 1.0) * (1.0 - overlap));
        let sc = wc * (1.0 - overlap);
        // Quantile lookups: a window starts at the last bin whose
        // cumulative start-cost is below its cost offset, and ends at the
        // first bin boundary that covers its cost budget.
        let start_at = |target: f64| -> usize {
            cum.iter()
                .rposition(|&v| v <= target)
                .unwrap_or(0)
                .min(n - 2)
        };
        let end_at =
            |target: f64| -> usize { cum.iter().position(|&v| v >= target).unwrap_or(n).min(n) };
        let mut ranges = Vec::with_capacity(num_windows);
        for i in 0..num_windows {
            let lo_cost = i as f64 * sc;
            let start = if i == 0 { 0 } else { start_at(lo_cost) };
            let end = end_at(lo_cost + wc).max(start + 2).min(n);
            ranges.push((start, end));
        }
        let ranges = repair_and_validate(ranges, n);
        WindowLayout {
            global,
            ranges,
            overlap,
        }
    }

    /// Re-fit this layout from live per-window round-trip measurements:
    /// `window_cost[i]` is the measured diffusion cost of window `i` (any
    /// consistent unit — mean round-trip moves is the natural one).
    /// Each window's measured cost is spread over its bins to rebuild a
    /// per-bin profile (overlap bins average the windows sharing them),
    /// then [`WindowLayout::equal_diffusion`] solves the boundaries again.
    /// Slow windows shrink, fast windows widen.
    ///
    /// # Panics
    /// Panics when `window_cost` does not have one finite non-negative
    /// entry per window or all entries are zero.
    pub fn refit_equal_diffusion(&self, window_cost: &[f64]) -> WindowLayout {
        assert_eq!(
            window_cost.len(),
            self.num_windows(),
            "need one cost entry per window"
        );
        assert!(
            window_cost.iter().all(|c| c.is_finite() && *c >= 0.0),
            "window costs must be finite and non-negative"
        );
        let n = self.global.num_bins();
        let mut profile = vec![0.0f64; n];
        let mut hits = vec![0u32; n];
        for (i, &(lo, hi)) in self.ranges.iter().enumerate() {
            let per_bin = window_cost[i] / (hi - lo) as f64;
            for b in lo..hi {
                profile[b] += per_bin;
                hits[b] += 1;
            }
        }
        for (p, &h) in profile.iter_mut().zip(&hits) {
            if h > 1 {
                *p /= f64::from(h);
            }
        }
        WindowLayout::equal_diffusion(
            self.global.clone(),
            self.num_windows(),
            self.overlap,
            &profile,
        )
    }

    /// The global grid.
    pub fn global_grid(&self) -> &EnergyGrid {
        &self.global
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.ranges.len()
    }

    /// Overlap fraction used at construction.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Global bin range `(start, end)` of window `i`.
    pub fn bin_range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    /// The energy grid of window `i` (bin-aligned slice of the global
    /// grid).
    pub fn window_grid(&self, i: usize) -> EnergyGrid {
        let (lo, hi) = self.ranges[i];
        self.global.slice(lo, hi)
    }

    /// Global bin range of the overlap between windows `i` and `i+1`.
    pub fn overlap_range(&self, i: usize) -> (usize, usize) {
        (self.ranges[i + 1].0, self.ranges[i].1)
    }
}

/// Shared repair + validation of raw window boundaries. Enforces, in
/// order: the first window starts at bin 0 and the last ends at `n`;
/// window starts are strictly monotone; every adjacent pair overlaps by
/// at least one bin; every window is at least 2 bins wide. Inputs that
/// already satisfy the invariants pass through unchanged (the uniform
/// constructor's golden layouts are bit-identical to the pre-repair
/// code).
///
/// # Panics
/// Panics when `n < num_windows + 1` (no strictly-monotone layout of
/// ≥ 2-bin windows fits) or when repair cannot restore the invariants.
fn repair_and_validate(mut ranges: Vec<(usize, usize)>, n: usize) -> Vec<(usize, usize)> {
    let num_windows = ranges.len();
    assert!(
        n > num_windows,
        "{n} bins cannot host {num_windows} windows of >= 2 bins with monotone starts"
    );
    ranges[0].0 = 0;
    // Force the last window to touch the top of the grid.
    ranges[num_windows - 1].1 = n;
    // Forward: strictly monotone starts. Rounding of a fractional stride
    // (or a cost spike in the quantile map) can duplicate a start; bump
    // duplicates up one bin. Gaps (start beyond the previous window's
    // end) are NOT pulled down here — that can undo monotonicity; the
    // final end-stretching pass closes them instead.
    for i in 1..num_windows {
        if ranges[i].0 <= ranges[i - 1].0 {
            ranges[i].0 = ranges[i - 1].0 + 1;
        }
    }
    // Backward: cap starts from the top so every window keeps >= 2 bins
    // up to the grid end while starts stay strictly monotone.
    ranges[num_windows - 1].0 = ranges[num_windows - 1].0.min(n - 2);
    for i in (0..num_windows - 1).rev() {
        ranges[i].0 = ranges[i].0.min(ranges[i + 1].0 - 1);
    }
    ranges[0].0 = 0;
    // Forward: stretch ends to restore >= 2-bin widths and >= 1-bin
    // overlaps that the start adjustments may have squeezed.
    for i in 0..num_windows - 1 {
        ranges[i].1 = ranges[i].1.clamp(ranges[i].0 + 2, n);
        if ranges[i].1 <= ranges[i + 1].0 {
            ranges[i].1 = ranges[i + 1].0 + 1;
        }
    }
    // Validate every invariant explicitly.
    assert_eq!(ranges[0].0, 0, "first window must start at bin 0");
    assert_eq!(ranges[num_windows - 1].1, n, "last window must end at n");
    for i in 0..num_windows {
        assert!(
            ranges[i].1 - ranges[i].0 >= 2,
            "window {i} too narrow: {ranges:?}"
        );
        assert!(ranges[i].1 <= n, "window {i} exceeds the grid: {ranges:?}");
        if i > 0 {
            assert!(
                ranges[i].0 > ranges[i - 1].0,
                "window starts not strictly monotone: {ranges:?}"
            );
            assert!(
                ranges[i].0 < ranges[i - 1].1,
                "windows {} and {i} do not overlap: {ranges:?}",
                i - 1
            );
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> EnergyGrid {
        EnergyGrid::new(0.0, n as f64, n)
    }

    fn assert_invariants(l: &WindowLayout) {
        let n = l.global_grid().num_bins();
        let m = l.num_windows();
        assert_eq!(l.bin_range(0).0, 0, "first window starts at 0");
        assert_eq!(l.bin_range(m - 1).1, n, "last window ends at n");
        for i in 0..m {
            let (lo, hi) = l.bin_range(i);
            assert!(hi - lo >= 2, "window {i} narrower than 2 bins");
            if i > 0 {
                assert!(lo > l.bin_range(i - 1).0, "starts not strictly monotone");
                let (olo, ohi) = l.overlap_range(i - 1);
                assert!(ohi > olo, "windows {},{i} do not overlap", i - 1);
            }
        }
    }

    #[test]
    fn single_window_covers_everything() {
        let l = WindowLayout::new(grid(10), 1, 0.5);
        assert_eq!(l.num_windows(), 1);
        assert_eq!(l.bin_range(0), (0, 10));
    }

    #[test]
    fn windows_cover_grid_with_overlaps() {
        for (n, m, o) in [(64, 4, 0.75), (100, 8, 0.5), (40, 3, 0.25), (200, 16, 0.75)] {
            let l = WindowLayout::new(grid(n), m, o);
            assert_invariants(&l);
        }
    }

    #[test]
    fn window_grids_share_bin_boundaries() {
        let l = WindowLayout::new(EnergyGrid::new(-2.0, 6.0, 32), 4, 0.5);
        for i in 0..4 {
            let wg = l.window_grid(i);
            let (lo, hi) = l.bin_range(i);
            assert_eq!(wg.num_bins(), hi - lo);
            // Centers must coincide with global centers.
            for b in 0..wg.num_bins() {
                let global_center = l.global_grid().center(lo + b);
                assert!((wg.center(b) - global_center).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn higher_overlap_means_wider_windows() {
        let narrow = WindowLayout::new(grid(100), 4, 0.25);
        let wide = WindowLayout::new(grid(100), 4, 0.75);
        let w_narrow = narrow.bin_range(0).1 - narrow.bin_range(0).0;
        let w_wide = wide.bin_range(0).1 - wide.bin_range(0).0;
        assert!(w_wide > w_narrow);
    }

    #[test]
    #[should_panic(expected = "overlap out of range")]
    fn rejects_full_overlap() {
        let _ = WindowLayout::new(grid(10), 2, 0.99);
    }

    /// Small grids with many high-overlap windows used to round several
    /// windows onto identical starts (non-monotone, duplicated windows);
    /// the repair pass must separate them while keeping every invariant.
    #[test]
    fn small_grid_high_m_is_repaired_to_monotone_starts() {
        for (n, m, o) in [
            (6, 4, 0.9),
            (8, 5, 0.25),
            (8, 6, 0.5),
            (12, 8, 0.95),
            (16, 7, 0.1),
            (10, 9, 0.0),
        ] {
            let l = WindowLayout::new(grid(n), m, o);
            assert_invariants(&l);
        }
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn rejects_grid_too_small_for_window_count() {
        let _ = WindowLayout::new(grid(4), 4, 0.5);
    }

    #[test]
    fn equal_diffusion_flat_profile_is_near_uniform() {
        let n = 96;
        let flat = vec![1.0; n];
        let l = WindowLayout::equal_diffusion(grid(n), 4, 0.75, &flat);
        let u = WindowLayout::new(grid(n), 4, 0.75);
        assert_invariants(&l);
        for i in 0..4 {
            let (alo, ahi) = l.bin_range(i);
            let (ulo, uhi) = u.bin_range(i);
            assert!(
                (alo as i64 - ulo as i64).abs() <= 1 && (ahi as i64 - uhi as i64).abs() <= 1,
                "flat profile drifted from uniform: {:?} vs {:?}",
                l.bin_range(i),
                u.bin_range(i)
            );
        }
    }

    #[test]
    fn equal_diffusion_narrows_expensive_bins() {
        // The first quarter of the grid is 50x slower: the window covering
        // it must be much narrower than the uniform window, and the
        // expensive region must be split across more windows.
        let n = 100;
        let mut profile = vec![1.0; n];
        for c in profile.iter_mut().take(n / 4) {
            *c = 50.0;
        }
        let l = WindowLayout::equal_diffusion(grid(n), 4, 0.5, &profile);
        let u = WindowLayout::new(grid(n), 4, 0.5);
        assert_invariants(&l);
        let (lo, hi) = l.bin_range(0);
        let (ulo, uhi) = u.bin_range(0);
        assert!(
            hi - lo < (uhi - ulo) / 2,
            "expensive window must shrink: {:?} vs uniform {:?}",
            (lo, hi),
            (ulo, uhi)
        );
        // Integrated cost per window must be roughly equal.
        let cost = |(a, b): (usize, usize)| -> f64 { profile[a..b].iter().sum() };
        let costs: Vec<f64> = (0..4).map(|i| cost(l.bin_range(i))).collect();
        let max = costs.iter().cloned().fold(f64::MIN, f64::max);
        let min = costs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 3.0,
            "window costs should be balanced: {costs:?}"
        );
    }

    #[test]
    fn equal_diffusion_single_window_covers_everything() {
        let l = WindowLayout::equal_diffusion(grid(12), 1, 0.5, &[2.0; 12]);
        assert_eq!(l.bin_range(0), (0, 12));
    }

    #[test]
    #[should_panic(expected = "one entry per global bin")]
    fn equal_diffusion_rejects_wrong_profile_length() {
        let _ = WindowLayout::equal_diffusion(grid(10), 2, 0.5, &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "positive total")]
    fn equal_diffusion_rejects_all_zero_profile() {
        let _ = WindowLayout::equal_diffusion(grid(10), 2, 0.5, &[0.0; 10]);
    }

    #[test]
    fn refit_shrinks_slow_windows() {
        let n = 80;
        let start = WindowLayout::new(grid(n), 4, 0.5);
        // Window 0 measured 20x slower than the rest.
        let refit = start.refit_equal_diffusion(&[20.0, 1.0, 1.0, 1.0]);
        assert_invariants(&refit);
        let w0_before = start.bin_range(0).1 - start.bin_range(0).0;
        let w0_after = refit.bin_range(0).1 - refit.bin_range(0).0;
        assert!(
            w0_after < w0_before,
            "slow window must shrink: {w0_after} vs {w0_before}"
        );
    }
}
