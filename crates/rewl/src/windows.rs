//! Overlapping energy-window layout.

use dt_wanglandau::EnergyGrid;

/// Partition of a global energy grid into `M` equal windows with a given
/// pairwise overlap fraction. Windows are defined in *global bin* indices
/// so every window grid shares bin boundaries with the global grid (which
/// makes merging exact).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowLayout {
    global: EnergyGrid,
    /// `(start_bin, end_bin)` per window, end exclusive.
    ranges: Vec<(usize, usize)>,
    overlap: f64,
}

impl WindowLayout {
    /// Lay out `num_windows` windows over `global` with `overlap` ∈ [0, 0.95]
    /// (fraction of each window shared with its successor).
    ///
    /// # Panics
    /// Panics when parameters are out of range or the grid is too small to
    /// give every window at least 2 bins and every overlap at least 1 bin.
    pub fn new(global: EnergyGrid, num_windows: usize, overlap: f64) -> Self {
        assert!(num_windows >= 1, "need at least one window");
        assert!((0.0..=0.95).contains(&overlap), "overlap out of range");
        let n = global.num_bins();
        if num_windows == 1 {
            return WindowLayout {
                global,
                ranges: vec![(0, n)],
                overlap,
            };
        }
        // Window width w satisfies: w + (M-1)·w·(1-o) = n.
        let m = num_windows as f64;
        let w = n as f64 / (1.0 + (m - 1.0) * (1.0 - overlap));
        let stride = w * (1.0 - overlap);
        let width = w.round().max(2.0) as usize;
        let mut ranges = Vec::with_capacity(num_windows);
        for i in 0..num_windows {
            let start = (i as f64 * stride).round() as usize;
            let end = (start + width).min(n);
            ranges.push((start.min(n - 2), end));
        }
        // Force the last window to touch the top of the grid.
        let last = ranges.last_mut().expect("nonempty");
        last.1 = n;
        if last.1 - last.0 < 2 {
            last.0 = n - 2;
        }
        // Rounding of the fractional stride can collapse an overlap to
        // zero bins (e.g. 30 bins, 4 windows, 10% overlap); pull window
        // starts down so every adjacent pair shares at least one bin.
        for i in 1..num_windows {
            if ranges[i].0 >= ranges[i - 1].1 {
                ranges[i].0 = ranges[i - 1].1 - 1;
            }
        }
        // Validate: contiguous coverage with ≥1 bin overlaps.
        for i in 0..num_windows - 1 {
            assert!(
                ranges[i + 1].0 < ranges[i].1,
                "windows {i} and {} do not overlap: {:?}",
                i + 1,
                ranges
            );
            assert!(ranges[i].1 - ranges[i].0 >= 2, "window {i} too narrow");
        }
        WindowLayout {
            global,
            ranges,
            overlap,
        }
    }

    /// The global grid.
    pub fn global_grid(&self) -> &EnergyGrid {
        &self.global
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        self.ranges.len()
    }

    /// Overlap fraction used at construction.
    pub fn overlap(&self) -> f64 {
        self.overlap
    }

    /// Global bin range `(start, end)` of window `i`.
    pub fn bin_range(&self, i: usize) -> (usize, usize) {
        self.ranges[i]
    }

    /// The energy grid of window `i` (bin-aligned slice of the global
    /// grid).
    pub fn window_grid(&self, i: usize) -> EnergyGrid {
        let (lo, hi) = self.ranges[i];
        self.global.slice(lo, hi)
    }

    /// Global bin range of the overlap between windows `i` and `i+1`.
    pub fn overlap_range(&self, i: usize) -> (usize, usize) {
        (self.ranges[i + 1].0, self.ranges[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> EnergyGrid {
        EnergyGrid::new(0.0, n as f64, n)
    }

    #[test]
    fn single_window_covers_everything() {
        let l = WindowLayout::new(grid(10), 1, 0.5);
        assert_eq!(l.num_windows(), 1);
        assert_eq!(l.bin_range(0), (0, 10));
    }

    #[test]
    fn windows_cover_grid_with_overlaps() {
        for (n, m, o) in [(64, 4, 0.75), (100, 8, 0.5), (40, 3, 0.25), (200, 16, 0.75)] {
            let l = WindowLayout::new(grid(n), m, o);
            assert_eq!(l.bin_range(0).0, 0, "first window starts at 0");
            assert_eq!(l.bin_range(m - 1).1, n, "last window ends at n");
            for i in 0..m - 1 {
                let (lo, hi) = l.overlap_range(i);
                assert!(hi > lo, "windows {i},{} overlap ({n},{m},{o})", i + 1);
            }
        }
    }

    #[test]
    fn window_grids_share_bin_boundaries() {
        let l = WindowLayout::new(EnergyGrid::new(-2.0, 6.0, 32), 4, 0.5);
        for i in 0..4 {
            let wg = l.window_grid(i);
            let (lo, hi) = l.bin_range(i);
            assert_eq!(wg.num_bins(), hi - lo);
            // Centers must coincide with global centers.
            for b in 0..wg.num_bins() {
                let global_center = l.global_grid().center(lo + b);
                assert!((wg.center(b) - global_center).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn higher_overlap_means_wider_windows() {
        let narrow = WindowLayout::new(grid(100), 4, 0.25);
        let wide = WindowLayout::new(grid(100), 4, 0.75);
        let w_narrow = narrow.bin_range(0).1 - narrow.bin_range(0).0;
        let w_wide = wide.bin_range(0).1 - wide.bin_range(0).0;
        assert!(w_wide > w_narrow);
    }

    #[test]
    #[should_panic(expected = "overlap out of range")]
    fn rejects_full_overlap() {
        let _ = WindowLayout::new(grid(10), 2, 0.99);
    }
}
