//! Serial baseline driver: independent windows, no cluster.

use dt_hamiltonian::EnergyModel;
use dt_hpc::rank_rng;
use dt_lattice::{Composition, Configuration, NeighborTable};
use dt_proposal::{MoveStats, ProposalContext};
use dt_telemetry::Telemetry;
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::{EnergyGrid, WlWalker};

use crate::driver::{RewlConfig, RewlError, RewlOutput, WindowReport};
use crate::gather::{average_window, RankPiece};
use crate::merge::merge_windows;
use crate::rank::{
    build_kernel, fill_pair_probabilities, init_deep_state, snapshot_rank_telemetry,
};
use crate::windows::WindowLayout;

/// Serial baseline: run each window's walkers one after another (rayon
/// across ranks, but no replica exchange and no weight sync). Useful as an
/// ablation (what replica exchange buys) and as a debugging reference.
///
/// # Errors
/// Never fails today (there is no cluster to lose ranks on); the
/// signature matches [`crate::run_rewl`] so callers can switch drivers
/// freely.
pub fn run_windows_serial<M: EnergyModel + Sync>(
    model: &M,
    neighbors: &NeighborTable,
    comp: &Composition,
    (e_min, e_max): (f64, f64),
    cfg: &RewlConfig,
) -> Result<RewlOutput, RewlError> {
    use rayon::prelude::*;
    let layout = WindowLayout::new(
        EnergyGrid::new(e_min, e_max, cfg.num_bins),
        cfg.num_windows,
        cfg.overlap,
    );
    let size = cfg.num_windows * cfg.walkers_per_window;
    let m_species = comp.num_species();
    let num_shells = model.num_shells();
    let obs_dim = num_shells * m_species * m_species;

    let per_rank: Vec<_> = (0..size)
        .into_par_iter()
        .map(|rank| {
            let window = rank / cfg.walkers_per_window;
            let grid = layout.window_grid(window);
            let mut rng = rank_rng(cfg.seed, rank as u64);
            let tel = Telemetry::new(cfg.telemetry);
            let mut deep_state = init_deep_state(&cfg.kernel, comp, num_shells, &tel, &mut rng);
            let config = Configuration::random(comp, &mut rng);
            let kernel = build_kernel(&cfg.kernel, &deep_state);
            let mut walker = WlWalker::new(
                grid,
                cfg.wl.clone(),
                config,
                model,
                neighbors,
                kernel,
                cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            assert!(
                walker.drive_into_window(model, neighbors, 20_000),
                "rank {rank}: failed to reach window {window}"
            );
            walker.set_telemetry(tel.clone());
            let ctx = ProposalContext {
                neighbors,
                composition: comp,
            };
            let mut sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
            let mut obs_buf = vec![0.0f64; obs_dim];
            let mut sweeps = 0u64;
            let mut since_check = 0u64;
            while walker.ln_f() > cfg.wl.ln_f_final && sweeps < cfg.max_sweeps {
                walker.sweep(model, neighbors, &ctx);
                sweeps += 1;
                since_check += 1;
                if since_check >= cfg.wl.sweeps_per_check as u64 {
                    walker.check_and_advance(model, neighbors);
                    since_check = 0;
                }
                if sweeps % cfg.observe_every_sweeps == 0 {
                    if let Some(bin) = layout.global_grid().bin(walker.energy()) {
                        fill_pair_probabilities(
                            walker.config(),
                            neighbors,
                            num_shells,
                            m_species,
                            &mut obs_buf,
                        );
                        sro.record(bin, &obs_buf);
                    }
                }
                if let Some(ds) = deep_state.as_mut() {
                    if sweeps % ds.spec.sample_every_sweeps == 0 {
                        ds.buffer.push(walker.config().clone(), walker.energy());
                    }
                    if sweeps % ds.spec.train_every_sweeps == 0 && !ds.buffer.is_empty() {
                        for _ in 0..ds.spec.epochs_per_round {
                            ds.trainer.train_epoch(
                                ds.deep.net_mut(),
                                &ds.buffer,
                                neighbors,
                                walker.rng_mut(),
                            );
                        }
                        walker.set_kernel(build_kernel(&cfg.kernel, &deep_state));
                    }
                }
            }
            let converged = walker.ln_f() <= cfg.wl.ln_f_final;
            let rt = walker.round_trip_stats();
            let snap = snapshot_rank_telemetry(
                &tel,
                rank,
                &walker,
                [0, 0, sweeps],
                [0, 0, 0],
                [rt.round_trips(), rt.crossing_ns, 0],
                None,
            );
            let counts = vec![
                0u64,
                0,
                u64::from(converged),
                walker.ln_f().to_bits(),
                walker.total_moves(),
                0,
                0,
                0,
                rt.round_trips(),
                rt.crossing_moves,
                0,
            ];
            (RankPiece::from_walker(&walker, counts), sro, sweeps, snap)
        })
        .collect();

    let mut merged_sro = MicrocanonicalAccumulator::new(layout.global_grid().num_bins(), obs_dim);
    for (_, s, _, _) in &per_rank {
        merged_sro.merge(s);
    }
    let mut pieces = Vec::with_capacity(cfg.num_windows);
    let mut reports = Vec::with_capacity(cfg.num_windows);
    for win in 0..cfg.num_windows {
        let members: Vec<&RankPiece> = per_rank
            [win * cfg.walkers_per_window..(win + 1) * cfg.walkers_per_window]
            .iter()
            .map(|(p, _, _, _)| p)
            .collect();
        pieces.push(average_window(&members));
        let mut stats = MoveStats::new();
        let mut all_conv = true;
        let mut ln_f_max = 0.0f64;
        let mut round_trips = 0u64;
        let mut round_trip_moves = 0u64;
        for p in &members {
            stats.merge(&p.stats);
            all_conv &= p.counts[2] == 1;
            ln_f_max = ln_f_max.max(f64::from_bits(p.counts[3]));
            round_trips += p.counts[8];
            round_trip_moves += p.counts[9];
        }
        reports.push(WindowReport {
            window: win,
            exchange_attempts: 0,
            exchange_accepted: 0,
            stats,
            converged: all_conv,
            ln_f: ln_f_max,
            lost_walkers: 0,
            round_trips,
            round_trip_moves,
        });
    }
    let (dos, mask) = merge_windows(&layout, &pieces);
    let total_moves = per_rank.iter().map(|(p, _, _, _)| p.counts[4]).sum();
    let sweeps = per_rank.iter().map(|(_, _, s, _)| *s).max().unwrap_or(0);
    let telemetry = per_rank.into_iter().filter_map(|(_, _, _, t)| t).collect();
    Ok(RewlOutput {
        dos,
        mask,
        converged: reports.iter().all(|r| r.converged),
        windows: reports,
        sweeps,
        sro: merged_sro,
        total_moves,
        lost_ranks: Vec::new(),
        resumed_from: None,
        telemetry,
        recovery: crate::driver::RecoveryStats::default(),
        walkers_rebalanced: 0,
    })
}
