//! Kernel specifications: how each REWL rank builds (and retrains) its
//! proposal kernel.

use dt_proposal::{DeepProposalConfig, TrainerConfig};

/// Deep-proposal configuration for a REWL run.
#[derive(Debug, Clone)]
pub struct DeepSpec {
    /// Network / update-size configuration.
    pub proposal: DeepProposalConfig,
    /// Probability mass of the deep kernel in the local+deep mixture
    /// (0 < weight < 1; the rest goes to local swaps).
    pub deep_weight: f64,
    /// Trainer hyperparameters.
    pub trainer: TrainerConfig,
    /// Retrain every this many sweeps.
    pub train_every_sweeps: u64,
    /// Epochs per retraining round.
    pub epochs_per_round: usize,
    /// Sample-buffer capacity per rank.
    pub buffer_capacity: usize,
    /// Record a sample every this many sweeps.
    pub sample_every_sweeps: u64,
    /// Average network weights across the walkers of a window after each
    /// retraining round (the simulated NCCL/RCCL allreduce).
    pub sync_weights: bool,
}

impl Default for DeepSpec {
    fn default() -> Self {
        DeepSpec {
            proposal: DeepProposalConfig::default(),
            deep_weight: 0.2,
            trainer: TrainerConfig::default(),
            train_every_sweeps: 50,
            epochs_per_round: 4,
            buffer_capacity: 256,
            sample_every_sweeps: 2,
            sync_weights: true,
        }
    }
}

/// What proposal kernel each walker runs.
#[derive(Debug, Clone)]
pub enum KernelSpec {
    /// Classical local swaps only (the baseline).
    LocalSwap,
    /// Local swaps mixed with naive k-site random reassignments.
    RandomGlobal {
        /// Sites per global update.
        k: usize,
        /// Probability mass of the global kernel.
        weight: f64,
    },
    /// DeepThermo: local swaps mixed with the trained deep proposal.
    Deep(Box<DeepSpec>),
}

impl KernelSpec {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            KernelSpec::LocalSwap => "local",
            KernelSpec::RandomGlobal { .. } => "random-global",
            KernelSpec::Deep(_) => "deep",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(KernelSpec::LocalSwap.label(), "local");
        assert_eq!(
            KernelSpec::RandomGlobal { k: 8, weight: 0.5 }.label(),
            "random-global"
        );
        assert_eq!(KernelSpec::Deep(Box::default()).label(), "deep");
    }

    #[test]
    fn default_deep_spec_is_sane() {
        let d = DeepSpec::default();
        assert!(d.deep_weight > 0.0 && d.deep_weight < 1.0);
        assert!(d.buffer_capacity > 0);
        assert!(d.train_every_sweeps > 0);
    }
}
