//! Cluster-level checkpoint/restart for REWL runs.
//!
//! Production REWL campaigns on real machines outlive node failures by
//! periodically persisting every rank's state and restarting from the
//! newest *consistent* snapshot. This module provides the three pieces:
//!
//! * [`RankCheckpoint`] — one rank's full resumable state: the embedded
//!   [`WalkerCheckpoint`] plus the driver-level counters a plain walker
//!   snapshot does not know about (exchange counters, RNG stream
//!   position, deep-proposal weights, the SRO accumulator);
//! * [`RunManifest`] — the per-round commit record rank 0 writes *after*
//!   every surviving rank has persisted its file. A manifest names the
//!   round, a digest of the run configuration, and the set of ranks that
//!   contributed — a snapshot without its manifest is treated as
//!   non-existent, which makes the write protocol crash-consistent;
//! * [`load_resume_point`] — the recovery scan: newest manifest whose
//!   digest matches and whose listed rank files all decode wins; ranks
//!   absent from it (they were already dead at checkpoint time) fall back
//!   to their own newest earlier file, or to a fresh start.
//!
//! All files are written to a temporary name and atomically renamed into
//! place, so a crash mid-write can never corrupt an existing snapshot.
//! The formats are versioned line-oriented text with hex-encoded IEEE-754
//! (like `dt-nn`'s model format), so restores are bit-exact.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use dt_hpc::FaultPlan;
use dt_proposal::MoveStats;
use dt_wanglandau::WalkerCheckpoint;

use crate::driver::RewlConfig;

/// Format version of both the manifest and the rank file.
const VERSION: u32 = 1;

/// Where and how often a REWL run checkpoints itself.
#[derive(Debug, Clone)]
pub struct CheckpointSpec {
    /// Directory holding manifests and rank files (created on demand).
    pub dir: PathBuf,
    /// Snapshot every this many exchange rounds.
    pub every_rounds: u64,
}

impl CheckpointSpec {
    /// Checkpoint into `dir` every 10 rounds.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointSpec {
            dir: dir.into(),
            every_rounds: 10,
        }
    }

    /// Override the snapshot cadence.
    ///
    /// # Panics
    /// Panics when `every_rounds == 0`.
    pub fn every_rounds(mut self, every_rounds: u64) -> Self {
        assert!(every_rounds > 0, "checkpoint cadence must be positive");
        self.every_rounds = every_rounds;
        self
    }
}

/// Errors from checkpoint persistence.
#[derive(Debug)]
pub enum CkptError {
    /// Filesystem failure.
    Io(io::Error),
    /// Header missing or wrong version.
    BadHeader,
    /// A field was malformed or missing.
    Malformed(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::BadHeader => write!(f, "bad checkpoint header"),
            CkptError::Malformed(w) => write!(f, "malformed checkpoint: {w}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

fn malformed(what: impl Into<String>) -> CkptError {
    CkptError::Malformed(what.into())
}

/// One rank's complete resumable state at a checkpoint round.
#[derive(Debug, Clone, PartialEq)]
pub struct RankCheckpoint {
    /// Exchange attempts so far (initiator side).
    pub exchange_attempts: u64,
    /// Accepted exchanges so far.
    pub exchange_accepted: u64,
    /// Sweeps executed so far.
    pub sweeps: u64,
    /// Sweeps since the last flatness check.
    pub sweeps_since_check: u64,
    /// The walker RNG's stream position (restored with `set_word_pos` on
    /// the same per-rank seed, so the stream continues bit-exactly).
    pub rng_word_pos: u128,
    /// The transport's collective generation counters
    /// `[barrier, reduce, broadcast]` at the checkpoint round. A
    /// replacement rank restores these so its collective traffic lands in
    /// the same generation namespace as the survivors'. Zero on
    /// generation-free backends.
    pub coll_gens: [u64; 3],
    /// Walker migrations this rank has undergone (dynamic reallocation).
    pub rebalanced: u64,
    /// Boundary crossings completed in windows this rank has since left
    /// (banked at each migration so cumulative telemetry survives).
    pub rt_banked_crossings: u64,
    /// Moves inside those banked crossings.
    pub rt_banked_moves: u64,
    /// The cluster-wide rank→window assignment at the checkpoint round.
    /// Empty when the run does not rebalance (the uniform `rank / W`
    /// assignment is implied) — files stay byte-identical to earlier
    /// versions in that case.
    pub assignment: Vec<usize>,
    /// Flattened deep-proposal weights, when the run uses a deep kernel.
    pub deep_params: Option<Vec<f64>>,
    /// Acceptance statistics by kernel.
    pub stats: MoveStats,
    /// Observable dimension of the SRO accumulator.
    pub obs_dim: usize,
    /// Per-bin SRO observation totals (`bins · obs_dim` values).
    pub sro_sums: Vec<f64>,
    /// Per-bin SRO observation counts.
    pub sro_counts: Vec<u64>,
    /// The Wang–Landau walker snapshot.
    pub walker: WalkerCheckpoint,
}

fn hex_f64s(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{:016x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_hex_f64s(text: &str) -> Result<Vec<f64>, CkptError> {
    text.split_whitespace()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|_| malformed(format!("bad f64: {tok}")))
        })
        .collect()
}

fn expect_line<'a>(lines: &mut std::str::Lines<'a>, name: &str) -> Result<&'a str, CkptError> {
    let line = lines
        .next()
        .ok_or_else(|| malformed(format!("missing {name}")))?;
    line.strip_prefix(name)
        .map(str::trim_start)
        .ok_or_else(|| malformed(format!("expected {name} line")))
}

impl RankCheckpoint {
    /// Serialize to the versioned text format.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "dtrewlrank v{VERSION}").expect("write");
        writeln!(
            s,
            "counters {} {} {} {}",
            self.exchange_attempts, self.exchange_accepted, self.sweeps, self.sweeps_since_check
        )
        .expect("write");
        writeln!(s, "rng {:032x}", self.rng_word_pos).expect("write");
        writeln!(
            s,
            "coll {} {} {}",
            self.coll_gens[0], self.coll_gens[1], self.coll_gens[2]
        )
        .expect("write");
        // Rebalance state is written only when non-default, so runs
        // without dynamic reallocation produce byte-identical files.
        if self.rebalanced != 0 || self.rt_banked_crossings != 0 || self.rt_banked_moves != 0 {
            writeln!(
                s,
                "rebal {} {} {}",
                self.rebalanced, self.rt_banked_crossings, self.rt_banked_moves
            )
            .expect("write");
        }
        if !self.assignment.is_empty() {
            writeln!(
                s,
                "assign {}",
                self.assignment
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            )
            .expect("write");
        }
        match &self.deep_params {
            Some(p) => writeln!(s, "deep {}", hex_f64s(p)).expect("write"),
            None => writeln!(s, "deep -").expect("write"),
        }
        let entries: Vec<_> = self.stats.iter().collect();
        writeln!(s, "stats {}", entries.len()).expect("write");
        for (name, p, a) in entries {
            writeln!(s, "{name} {p} {a}").expect("write");
        }
        writeln!(s, "sro {} {}", self.sro_counts.len(), self.obs_dim).expect("write");
        writeln!(s, "sums {}", hex_f64s(&self.sro_sums)).expect("write");
        writeln!(
            s,
            "counts {}",
            self.sro_counts
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        )
        .expect("write");
        writeln!(s, "walker").expect("write");
        s.push_str(&self.walker.encode());
        s
    }

    /// Restore from [`RankCheckpoint::encode`] output.
    ///
    /// # Errors
    /// [`CkptError`] on structural problems.
    pub fn decode(text: &str) -> Result<Self, CkptError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(CkptError::BadHeader)?;
        if header != format!("dtrewlrank v{VERSION}") {
            return Err(CkptError::BadHeader);
        }
        let counters = expect_line(&mut lines, "counters")?;
        let nums: Vec<u64> = counters
            .split_whitespace()
            .map(|v| {
                v.parse()
                    .map_err(|_| malformed(format!("bad counter: {v}")))
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 4 {
            return Err(malformed("counters needs 4 fields"));
        }
        let rng_word_pos = u128::from_str_radix(expect_line(&mut lines, "rng")?, 16)
            .map_err(|_| malformed("bad rng position"))?;
        // Optional (files from before the recovery layer lack it): the
        // collective generation counters.
        let mut coll_gens = [0u64; 3];
        let mut peek = lines.clone();
        if let Some(rest) = peek.next().and_then(|l| l.strip_prefix("coll ")) {
            let gens: Vec<u64> = rest
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| malformed(format!("bad gen: {v}"))))
                .collect::<Result<_, _>>()?;
            if gens.len() != 3 {
                return Err(malformed("coll needs 3 fields"));
            }
            coll_gens.copy_from_slice(&gens);
            lines = peek;
        }
        // Optional (only runs with dynamic reallocation write them):
        // migration counters and the rank→window assignment.
        let mut rebalanced = 0u64;
        let mut rt_banked_crossings = 0u64;
        let mut rt_banked_moves = 0u64;
        let mut peek = lines.clone();
        if let Some(rest) = peek.next().and_then(|l| l.strip_prefix("rebal ")) {
            let vals: Vec<u64> = rest
                .split_whitespace()
                .map(|v| v.parse().map_err(|_| malformed(format!("bad rebal: {v}"))))
                .collect::<Result<_, _>>()?;
            if vals.len() != 3 {
                return Err(malformed("rebal needs 3 fields"));
            }
            rebalanced = vals[0];
            rt_banked_crossings = vals[1];
            rt_banked_moves = vals[2];
            lines = peek;
        }
        let mut assignment = Vec::new();
        let mut peek = lines.clone();
        if let Some(rest) = peek.next().and_then(|l| l.strip_prefix("assign ")) {
            assignment = rest
                .split_whitespace()
                .map(|v| {
                    v.parse()
                        .map_err(|_| malformed(format!("bad assignment: {v}")))
                })
                .collect::<Result<_, _>>()?;
            lines = peek;
        }
        let deep = expect_line(&mut lines, "deep")?;
        let deep_params = if deep == "-" {
            None
        } else {
            Some(parse_hex_f64s(deep)?)
        };
        let num_kernels: usize = expect_line(&mut lines, "stats")?
            .parse()
            .map_err(|_| malformed("bad stats count"))?;
        let mut stats = MoveStats::new();
        for _ in 0..num_kernels {
            let line = lines
                .next()
                .ok_or_else(|| malformed("missing stats entry"))?;
            let mut parts = line.split_whitespace();
            let name = parts.next().ok_or_else(|| malformed("stats kernel name"))?;
            let p: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("stats proposed"))?;
            let a: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| malformed("stats accepted"))?;
            if a > p {
                return Err(malformed(format!("{name}: accepted {a} > proposed {p}")));
            }
            stats.record_n(name, p, a);
        }
        let sro = expect_line(&mut lines, "sro")?;
        let mut sro_parts = sro.split_whitespace();
        let bins: usize = sro_parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("sro bins"))?;
        let obs_dim: usize = sro_parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| malformed("sro obs_dim"))?;
        let sro_sums = parse_hex_f64s(expect_line(&mut lines, "sums")?)?;
        let sro_counts: Vec<u64> = expect_line(&mut lines, "counts")?
            .split_whitespace()
            .map(|v| v.parse().map_err(|_| malformed(format!("bad count: {v}"))))
            .collect::<Result<_, _>>()?;
        if sro_sums.len() != bins * obs_dim || sro_counts.len() != bins {
            return Err(malformed("sro shape mismatch"));
        }
        let walker_marker = lines.next().ok_or_else(|| malformed("missing walker"))?;
        if walker_marker != "walker" {
            return Err(malformed("expected walker marker"));
        }
        let walker_text: String = lines.collect::<Vec<_>>().join("\n");
        let walker = WalkerCheckpoint::decode(&walker_text)
            .map_err(|e| malformed(format!("embedded walker: {e}")))?;
        Ok(RankCheckpoint {
            exchange_attempts: nums[0],
            exchange_accepted: nums[1],
            sweeps: nums[2],
            sweeps_since_check: nums[3],
            rng_word_pos,
            coll_gens,
            rebalanced,
            rt_banked_crossings,
            rt_banked_moves,
            assignment,
            deep_params,
            stats,
            obs_dim,
            sro_sums,
            sro_counts,
            walker,
        })
    }

    /// Persist atomically as `dir/walker-<round>-<rank>.txt`.
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn write(&self, dir: &Path, round: u64, rank: usize) -> Result<(), CkptError> {
        write_atomic(&rank_path(dir, round, rank), &self.encode())?;
        Ok(())
    }

    /// Load `dir/walker-<round>-<rank>.txt`.
    ///
    /// # Errors
    /// [`CkptError`] on missing, unreadable, or malformed files.
    pub fn load(dir: &Path, round: u64, rank: usize) -> Result<Self, CkptError> {
        let text = fs::read_to_string(rank_path(dir, round, rank))?;
        RankCheckpoint::decode(&text)
    }
}

/// The commit record of one cluster snapshot. A snapshot exists iff its
/// manifest exists: rank 0 writes the manifest only after every surviving
/// rank confirmed its rank file is on disk (write-data-then-commit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Exchange round the snapshot was taken at (start of round).
    pub round: u64,
    /// Total ranks of the run (`M · W`), dead or alive.
    pub ranks: usize,
    /// Digest of the run configuration (see [`config_digest`]).
    pub digest: u64,
    /// Which ranks contributed a rank file to this snapshot.
    pub alive: Vec<bool>,
    /// The fault plan (and chaos seed) active when the snapshot was
    /// taken. Recorded so a resume can detect that it is being replayed
    /// under a *different* injected-fault schedule — a chaos run is only
    /// deterministic when resumed under the plan it started with.
    pub faults: FaultPlan,
    /// The rank→window assignment at the snapshot round, recording the
    /// net effect of every rebalance plan applied so far. Empty on runs
    /// without dynamic reallocation — the manifest stays byte-identical
    /// to earlier versions.
    pub assignment: Vec<usize>,
}

impl RunManifest {
    /// Serialize to the versioned text format.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(s, "dtrewl v{VERSION}").expect("write");
        writeln!(s, "round {}", self.round).expect("write");
        writeln!(s, "ranks {}", self.ranks).expect("write");
        writeln!(s, "digest {:016x}", self.digest).expect("write");
        let alive: String = self
            .alive
            .iter()
            .map(|&a| if a { '1' } else { '0' })
            .collect();
        writeln!(s, "alive {alive}").expect("write");
        writeln!(s, "faults {}", self.faults.encode()).expect("write");
        if !self.assignment.is_empty() {
            writeln!(
                s,
                "assign {}",
                self.assignment
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            )
            .expect("write");
        }
        s
    }

    /// Restore from [`RunManifest::encode`] output.
    ///
    /// # Errors
    /// [`CkptError`] on structural problems.
    pub fn decode(text: &str) -> Result<Self, CkptError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(CkptError::BadHeader)?;
        if header != format!("dtrewl v{VERSION}") {
            return Err(CkptError::BadHeader);
        }
        let round: u64 = expect_line(&mut lines, "round")?
            .parse()
            .map_err(|_| malformed("bad round"))?;
        let ranks: usize = expect_line(&mut lines, "ranks")?
            .parse()
            .map_err(|_| malformed("bad ranks"))?;
        let digest = u64::from_str_radix(expect_line(&mut lines, "digest")?, 16)
            .map_err(|_| malformed("bad digest"))?;
        let alive: Vec<bool> = expect_line(&mut lines, "alive")?
            .chars()
            .map(|c| c == '1')
            .collect();
        if alive.len() != ranks {
            return Err(malformed("alive mask length mismatch"));
        }
        // Optional (manifests from before the recovery layer lack it):
        // the fault plan active when the snapshot was taken.
        let faults = match lines.next().and_then(|l| l.strip_prefix("faults ")) {
            Some(encoded) => FaultPlan::decode(encoded.trim())
                .map_err(|e| malformed(format!("bad fault plan: {e}")))?,
            None => FaultPlan::none(),
        };
        // Optional trailing line: the rank→window assignment (runs with
        // dynamic reallocation only).
        let assignment: Vec<usize> = match lines.next().and_then(|l| l.strip_prefix("assign ")) {
            Some(rest) => rest
                .split_whitespace()
                .map(|v| {
                    v.parse()
                        .map_err(|_| malformed(format!("bad assignment: {v}")))
                })
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        if !assignment.is_empty() && assignment.len() != ranks {
            return Err(malformed("assignment length mismatch"));
        }
        Ok(RunManifest {
            round,
            ranks,
            digest,
            alive,
            faults,
            assignment,
        })
    }

    /// Persist atomically as `dir/manifest-<round>.txt`.
    ///
    /// # Errors
    /// Propagates filesystem failures.
    pub fn write(&self, dir: &Path) -> Result<(), CkptError> {
        write_atomic(&manifest_path(dir, self.round), &self.encode())?;
        Ok(())
    }
}

/// Path of a rank file within a checkpoint directory.
pub fn rank_path(dir: &Path, round: u64, rank: usize) -> PathBuf {
    dir.join(format!("walker-{round:012}-{rank:04}.txt"))
}

/// Path of a manifest within a checkpoint directory.
pub fn manifest_path(dir: &Path, round: u64) -> PathBuf {
    dir.join(format!("manifest-{round:012}.txt"))
}

/// Write `contents` to `path` via a temporary sibling and an atomic
/// rename, so readers never observe a half-written file.
fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// Digest of the configuration fields that determine checkpoint
/// compatibility. Deliberately EXCLUDES `max_sweeps`, `faults`, and
/// `checkpoint` so a resumed run may extend its sweep budget, change the
/// injected-fault plan, or move the checkpoint directory; everything that
/// shapes rank state (windows, bins, seeds, kernels, schedules) is in.
pub fn config_digest(cfg: &RewlConfig) -> u64 {
    let mut stable = format!(
        "M={} W={} overlap={:016x} bins={} wl={:?} exch={} obs={} seed={} kernel={:?}",
        cfg.num_windows,
        cfg.walkers_per_window,
        cfg.overlap.to_bits(),
        cfg.num_bins,
        cfg.wl,
        cfg.exchange_every_sweeps,
        cfg.observe_every_sweeps,
        cfg.seed,
        cfg.kernel,
    );
    // Appended only when the adaptive machinery is on, so digests of
    // pre-existing (non-adaptive) runs are unchanged and their
    // checkpoints stay resumable.
    if cfg.adaptive_windows || cfg.rebalance_every > 0 {
        use std::fmt::Write;
        write!(
            stable,
            " adaptive={} rebalance={}",
            cfg.adaptive_windows, cfg.rebalance_every
        )
        .expect("write");
    }
    fnv1a(stable.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The state a resumed run starts from: a committed round plus each
/// rank's restored state (`None` ⇒ that rank starts fresh).
#[derive(Debug)]
pub struct ResumePoint {
    /// Round the winning manifest was committed at.
    pub round: u64,
    /// Per-rank restored state.
    pub ranks: Vec<Option<RankCheckpoint>>,
    /// The fault plan recorded in the winning manifest. The driver
    /// rejects a resume whose requested plan disagrees (unless the
    /// request is fault-free — turning injection off for the rerun is
    /// always safe).
    pub faults: FaultPlan,
}

/// All committed manifest rounds in `dir`, newest first. Unreadable or
/// foreign files are ignored.
fn manifest_rounds(dir: &Path) -> Vec<u64> {
    let mut rounds = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return rounds;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("manifest-")
            .and_then(|s| s.strip_suffix(".txt"))
        {
            if let Ok(round) = stem.parse::<u64>() {
                rounds.push(round);
            }
        }
    }
    rounds.sort_unstable_by(|a, b| b.cmp(a));
    rounds
}

/// Newest round (≤ `max_round`) at which `rank` has a decodable rank
/// file — the fallback for ranks missing from the winning manifest.
fn newest_rank_checkpoint(
    dir: &Path,
    rank: usize,
    max_round: u64,
) -> Option<(u64, RankCheckpoint)> {
    let mut rounds = Vec::new();
    let entries = fs::read_dir(dir).ok()?;
    let suffix = format!("-{rank:04}.txt");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name
            .strip_prefix("walker-")
            .and_then(|s| s.strip_suffix(&suffix))
        {
            if let Ok(round) = stem.parse::<u64>() {
                if round <= max_round {
                    rounds.push(round);
                }
            }
        }
    }
    rounds.sort_unstable_by(|a, b| b.cmp(a));
    for round in rounds {
        if let Ok(cp) = RankCheckpoint::load(dir, round, rank) {
            return Some((round, cp));
        }
    }
    None
}

/// Scan `dir` for the newest *consistent* snapshot: a manifest whose
/// digest and rank count match this run and whose every listed rank file
/// decodes. Inconsistent or partially-corrupt snapshots are skipped in
/// favor of older ones. Ranks the manifest lists as dead are restored
/// from their own newest earlier file when one survives, else `None`.
pub fn load_resume_point(dir: &Path, digest: u64, num_ranks: usize) -> Option<ResumePoint> {
    'manifests: for round in manifest_rounds(dir) {
        let Ok(text) = fs::read_to_string(manifest_path(dir, round)) else {
            continue;
        };
        let Ok(manifest) = RunManifest::decode(&text) else {
            continue;
        };
        if manifest.digest != digest || manifest.ranks != num_ranks || manifest.round != round {
            continue;
        }
        let mut ranks: Vec<Option<RankCheckpoint>> = Vec::with_capacity(num_ranks);
        for (rank, &alive) in manifest.alive.iter().enumerate() {
            if alive {
                match RankCheckpoint::load(dir, round, rank) {
                    Ok(cp) => ranks.push(Some(cp)),
                    // A listed file that fails to decode voids the whole
                    // snapshot — fall back to an older manifest.
                    Err(_) => continue 'manifests,
                }
            } else {
                ranks.push(newest_rank_checkpoint(dir, rank, round).map(|(_, cp)| cp));
            }
        }
        return Some(ResumePoint {
            round,
            ranks,
            faults: manifest.faults,
        });
    }
    None
}

/// The respawn path: resume ONE rank from its own newest decodable rank
/// file, ignoring manifest commit status. A killed rank writes its file
/// at the start of the round it dies in, so its newest file is an exact
/// image of the death point — but rank 0 may still be collecting commit
/// confirmations when the supervisor respawns the worker, so the newest
/// *manifest* can lag one round behind. Resuming from the lagging
/// manifest would replay a round the survivors have already finished;
/// the own file can't. Other ranks' slots are `None` (the replacement
/// only restores itself). `None` when the rank never checkpointed — the
/// replacement then starts fresh, which is exact when the death predates
/// the first snapshot.
pub fn load_own_resume_point(dir: &Path, rank: usize, num_ranks: usize) -> Option<ResumePoint> {
    let (round, cp) = newest_rank_checkpoint(dir, rank, u64::MAX)?;
    let mut ranks: Vec<Option<RankCheckpoint>> = vec![None; num_ranks];
    ranks[rank] = Some(cp);
    // The manifest (when one is committed for this round) carries the
    // recorded plan; plan validation already happened at cluster launch,
    // so a missing manifest just means an empty plan here.
    let faults = fs::read_to_string(manifest_path(dir, round))
        .ok()
        .and_then(|text| RunManifest::decode(&text).ok())
        .map(|m| m.faults)
        .unwrap_or_else(FaultPlan::none);
    Some(ResumePoint {
        round,
        ranks,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_walker() -> WalkerCheckpoint {
        WalkerCheckpoint {
            e_min: -2.0,
            e_max: 1.0,
            num_bins: 3,
            ln_g: vec![0.5, 1.5, 0.0],
            visits: vec![3, 1, 0],
            ever_visited: vec![true, true, false],
            species: vec![0, 1, 1, 0],
            num_species: 2,
            energy: -0.5,
            ln_f: 0.25,
            total_moves: 420,
            stages: 3,
            one_over_t_phase: false,
            rt_last_boundary: 1,
            rt_crossings: 6,
            rt_crossing_moves: 300,
            rt_leg_start_moves: 400,
        }
    }

    fn sample_rank() -> RankCheckpoint {
        let mut stats = MoveStats::new();
        stats.record_n("local-swap", 100, 37);
        stats.record_n("deep", 20, 5);
        RankCheckpoint {
            exchange_attempts: 12,
            exchange_accepted: 4,
            sweeps: 1234,
            sweeps_since_check: 7,
            rng_word_pos: 0xDEAD_BEEF_0123_4567_89AB_CDEF_u128,
            coll_gens: [3, 14, 1],
            rebalanced: 2,
            rt_banked_crossings: 8,
            rt_banked_moves: 5_000,
            assignment: vec![0, 1, 1, 1],
            deep_params: Some(vec![0.25, -1.5, 3e-9]),
            stats,
            obs_dim: 2,
            sro_sums: vec![1.0, 2.0, 0.0, 0.0, 5.5, -0.5],
            sro_counts: vec![4, 0, 2],
            walker: sample_walker(),
        }
    }

    #[test]
    fn rank_checkpoint_round_trip_is_exact() {
        let cp = sample_rank();
        let back = RankCheckpoint::decode(&cp.encode()).unwrap();
        assert_eq!(back, cp);
        let mut no_deep = cp;
        no_deep.deep_params = None;
        let back = RankCheckpoint::decode(&no_deep.encode()).unwrap();
        assert_eq!(back, no_deep);
    }

    #[test]
    fn rank_checkpoint_rejects_corruption() {
        let text = sample_rank().encode();
        assert!(matches!(
            RankCheckpoint::decode("garbage"),
            Err(CkptError::BadHeader)
        ));
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(RankCheckpoint::decode(&truncated).is_err());
        let tampered = text.replace("counts 4 0 2", "counts 4 0");
        assert!(RankCheckpoint::decode(&tampered).is_err());
    }

    #[test]
    fn manifest_round_trip_and_rejection() {
        let m = RunManifest {
            round: 40,
            ranks: 4,
            digest: 0x1234_5678_9abc_def0,
            alive: vec![true, true, false, true],
            faults: FaultPlan::none().kill_at_round(2, 7),
            assignment: Vec::new(),
        };
        assert_eq!(RunManifest::decode(&m.encode()).unwrap(), m);
        assert!(matches!(
            RunManifest::decode("nope"),
            Err(CkptError::BadHeader)
        ));
        let tampered = m.encode().replace("alive 1101", "alive 110");
        assert!(RunManifest::decode(&tampered).is_err());
    }

    #[test]
    fn resume_scan_prefers_newest_consistent_snapshot() {
        let dir = std::env::temp_dir().join(format!("dtrewl-ckpt-scan-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let digest = 42u64;

        // Round 10: complete snapshot of 2 ranks.
        for rank in 0..2 {
            sample_rank().write(&dir, 10, rank).unwrap();
        }
        RunManifest {
            round: 10,
            ranks: 2,
            digest,
            alive: vec![true, true],
            faults: FaultPlan::none(),
            assignment: Vec::new(),
        }
        .write(&dir)
        .unwrap();

        // Round 20: manifest lists rank 1 but its file is corrupt — the
        // whole snapshot must be skipped.
        sample_rank().write(&dir, 20, 0).unwrap();
        fs::write(rank_path(&dir, 20, 1), "corrupt").unwrap();
        RunManifest {
            round: 20,
            ranks: 2,
            digest,
            alive: vec![true, true],
            faults: FaultPlan::none(),
            assignment: Vec::new(),
        }
        .write(&dir)
        .unwrap();

        let rp = load_resume_point(&dir, digest, 2).expect("resume point");
        assert_eq!(rp.round, 10);
        assert!(rp.ranks.iter().all(Option::is_some));

        // Wrong digest ⇒ nothing to resume.
        assert!(load_resume_point(&dir, digest + 1, 2).is_none());
        // Wrong rank count ⇒ nothing to resume.
        assert!(load_resume_point(&dir, digest, 3).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_rank_falls_back_to_its_newest_earlier_file() {
        let dir = std::env::temp_dir().join(format!("dtrewl-ckpt-dead-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let digest = 7u64;

        // Rank 1 checkpointed at round 5, then died; round 15 snapshot
        // has rank 0 only.
        let mut old = sample_rank();
        old.sweeps = 500;
        old.write(&dir, 5, 1).unwrap();
        sample_rank().write(&dir, 15, 0).unwrap();
        RunManifest {
            round: 15,
            ranks: 2,
            digest,
            alive: vec![true, false],
            faults: FaultPlan::none(),
            assignment: Vec::new(),
        }
        .write(&dir)
        .unwrap();

        let rp = load_resume_point(&dir, digest, 2).expect("resume point");
        assert_eq!(rp.round, 15);
        assert_eq!(rp.ranks[1].as_ref().unwrap().sweeps, 500);

        // A rank with no file at all starts fresh.
        fs::remove_file(rank_path(&dir, 5, 1)).unwrap();
        let rp = load_resume_point(&dir, digest, 2).expect("resume point");
        assert!(rp.ranks[1].is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn coll_line_is_optional_for_pre_recovery_files() {
        // Files written before the recovery layer have no "coll" line;
        // they must still decode, with zeroed generation counters.
        let cp = sample_rank();
        let text: String = cp
            .encode()
            .lines()
            .filter(|l| !l.starts_with("coll "))
            .collect::<Vec<_>>()
            .join("\n");
        let back = RankCheckpoint::decode(&text).unwrap();
        assert_eq!(back.coll_gens, [0, 0, 0]);
        assert_eq!(back.sweeps, cp.sweeps);
    }

    #[test]
    fn rebal_and_assign_lines_are_optional() {
        // Runs without dynamic reallocation (and files from before it
        // existed) carry neither line; decode restores the defaults.
        let cp = sample_rank();
        let text: String = cp
            .encode()
            .lines()
            .filter(|l| !l.starts_with("rebal ") && !l.starts_with("assign "))
            .collect::<Vec<_>>()
            .join("\n");
        let back = RankCheckpoint::decode(&text).unwrap();
        assert_eq!(back.rebalanced, 0);
        assert_eq!(back.rt_banked_crossings, 0);
        assert_eq!(back.rt_banked_moves, 0);
        assert!(back.assignment.is_empty());
        assert_eq!(back.sweeps, cp.sweeps);
        // And a default (non-rebalancing) rank writes neither line at all.
        let mut plain = cp.clone();
        plain.rebalanced = 0;
        plain.rt_banked_crossings = 0;
        plain.rt_banked_moves = 0;
        plain.assignment = Vec::new();
        let encoded = plain.encode();
        assert!(!encoded.contains("rebal "));
        assert!(!encoded.contains("assign "));
        assert_eq!(RankCheckpoint::decode(&encoded).unwrap(), plain);
    }

    #[test]
    fn manifest_assignment_line_round_trips_and_is_optional() {
        let m = RunManifest {
            round: 6,
            ranks: 4,
            digest: 1,
            alive: vec![true; 4],
            faults: FaultPlan::none(),
            assignment: vec![0, 1, 1, 1],
        };
        assert_eq!(RunManifest::decode(&m.encode()).unwrap(), m);
        // Non-rebalancing manifests carry no assign line.
        let mut plain = m.clone();
        plain.assignment = Vec::new();
        assert!(!plain.encode().contains("assign "));
        assert_eq!(RunManifest::decode(&plain.encode()).unwrap(), plain);
        // A recorded assignment must cover every rank.
        let bad = m.encode().replace("assign 0 1 1 1", "assign 0 1");
        assert!(RunManifest::decode(&bad).is_err());
    }

    #[test]
    fn adaptive_fields_extend_the_digest_only_when_enabled() {
        let base = RewlConfig::default();
        let mut adaptive = base.clone();
        adaptive.adaptive_windows = true;
        let mut rebalancing = base.clone();
        rebalancing.rebalance_every = 4;
        // Off ⇒ identical digest to a config that predates the fields.
        assert_eq!(config_digest(&base), {
            let mut same = base.clone();
            same.max_sweeps += 1; // excluded field: digest unchanged
            config_digest(&same)
        });
        assert_ne!(config_digest(&base), config_digest(&adaptive));
        assert_ne!(config_digest(&base), config_digest(&rebalancing));
        assert_ne!(config_digest(&adaptive), config_digest(&rebalancing));
    }

    #[test]
    fn manifest_fault_line_is_optional_and_round_trips() {
        let m = RunManifest {
            round: 3,
            ranks: 2,
            digest: 9,
            alive: vec![true, true],
            faults: FaultPlan::chaos(11, 4, 20),
            assignment: Vec::new(),
        };
        let back = RunManifest::decode(&m.encode()).unwrap();
        assert_eq!(back.faults, m.faults);
        assert_eq!(back.faults.chaos_seed(), Some(11));
        // Pre-recovery manifests carry no faults line ⇒ empty plan.
        let legacy: String = m
            .encode()
            .lines()
            .filter(|l| !l.starts_with("faults "))
            .collect::<Vec<_>>()
            .join("\n");
        let back = RunManifest::decode(&legacy).unwrap();
        assert!(back.faults.is_empty());
    }

    #[test]
    fn atomic_write_replaces_existing_file() {
        let dir = std::env::temp_dir().join(format!("dtrewl-ckpt-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.txt");
        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        assert!(!dir.join("m.txt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod ckpt_proptests {
    use super::*;
    use proptest::prelude::*;

    /// Interpret raw bits as a finite f64 (NaN would break the `PartialEq`
    /// round-trip comparison even though the hex wire format preserves its
    /// bits exactly).
    fn finite(bits: u64) -> f64 {
        let v = f64::from_bits(bits);
        if v.is_finite() {
            v
        } else {
            f64::from_bits(bits & 0x000F_FFFF_FFFF_FFFF)
        }
    }

    /// Composite strategy for a full rank checkpoint. Built from nested
    /// tuple strategies (the vendored mini-proptest has no
    /// `prop_compose!`); the three groups are arbitrary.
    #[allow(clippy::type_complexity)]
    fn arb_rank_checkpoint() -> impl Strategy<Value = RankCheckpoint> {
        let group_a = (
            proptest::collection::vec(0u64..u64::MAX / 2, 4),
            (any::<u64>(), 0u64..1 << 60),
            proptest::collection::vec(0u64..1 << 50, 3),
            prop_oneof![
                proptest::collection::vec(any::<u64>(), 0..8).prop_map(Some),
                Just(None),
            ],
            proptest::collection::vec((0u64..1 << 40, 0.0f64..=1.0), 0..4),
        );
        let group_b = (
            1usize..5,
            1usize..4,
            proptest::collection::vec(any::<u64>(), 16),
            proptest::collection::vec(0u64..1 << 40, 16),
            proptest::collection::vec(any::<u64>(), 8),
        );
        let group_c = (
            proptest::collection::vec(0u64..1 << 40, 8),
            proptest::collection::vec(0u8..3, 1..10),
            0u64..u64::MAX / 2,
            0u32..64,
            any::<bool>(),
        );
        (group_a, group_b, group_c).prop_map(
            |(
                (counters, word_pos, coll_gens, deep_bits, stats_counts),
                (bins, obs_dim, sro_bits, sro_counts, walker_bits),
                (visits, species, total_moves, stages, one_over_t),
            )| {
                let mut stats = MoveStats::new();
                for (i, &(p, frac)) in stats_counts.iter().enumerate() {
                    let a = ((p as f64) * frac) as u64;
                    stats.record_n(&format!("kernel{i}"), p, a.min(p));
                }
                let walker = WalkerCheckpoint {
                    e_min: -(finite(walker_bits[0]).abs()) - 1.0,
                    e_max: finite(walker_bits[1]).abs() + 1.0,
                    num_bins: bins,
                    ln_g: walker_bits[2..2 + bins]
                        .iter()
                        .map(|&b| finite(b))
                        .collect(),
                    visits: visits[..bins].to_vec(),
                    ever_visited: visits[..bins].iter().map(|&v| v % 2 == 0).collect(),
                    species: species.clone(),
                    num_species: 3,
                    energy: finite(walker_bits[6]),
                    ln_f: finite(walker_bits[7]).abs(),
                    total_moves,
                    stages,
                    one_over_t_phase: one_over_t,
                    rt_last_boundary: match total_moves % 3 {
                        0 => 0,
                        1 => -1,
                        _ => 1,
                    },
                    rt_crossings: total_moves / 7,
                    rt_crossing_moves: total_moves / 2,
                    rt_leg_start_moves: total_moves / 3,
                };
                RankCheckpoint {
                    exchange_attempts: counters[0],
                    exchange_accepted: counters[1],
                    sweeps: counters[2],
                    sweeps_since_check: counters[3],
                    rng_word_pos: (u128::from(word_pos.1) << 64) | u128::from(word_pos.0),
                    coll_gens: [coll_gens[0], coll_gens[1], coll_gens[2]],
                    // Cover both shapes: rebalancing ranks (counters and
                    // an explicit assignment) and plain ones (defaults,
                    // which encode no extra lines at all).
                    rebalanced: counters[0] % 4,
                    rt_banked_crossings: counters[1] % 1000,
                    rt_banked_moves: counters[2] % 100_000,
                    assignment: if total_moves % 2 == 0 {
                        species.iter().map(|&s| s as usize).collect()
                    } else {
                        Vec::new()
                    },
                    deep_params: deep_bits.map(|v| v.into_iter().map(finite).collect()),
                    stats,
                    obs_dim,
                    sro_sums: sro_bits[..bins * obs_dim]
                        .iter()
                        .map(|&b| finite(b))
                        .collect(),
                    sro_counts: sro_counts[..bins].to_vec(),
                    walker,
                }
            },
        )
    }

    proptest! {
        /// Arbitrary rank state survives encode → decode bit-exactly.
        #[test]
        fn rank_checkpoint_round_trips(cp in arb_rank_checkpoint()) {
            let back = RankCheckpoint::decode(&cp.encode()).unwrap();
            prop_assert_eq!(back, cp);
        }

        /// A prefix-truncated file is rejected — or, when the cut only
        /// removes trailing whitespace, decodes to exactly the original.
        /// It never silently misdecodes to different state.
        #[test]
        fn truncated_rank_checkpoint_never_misdecodes(
            cp in arb_rank_checkpoint(),
            frac in 0.0f64..1.0,
        ) {
            let text = cp.encode();
            // The format is pure ASCII, so any byte index is a char
            // boundary.
            let cut = (text.len() as f64 * frac) as usize;
            let prefix = &text[..cut];
            match RankCheckpoint::decode(prefix) {
                Err(_) => {}
                Ok(back) => prop_assert_eq!(back, cp),
            }
        }

        /// Single-byte corruption anywhere in the file must never panic
        /// the decoder, and whatever it yields must re-encode cleanly.
        #[test]
        fn corrupt_byte_never_panics_decoder(
            cp in arb_rank_checkpoint(),
            frac in 0.0f64..1.0,
            flip in 1u8..=255,
        ) {
            let mut bytes = cp.encode().into_bytes();
            let idx = ((bytes.len() - 1) as f64 * frac) as usize;
            bytes[idx] ^= flip;
            let text = String::from_utf8_lossy(&bytes);
            if let Ok(back) = RankCheckpoint::decode(&text) {
                let _ = back.encode();
            }
        }

        /// Manifests round-trip for arbitrary shapes, including recorded
        /// chaos plans.
        #[test]
        fn manifest_round_trips(
            round in 0u64..1 << 40,
            digest in any::<u64>(),
            alive in proptest::collection::vec(any::<bool>(), 1..9),
            chaos in prop_oneof![
                (any::<u64>(), 2usize..6, 1u64..100).prop_map(Some),
                Just(None),
            ],
        ) {
            let faults = match chaos {
                Some((seed, ranks, rounds)) => FaultPlan::chaos(seed, ranks, rounds),
                None => FaultPlan::none(),
            };
            // Half the cases record a rank→window assignment (as a
            // rebalancing run would), the other half leave it implied.
            let assignment: Vec<usize> = if digest % 2 == 0 {
                alive.iter().map(|&a| usize::from(a)).collect()
            } else {
                Vec::new()
            };
            let m = RunManifest {
                round,
                ranks: alive.len(),
                digest,
                alive,
                faults,
                assignment,
            };
            let back = RunManifest::decode(&m.encode()).unwrap();
            prop_assert_eq!(back, m);
        }
    }
}
