//! The replica-exchange protocol: pairing, message tags, and the typed
//! initiator/responder handshake.
//!
//! Every `exchange_every_sweeps` sweeps the windows pair up by round
//! parity — even rounds pair windows (0,1), (2,3), …; odd rounds pair
//! (1,2), (3,4), … — and within an active pair each lower-window walker
//! (the *initiator*) is matched to one upper-window walker (the
//! *responder*) by a round-rotating slot permutation, so every walker
//! pair of adjacent windows eventually meets. The handshake is
//!
//! 1. initiator → responder: its current energy `E_a`;
//! 2. responder → initiator: `[valid, E_b, ln g_b(E_b) − ln g_b(E_a)]`;
//! 3. initiator decides with the REWL acceptance rule and sends the
//!    decision byte;
//! 4. on acceptance both sides cross-ship `(E, configuration)` and apply
//!    the swap after validating it lands in their own window.
//!
//! Every receive is deadline-bounded (`recv_resilient`): a dead or
//! silent partner aborts the attempt — state untouched — instead of
//! hanging the round. Message tags carry the round number
//! ([`tags::with_round`]) so a straggler's late frames can never be
//! mistaken for the current round's.

use std::time::{Duration, Instant};

use dt_hpc::{CommError, Communicator, Transport};
use dt_wanglandau::WlWalker;

use crate::wire;

/// Message tags of the rank protocol. All values stay below bit 63 even
/// after [`with_round`](tags::with_round) packing, so they can never
/// collide with the TCP backend's reserved collective tag space.
pub mod tags {
    /// Initiator's energy opening an exchange handshake.
    pub const EXCH_ENERGY: u64 = 1;
    /// Responder's `[valid, E_b, Δln g]` reply.
    pub const EXCH_REPLY: u64 = 2;
    /// Initiator's accept/reject decision byte.
    pub const EXCH_DECISION: u64 = 3;
    /// Cross-shipped `(E, configuration)` payload of an accepted swap.
    pub const EXCH_CONFIG: u64 = 4;
    /// Walker → window leader: local deep-proposal weights.
    pub const SYNC_PARAMS: u64 = 5;
    /// Window leader → walker: averaged deep-proposal weights.
    pub const SYNC_PARAMS_BACK: u64 = 6;
    /// Gather: a rank's window `ln g` piece.
    pub const GATHER_LN_G: u64 = 7;
    /// Gather: a rank's visited-bin mask.
    pub const GATHER_MASK: u64 = 8;
    /// Gather: a rank's move statistics.
    pub const GATHER_STATS: u64 = 9;
    /// Gather: a rank's counter vector.
    pub const GATHER_COUNTS: u64 = 10;
    /// Gather: a rank's SRO accumulator sums.
    pub const GATHER_SRO_SUMS: u64 = 11;
    /// Gather: a rank's SRO accumulator counts.
    pub const GATHER_SRO_COUNTS: u64 = 12;
    /// Checkpoint-commit confirmation to rank 0.
    pub const CKPT_META: u64 = 13;
    /// Gather: a rank's telemetry snapshot (multi-process backends only).
    pub const GATHER_TELEMETRY: u64 = 14;
    /// Rebalance: a rank's round-trip sample for the planner (rank 0).
    pub const RT_STATS: u64 = 15;
    /// Rebalance: rank 0's broadcast migration plan.
    pub const REBALANCE_PLAN: u64 = 16;
    /// Rebalance: donor → migrant serialized walker state.
    pub const REBALANCE_STATE: u64 = 17;

    /// Pack a round number into the tag space so protocol rounds can
    /// never cross-talk.
    pub fn with_round(tag: u64, round: u64) -> u64 {
        (round << 8) | tag
    }
}

/// First receive timeout of the bounded retry schedule.
const RECV_BASE: Duration = Duration::from_millis(100);
/// Retries with doubling timeout: total patience ≈ 6.3 s before a peer
/// is written off for this protocol step.
const RECV_RETRIES: u32 = 6;
/// Patience for the final gather and checkpoint commits, where peers are
/// known to be at (or past) the same protocol point.
pub(crate) const COLLECT_DEADLINE: Duration = Duration::from_secs(30);

/// How long a protocol step waits out a peer that may be mid-respawn
/// (recovery mode): covers supervisor backoff, reconnect, and the
/// replacement's replay of the death round up to this protocol point.
pub(crate) const RECOVERY_PATIENCE: Duration = Duration::from_secs(60);

/// Deadline-bounded receive with exponential backoff. Returns the first
/// hard failure: a dead peer immediately, a timeout after the full retry
/// budget. Never blocks unboundedly.
pub(crate) fn recv_resilient<T: Transport>(
    comm: &Communicator<T>,
    from: usize,
    tag: u64,
) -> Result<Vec<u8>, CommError> {
    let mut timeout = RECV_BASE;
    let mut last = CommError::Timeout { from, tag };
    for _ in 0..RECV_RETRIES {
        match comm.recv_timeout(from, tag, timeout) {
            Ok(bytes) => return Ok(bytes),
            Err(dead @ CommError::RankDead(_)) => return Err(dead),
            Err(timed_out) => last = timed_out,
        }
        timeout *= 2;
    }
    Err(last)
}

/// Receive against a SHARED absolute deadline — the collection form of
/// [`recv_resilient`], for gather-style phases where rank 0 drains many
/// peers in sequence. A flat per-message timeout there overshoots by
/// `ranks × timeout` in the worst case; one deadline bounds the whole
/// phase instead. Backoff still doubles between attempts (capped), and a
/// dead peer fails immediately unless `wait_dead` is set (recovery mode:
/// the peer may be mid-respawn and its payload still coming).
pub(crate) fn recv_until<T: Transport>(
    comm: &Communicator<T>,
    from: usize,
    tag: u64,
    deadline: Instant,
    wait_dead: bool,
) -> Result<Vec<u8>, CommError> {
    let mut timeout = RECV_BASE;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(CommError::Timeout { from, tag });
        }
        match comm.recv_timeout(from, tag, timeout.min(remaining)) {
            Ok(bytes) => return Ok(bytes),
            Err(dead @ CommError::RankDead(_)) if !wait_dead => return Err(dead),
            // Dead but tolerated: poll gently until the replacement
            // reconnects or the deadline expires.
            Err(CommError::RankDead(_)) => std::thread::sleep(Duration::from_millis(25)),
            Err(_) => {}
        }
        timeout = (timeout * 2).min(Duration::from_secs(2));
    }
}

/// Recovery-mode receive for request/response protocol steps. Outlasts a
/// respawning peer up to [`RECOVERY_PATIENCE`], and invokes `retransmit`
/// whenever the peer is up but silent: a request sent into the peer's
/// previous life died with it, so the requester must replay it for the
/// replacement. Round-scoped tags make the duplicates harmless — the
/// receiver consumes at most one copy per round and stale frames can
/// never match a later round's tag.
pub(crate) fn recv_recovering<T: Transport>(
    comm: &Communicator<T>,
    from: usize,
    tag: u64,
    mut retransmit: impl FnMut(),
) -> Result<Vec<u8>, CommError> {
    let deadline = Instant::now() + RECOVERY_PATIENCE;
    loop {
        match comm.recv_timeout(from, tag, Duration::from_millis(250)) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                if matches!(e, CommError::RankDead(_)) {
                    std::thread::sleep(Duration::from_millis(25));
                } else if comm.is_alive(from) {
                    retransmit();
                }
            }
        }
    }
}

/// A rank's role in one exchange round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeRole {
    /// Lower window of an active pair: opens the handshake with `partner`.
    Initiator {
        /// The responder rank in the window above.
        partner: usize,
    },
    /// Upper window of an active pair: answers `initiator`'s handshake.
    Responder {
        /// The initiating rank in the window below.
        initiator: usize,
    },
    /// Not part of any active pair this round.
    Idle,
}

/// The pairing function: which role `rank` plays in `round`, given the
/// `walkers_per_window × num_windows` layout. Deterministic and
/// symmetric — if it names a partner, the partner's role names this rank
/// back (see the tests).
pub fn exchange_role(
    rank: usize,
    round: u64,
    walkers_per_window: usize,
    num_windows: usize,
) -> ExchangeRole {
    let w = walkers_per_window;
    let window = rank / w;
    let slot = rank % w;
    let parity = (round % 2) as usize;
    if window % 2 == parity && window + 1 < num_windows {
        let partner_slot = (slot + round as usize) % w;
        ExchangeRole::Initiator {
            partner: (window + 1) * w + partner_slot,
        }
    } else if window % 2 != parity && window > 0 {
        let initiator_slot = (slot + w - (round as usize % w)) % w;
        ExchangeRole::Responder {
            initiator: (window - 1) * w + initiator_slot,
        }
    } else {
        ExchangeRole::Idle
    }
}

/// Assignment-aware pairing: [`exchange_role`] generalized to an
/// arbitrary rank→window map, used once dynamic walker reallocation has
/// moved ranks between windows. Within each window, members keep a
/// stable identity given by ascending rank order; the lower window's
/// member `i` (for `i < min(|lower|, |upper|)`) initiates toward the
/// upper window's member `(i + round) mod |upper|`. For the uniform
/// assignment `rank → rank / w` this reduces *exactly* to
/// [`exchange_role`] (see the tests), so enabling the adaptive path with
/// no migrations yet changes nothing.
pub fn exchange_role_assigned(
    rank: usize,
    round: u64,
    assignment: &[usize],
    num_windows: usize,
) -> ExchangeRole {
    let window = assignment[rank];
    let parity = (round % 2) as usize;
    let members = |win: usize| -> Vec<usize> {
        assignment
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w == win)
            .map(|(r, _)| r)
            .collect()
    };
    if window % 2 == parity && window + 1 < num_windows {
        let lower = members(window);
        let upper = members(window + 1);
        if upper.is_empty() {
            return ExchangeRole::Idle;
        }
        let idx = lower.iter().position(|&r| r == rank).expect("own window");
        // Only the first min(|lower|, |upper|) members initiate, so the
        // rotation below maps them injectively into the upper window.
        if idx >= lower.len().min(upper.len()) {
            return ExchangeRole::Idle;
        }
        let partner_idx = (idx + round as usize) % upper.len();
        ExchangeRole::Initiator {
            partner: upper[partner_idx],
        }
    } else if window % 2 != parity && window > 0 {
        let lower = members(window - 1);
        let upper = members(window);
        if lower.is_empty() {
            return ExchangeRole::Idle;
        }
        let idx = upper.iter().position(|&r| r == rank).expect("own window");
        let initiator_idx = (idx + upper.len() - (round as usize % upper.len())) % upper.len();
        if initiator_idx >= lower.len().min(upper.len()) {
            return ExchangeRole::Idle;
        }
        ExchangeRole::Responder {
            initiator: lower[initiator_idx],
        }
    } else {
        ExchangeRole::Idle
    }
}

/// The initiator ('a') side of one replica-exchange attempt. Returns
/// whether the swap was applied locally. Any comm failure aborts the
/// attempt without touching walker state; the partner, if alive, aborts
/// symmetrically via its own timeouts.
pub(crate) fn exchange_as_initiator<T: Transport>(
    comm: &Communicator<T>,
    walker: &mut WlWalker,
    partner: usize,
    round: u64,
    m_species: usize,
    recovery: bool,
) -> Result<bool, CommError> {
    let energy_tag = tags::with_round(tags::EXCH_ENERGY, round);
    let energy_payload = wire::encode_f64s(&[walker.energy()]);
    comm.send(partner, energy_tag, energy_payload.clone());
    // The opening receive is the only one that can face a partner
    // mid-respawn: a kill fires at the start of a round, so once the
    // reply arrives the partner is a live (replacement) process and the
    // rest of the handshake flows at normal pace.
    let reply_tag = tags::with_round(tags::EXCH_REPLY, round);
    let reply_bytes = if recovery {
        recv_recovering(comm, partner, reply_tag, || {
            comm.send(partner, energy_tag, energy_payload.clone());
        })?
    } else {
        recv_resilient(comm, partner, reply_tag)?
    };
    // reply = [valid, E_b, ln_gB(E_b) - ln_gB(E_a)]
    let reply = wire::decode_f64s(&reply_bytes).unwrap_or_default();
    let mut accepted = false;
    if reply.len() == 3 && reply[0] > 0.5 {
        let e_b = reply[1];
        if let (Some(g_mine), Some(g_at_b)) = (walker.ln_g_at(walker.energy()), walker.ln_g_at(e_b))
        {
            let ln_acc = g_mine - g_at_b + reply[2];
            let u: f64 = rand::RngExt::random(walker.rng_mut());
            accepted = ln_acc >= 0.0 || u < ln_acc.exp();
        }
    }
    comm.send(
        partner,
        tags::with_round(tags::EXCH_DECISION, round),
        vec![u8::from(accepted)],
    );
    if !accepted {
        return Ok(false);
    }
    let mine = wire::encode_state(walker.energy(), walker.config());
    comm.send(partner, tags::with_round(tags::EXCH_CONFIG, round), mine);
    let theirs = recv_resilient(comm, partner, tags::with_round(tags::EXCH_CONFIG, round))?;
    match wire::decode_state(&theirs, m_species) {
        // The accepted partner state must land in this walker's window;
        // a malformed or out-of-window payload voids the swap (the
        // partner may then hold a duplicate of our configuration, which
        // is harmless: any in-window configuration is a valid WL state).
        Ok((e, c)) if walker.ln_g_at(e).is_some() => {
            walker.set_state(c, e);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The responder ('b') side of one replica-exchange attempt.
pub(crate) fn exchange_as_responder<T: Transport>(
    comm: &Communicator<T>,
    walker: &mut WlWalker,
    initiator: usize,
    round: u64,
    m_species: usize,
    recovery: bool,
) -> Result<bool, CommError> {
    // Nothing was sent yet, so there is nothing to retransmit — the
    // opening receive just waits out a respawning initiator, which will
    // (re)send its energy when its replay reaches this protocol point.
    let energy_tag = tags::with_round(tags::EXCH_ENERGY, round);
    let e_a_bytes = if recovery {
        recv_recovering(comm, initiator, energy_tag, || {})?
    } else {
        recv_resilient(comm, initiator, energy_tag)?
    };
    let e_a = wire::decode_f64s(&e_a_bytes)
        .ok()
        .and_then(|v| v.first().copied());
    let reply = match e_a {
        Some(e_a) => match (walker.ln_g_at(e_a), walker.ln_g_at(walker.energy())) {
            (Some(g_at_a), Some(g_at_mine)) => {
                vec![1.0, walker.energy(), g_at_mine - g_at_a]
            }
            _ => vec![0.0, 0.0, 0.0],
        },
        None => vec![0.0, 0.0, 0.0],
    };
    comm.send(
        initiator,
        tags::with_round(tags::EXCH_REPLY, round),
        wire::encode_f64s(&reply),
    );
    let decision = recv_resilient(
        comm,
        initiator,
        tags::with_round(tags::EXCH_DECISION, round),
    )?;
    if decision.first() != Some(&1) {
        return Ok(false);
    }
    // Only the initiator counts the exchange, so window reports read as
    // "attempts toward the next window".
    let mine = wire::encode_state(walker.energy(), walker.config());
    let theirs = recv_resilient(comm, initiator, tags::with_round(tags::EXCH_CONFIG, round))?;
    comm.send(initiator, tags::with_round(tags::EXCH_CONFIG, round), mine);
    match wire::decode_state(&theirs, m_species) {
        Ok((e, c)) if walker.ln_g_at(e).is_some() => {
            walker.set_state(c, e);
            Ok(true)
        }
        _ => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::PairHamiltonian;
    use dt_hpc::ThreadCluster;
    use dt_lattice::{Composition, Configuration, NeighborTable, Structure, Supercell};
    use dt_proposal::LocalSwap;
    use dt_wanglandau::{EnergyGrid, WlParams, WlWalker};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn with_round_tags_never_collide_across_rounds() {
        let mut seen = std::collections::HashSet::new();
        let all_tags = [
            tags::EXCH_ENERGY,
            tags::EXCH_REPLY,
            tags::EXCH_DECISION,
            tags::EXCH_CONFIG,
            tags::SYNC_PARAMS,
            tags::SYNC_PARAMS_BACK,
            tags::GATHER_LN_G,
            tags::GATHER_MASK,
            tags::GATHER_STATS,
            tags::GATHER_COUNTS,
            tags::GATHER_SRO_SUMS,
            tags::GATHER_SRO_COUNTS,
            tags::CKPT_META,
            tags::GATHER_TELEMETRY,
            tags::RT_STATS,
            tags::REBALANCE_PLAN,
            tags::REBALANCE_STATE,
        ];
        for round in 0..2_000u64 {
            for &tag in &all_tags {
                let packed = tags::with_round(tag, round);
                assert!(seen.insert(packed), "collision: tag {tag} round {round}");
                // Bit 63 is reserved by the TCP backend for collectives.
                assert!(packed < 1 << 63);
            }
        }
        assert_eq!(seen.len(), all_tags.len() * 2_000);
        // Rounds far beyond any realistic run still stay clear of bit 63.
        assert!(tags::with_round(tags::EXCH_CONFIG, 1 << 40) < 1 << 63);
    }

    #[test]
    fn pairing_is_a_symmetric_involution() {
        for w in 1usize..=4 {
            for m in 1usize..=5 {
                let size = w * m;
                for round in 0..12u64 {
                    let mut partner_of = vec![None; size];
                    for (rank, slot) in partner_of.iter_mut().enumerate() {
                        match exchange_role(rank, round, w, m) {
                            ExchangeRole::Initiator { partner } => {
                                assert_eq!(
                                    exchange_role(partner, round, w, m),
                                    ExchangeRole::Responder { initiator: rank },
                                    "w={w} m={m} round={round} rank={rank}"
                                );
                                *slot = Some(partner);
                            }
                            ExchangeRole::Responder { initiator } => {
                                assert_eq!(
                                    exchange_role(initiator, round, w, m),
                                    ExchangeRole::Initiator { partner: rank },
                                    "w={w} m={m} round={round} rank={rank}"
                                );
                                *slot = Some(initiator);
                            }
                            ExchangeRole::Idle => {}
                        }
                    }
                    // The pairing is an involution with no self-pairs, so
                    // no rank can be claimed by two partners.
                    for rank in 0..size {
                        if let Some(p) = partner_of[rank] {
                            assert_ne!(p, rank);
                            assert_eq!(partner_of[p], Some(rank));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn assigned_pairing_reduces_to_legacy_for_uniform_assignment() {
        for w in 1usize..=4 {
            for m in 1usize..=5 {
                let size = w * m;
                let assignment: Vec<usize> = (0..size).map(|r| r / w).collect();
                for round in 0..24u64 {
                    for rank in 0..size {
                        assert_eq!(
                            exchange_role_assigned(rank, round, &assignment, m),
                            exchange_role(rank, round, w, m),
                            "w={w} m={m} round={round} rank={rank}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assigned_pairing_is_an_involution_for_skewed_assignments() {
        // Hand-built unbalanced maps plus a deterministically scrambled
        // family: the pairing must stay a self-inverse partial matching.
        let cases: Vec<(Vec<usize>, usize)> = vec![
            (vec![0, 0, 0, 1], 2),
            (vec![0, 1, 1, 1], 2),
            (vec![0, 2, 1, 0, 2, 2, 1], 3),
            (vec![1, 0, 3, 2, 0, 1, 2, 3, 3], 4),
            (vec![0, 0, 1, 2, 2, 2, 2], 3),
        ];
        for (assignment, m) in cases {
            let size = assignment.len();
            for round in 0..32u64 {
                let mut partner_of = vec![None; size];
                #[allow(clippy::needless_range_loop)]
                for rank in 0..size {
                    match exchange_role_assigned(rank, round, &assignment, m) {
                        ExchangeRole::Initiator { partner } => {
                            assert_eq!(
                                exchange_role_assigned(partner, round, &assignment, m),
                                ExchangeRole::Responder { initiator: rank },
                                "{assignment:?} round={round} rank={rank}"
                            );
                            partner_of[rank] = Some(partner);
                        }
                        ExchangeRole::Responder { initiator } => {
                            assert_eq!(
                                exchange_role_assigned(initiator, round, &assignment, m),
                                ExchangeRole::Initiator { partner: rank },
                                "{assignment:?} round={round} rank={rank}"
                            );
                            partner_of[rank] = Some(initiator);
                        }
                        ExchangeRole::Idle => {}
                    }
                }
                for rank in 0..size {
                    if let Some(p) = partner_of[rank] {
                        assert_ne!(p, rank);
                        assert_eq!(partner_of[p], Some(rank));
                        assert_ne!(assignment[p], assignment[rank], "cross-window only");
                    }
                }
            }
        }
    }

    #[test]
    fn every_cross_window_pair_eventually_meets() {
        let (w, m) = (3usize, 2usize);
        let mut met = std::collections::HashSet::new();
        for round in 0..64u64 {
            for rank in 0..w * m {
                if let ExchangeRole::Initiator { partner } = exchange_role(rank, round, w, m) {
                    met.insert((rank, partner));
                }
            }
        }
        // Each walker of window k must meet every walker of window k+1.
        for win in 0..m - 1 {
            for a in 0..w {
                for b in 0..w {
                    let pair = (win * w + a, (win + 1) * w + b);
                    assert!(met.contains(&pair), "pair {pair:?} never paired");
                }
            }
        }
    }

    fn system() -> (Supercell, NeighborTable, Composition, PairHamiltonian) {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        (cell, nt, comp, h)
    }

    fn walker_on(
        grid: EnergyGrid,
        model: &PairHamiltonian,
        neighbors: &NeighborTable,
        comp: &Composition,
        seed: u64,
    ) -> WlWalker {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(comp, &mut rng);
        let mut walker = WlWalker::new(
            grid,
            WlParams::default(),
            config,
            model,
            neighbors,
            Box::new(LocalSwap::new()),
            seed,
        );
        assert!(walker.drive_into_window(model, neighbors, 50_000));
        walker
    }

    /// On identical fresh grids the acceptance is ln_acc = 0 ⇒ certain;
    /// both sides must agree and end up holding each other's state.
    #[test]
    fn accepted_swap_agrees_on_both_sides_and_crosses_states() {
        let (_, nt, comp, h) = system();
        let grid = EnergyGrid::new(-0.645, -0.155, 24);
        let results = ThreadCluster::run(2, |comm| {
            let mut walker = walker_on(grid.clone(), &h, &nt, &comp, 40 + comm.rank() as u64);
            let e_before = walker.energy();
            let swapped = if comm.rank() == 0 {
                exchange_as_initiator(&comm, &mut walker, 1, 0, comp.num_species(), false)
            } else {
                exchange_as_responder(&comm, &mut walker, 0, 0, comp.num_species(), false)
            };
            (e_before, swapped.unwrap(), walker.energy())
        });
        let (e0, swapped0, e0_after) = results[0];
        let (e1, swapped1, e1_after) = results[1];
        assert!(swapped0 && swapped1, "both sides must apply the swap");
        assert_eq!(
            e0_after.to_bits(),
            e1.to_bits(),
            "initiator holds b's state"
        );
        assert_eq!(
            e1_after.to_bits(),
            e0.to_bits(),
            "responder holds a's state"
        );
    }

    /// Disjoint windows: the responder cannot place the initiator's
    /// energy, so the attempt must be declined symmetrically with both
    /// walkers untouched.
    #[test]
    fn out_of_window_energy_is_declined_on_both_sides() {
        let (_, nt, comp, h) = system();
        let results = ThreadCluster::run(2, |comm| {
            let mut walker = if comm.rank() == 0 {
                walker_on(EnergyGrid::new(-0.645, -0.155, 24), &h, &nt, &comp, 7)
            } else {
                // A window no physical configuration can reach: every
                // initiator energy is out-of-window for this responder.
                let mut rng = ChaCha8Rng::seed_from_u64(8);
                let config = Configuration::random(&comp, &mut rng);
                WlWalker::new(
                    EnergyGrid::new(10.0, 11.0, 8),
                    WlParams::default(),
                    config,
                    &h,
                    &nt,
                    Box::new(LocalSwap::new()),
                    8,
                )
            };
            let e_before = walker.energy();
            let swapped = if comm.rank() == 0 {
                exchange_as_initiator(&comm, &mut walker, 1, 3, comp.num_species(), false)
            } else {
                exchange_as_responder(&comm, &mut walker, 0, 3, comp.num_species(), false)
            };
            (e_before, swapped.unwrap(), walker.energy())
        });
        for (rank, (e_before, swapped, e_after)) in results.into_iter().enumerate() {
            assert!(!swapped, "rank {rank}: swap must be declined");
            assert_eq!(e_before.to_bits(), e_after.to_bits(), "state untouched");
        }
    }
}
