//! Bit-identity regression fingerprints of the thread-backend driver.
//!
//! These tests pin the *exact* bits of a fixed-seed REWL run — ln g(E),
//! the SRO accumulator, and the exchange counters — so any refactor of
//! the driver/transport stack can prove it preserved behaviour. The
//! golden values were captured from the pre-refactor monolithic driver;
//! if one of these tests fails, the sampler's output changed and the
//! change is NOT behaviour-preserving.

use dt_hamiltonian::PairHamiltonian;
use dt_lattice::{Composition, Structure, Supercell};
use dt_proposal::{DeepProposalConfig, TrainerConfig};
use dt_rewl::{run_rewl, DeepSpec, KernelSpec, RewlConfig, RewlOutput};
use dt_wanglandau::{LnfSchedule, WlParams};

fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

fn base_config(kernel: KernelSpec, seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-3,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 60_000,
        seed,
        kernel,
        ..RewlConfig::default()
    }
}

/// FNV-1a over every bit of the run's scientific output.
fn fingerprint(out: &RewlOutput) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for b in 0..out.dos.grid().num_bins() {
        eat(&out.dos.ln_g_bin(b).to_bits().to_le_bytes());
    }
    for &m in &out.mask {
        eat(&[u8::from(m)]);
    }
    for b in 0..out.sro.num_bins() {
        eat(&out.sro.count(b).to_le_bytes());
        if let Some(mean) = out.sro.bin_mean(b) {
            for v in mean {
                eat(&v.to_bits().to_le_bytes());
            }
        }
    }
    for w in &out.windows {
        eat(&w.exchange_attempts.to_le_bytes());
        eat(&w.exchange_accepted.to_le_bytes());
        eat(&w.ln_f.to_bits().to_le_bytes());
        eat(&[u8::from(w.converged)]);
    }
    eat(&out.total_moves.to_le_bytes());
    eat(&out.sweeps.to_le_bytes());
    h
}

/// Golden fingerprint of the local-swap run below, captured from the
/// pre-refactor driver (commit beae1ef).
const GOLDEN_LOCAL: u64 = 0x36ab_645c_fcbc_f323;

/// Golden fingerprint of the deep-kernel run below, captured from the
/// pre-refactor driver (commit beae1ef).
const GOLDEN_DEEP: u64 = 0x9eec_c736_9fa4_efde;

#[test]
fn local_swap_run_is_bit_identical_to_pre_refactor_driver() {
    let (_, nt, comp, h) = system();
    let cfg = base_config(KernelSpec::LocalSwap, 7);
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    let fp = fingerprint(&out);
    assert_eq!(
        fp, GOLDEN_LOCAL,
        "local-swap fingerprint drifted: got {fp:#018x}"
    );
}

#[test]
fn deep_kernel_run_is_bit_identical_to_pre_refactor_driver() {
    let (_, nt, comp, h) = system();
    let spec = DeepSpec {
        proposal: DeepProposalConfig {
            k: 4,
            hidden: vec![8],
        },
        deep_weight: 0.2,
        trainer: TrainerConfig::default(),
        train_every_sweeps: 40,
        epochs_per_round: 1,
        buffer_capacity: 64,
        sample_every_sweeps: 4,
        sync_weights: true,
    };
    let cfg = base_config(KernelSpec::Deep(Box::new(spec)), 11);
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    let fp = fingerprint(&out);
    assert_eq!(
        fp, GOLDEN_DEEP,
        "deep-kernel fingerprint drifted: got {fp:#018x}"
    );
}
