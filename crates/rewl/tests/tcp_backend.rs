//! The REWL pipeline over the TCP transport: the same rank engine on
//! loopback sockets must reproduce the thread backend bit-for-bit on a
//! fault-free run, survive an injected rank kill with graceful
//! degradation, and checkpoint/resume identically.

use dt_hamiltonian::PairHamiltonian;
use dt_hpc::{FaultPlan, RankOutcome, TcpCluster};
use dt_lattice::{Composition, Structure, Supercell};
use dt_rewl::{run_rewl, run_rewl_on, CheckpointSpec, KernelSpec, RewlConfig, RewlOutput};
use dt_wanglandau::{LnfSchedule, WlParams};

fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

const RANGE: (f64, f64) = (-0.645, -0.155);

fn base_config(seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-3,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 60_000,
        seed,
        kernel: KernelSpec::LocalSwap,
        ..RewlConfig::default()
    }
}

/// Run the full REWL pipeline over loopback TCP and return rank 0's
/// assembled output.
fn run_over_tcp(cfg: &RewlConfig, plan: FaultPlan) -> RewlOutput {
    let (_, nt, comp, h) = system();
    let size = cfg.num_windows * cfg.walkers_per_window;
    let outcomes = TcpCluster::run_loopback(size, plan, |comm| {
        run_rewl_on(comm, &h, &nt, &comp, RANGE, cfg)
    });
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        if let RankOutcome::Completed(run) = outcome {
            let run = run.expect("no unrecoverable error");
            if rank == 0 {
                root = run.output;
            }
        }
    }
    root.expect("rank 0 assembles the output")
}

/// Every scientific bit of two outputs must match.
fn assert_bit_identical(a: &RewlOutput, b: &RewlOutput) {
    assert_eq!(a.dos.grid().num_bins(), b.dos.grid().num_bins());
    for bin in 0..a.dos.grid().num_bins() {
        assert_eq!(
            a.dos.ln_g_bin(bin).to_bits(),
            b.dos.ln_g_bin(bin).to_bits(),
            "ln g differs at bin {bin}"
        );
    }
    assert_eq!(a.mask, b.mask);
    assert_eq!(a.sro.num_bins(), b.sro.num_bins());
    for bin in 0..a.sro.num_bins() {
        assert_eq!(a.sro.count(bin), b.sro.count(bin), "sro count bin {bin}");
        let (ma, mb) = (a.sro.bin_mean(bin), b.sro.bin_mean(bin));
        match (ma, mb) {
            (Some(ma), Some(mb)) => {
                for (va, vb) in ma.iter().zip(mb.iter()) {
                    assert_eq!(va.to_bits(), vb.to_bits(), "sro mean bin {bin}");
                }
            }
            (None, None) => {}
            _ => panic!("sro visited-mask differs at bin {bin}"),
        }
    }
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.total_moves, b.total_moves);
    assert_eq!(a.lost_ranks, b.lost_ranks);
    for (wa, wb) in a.windows.iter().zip(b.windows.iter()) {
        assert_eq!(wa, wb, "window report differs");
    }
}

/// A fault-free TCP run is bit-identical to the thread backend under the
/// same seed: same RNG consumption, same message schedule, same merge.
#[test]
fn fault_free_tcp_run_matches_thread_backend_bit_for_bit() {
    let (_, nt, comp, h) = system();
    let cfg = base_config(7);
    let thread_out = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    let tcp_out = run_over_tcp(&cfg, FaultPlan::none());
    assert_bit_identical(&thread_out, &tcp_out);
}

/// Killing a non-root walker over TCP degrades gracefully exactly like
/// the thread fabric: the run completes and records the loss.
#[test]
fn killed_rank_over_tcp_degrades_gracefully() {
    let mut cfg = base_config(3);
    cfg.wl.ln_f_final = 5e-6;
    cfg.max_sweeps = 300_000;
    let out = run_over_tcp(&cfg, FaultPlan::none().kill_at_round(3, 4));
    assert_eq!(out.lost_ranks, vec![3]);
    assert_eq!(out.windows[0].lost_walkers, 0);
    assert_eq!(out.windows[1].lost_walkers, 1);
    assert!(out.converged, "survivors must still converge");
}

/// Checkpoint over TCP, kill the cluster mid-run, rerun over TCP: the
/// second run resumes from the snapshot instead of starting over.
#[test]
fn tcp_cluster_checkpoints_and_resumes() {
    let dir = std::env::temp_dir().join(format!("dtrewl-tcp-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = base_config(11);
    cfg.checkpoint = Some(CheckpointSpec::new(&dir).every_rounds(5));

    // First attempt: rank 1 dies late; the run still completes but has
    // committed several snapshots by then.
    let first = run_over_tcp(&cfg, FaultPlan::none().kill_at_round(1, 10));
    assert_eq!(first.lost_ranks, vec![1]);
    assert!(
        std::fs::read_dir(&dir).unwrap().count() > 0,
        "snapshots must exist"
    );

    // Rerun over the same directory, fault-free: must resume, not restart.
    let second = run_over_tcp(&cfg, FaultPlan::none());
    assert!(
        second.resumed_from.is_some(),
        "second run must resume from a checkpoint"
    );
    assert!(second.lost_ranks.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The self-healing gate: a tcp cluster that loses a walker mid-run
/// under recovery mode (supervised respawn + checkpoint rejoin) must
/// converge to exactly the fault-free answer, bit for bit — no lost
/// ranks, no degraded windows, same DOS, same SRO, same move counts.
#[test]
fn killed_rank_with_recovery_is_bit_identical_to_fault_free() {
    let (_, nt, comp, h) = system();
    let dir = std::env::temp_dir().join(format!("dtrewl-tcp-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free baseline on the thread backend (itself bit-identical to
    // fault-free TCP, covered above).
    let baseline = run_rewl(&h, &nt, &comp, RANGE, &base_config(5)).unwrap();

    let mut cfg = base_config(5);
    cfg.checkpoint = Some(CheckpointSpec::new(&dir).every_rounds(1));
    cfg.recovery = true;
    let size = cfg.num_windows * cfg.walkers_per_window;
    // Rank 1 (window 0, slot 1 — a retrain member and exchange peer)
    // dies at round 3; the supervising harness respawns it and the
    // replacement rejoins from its round-3 checkpoint.
    let plan = FaultPlan::none().kill_at_round(1, 3);
    let outcomes = TcpCluster::run_loopback_recovering(size, plan, 2, |comm, respawns| {
        let mut life_cfg = cfg.clone();
        life_cfg.respawns = respawns;
        run_rewl_on(comm, &h, &nt, &comp, RANGE, &life_cfg)
    });
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        let run = outcome
            .completed()
            .unwrap_or_else(|| panic!("rank {rank} must complete under recovery"))
            .expect("no unrecoverable error");
        if rank == 0 {
            root = run.output;
        }
    }
    let out = root.expect("rank 0 assembles the output");

    assert_eq!(out.lost_ranks, Vec::<usize>::new(), "no rank stays lost");
    assert_eq!(out.windows[0].lost_walkers, 0);
    assert_eq!(out.windows[1].lost_walkers, 0);
    assert_eq!(out.recovery.ranks_respawned, 1, "one supervised respawn");
    assert!(
        out.recovery.rejoin_duration_ns > 0,
        "the replacement must report its rejoin time"
    );
    assert_bit_identical(&baseline, &out);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Telemetry flows back over the wire: rank 0's output carries a
/// snapshot per surviving rank, traffic counters included.
#[test]
fn telemetry_is_gathered_over_the_wire() {
    let mut cfg = base_config(7);
    cfg.telemetry = true;
    let out = run_over_tcp(&cfg, FaultPlan::none());
    assert_eq!(out.telemetry.len(), 4, "one snapshot per rank");
    for (rank, snap) in out.telemetry.iter().enumerate() {
        assert_eq!(snap.rank, rank);
        let sends = snap
            .counters
            .iter()
            .find(|(n, _)| n == "comm_sends")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(sends > 0, "rank {rank} sent protocol messages");
    }
}
