//! End-to-end REWL validation: the parallel, windowed, replica-exchanging
//! sampler must reproduce the exact density of states of an enumerable
//! system, deterministically.

use dt_hamiltonian::{exact::ExactDos, PairHamiltonian};
use dt_lattice::{Composition, Structure, Supercell};
use dt_proposal::{DeepProposalConfig, TrainerConfig};
use dt_rewl::{run_rewl, run_windows_serial, DeepSpec, KernelSpec, RewlConfig};
use dt_wanglandau::{LnfSchedule, WlParams};

fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

fn wl_params() -> WlParams {
    WlParams {
        ln_f_initial: 1.0,
        ln_f_final: 5e-6,
        schedule: LnfSchedule::Flatness {
            flatness: 0.8,
            reduction: 0.5,
        },
        sweeps_per_check: 20,
    }
}

fn base_config(kernel: KernelSpec, seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: wl_params(),
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 300_000,
        seed,
        kernel,
        ..RewlConfig::default()
    }
}

/// Max |Δ ln g| between a REWL output and exact enumeration.
fn compare_to_exact(out: &dt_rewl::RewlOutput, comp: &Composition, h: &PairHamiltonian) -> f64 {
    let (_, nt, _, _) = system();
    let exact = ExactDos::enumerate(h, &nt, comp);
    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));
    let mut max_err: f64 = 0.0;
    for (&e, &count) in exact.energies().iter().zip(exact.counts()) {
        let bin = dos.grid().bin(e).expect("level in grid");
        assert!(out.mask[bin], "exact level {e} unvisited");
        max_err = max_err.max((dos.ln_g_bin(bin) - (count as f64).ln()).abs());
    }
    max_err
}

#[test]
fn rewl_matches_exact_dos() {
    let (_, nt, comp, h) = system();
    let cfg = base_config(KernelSpec::LocalSwap, 3);
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    assert!(out.converged, "REWL did not converge");
    // Replica exchange must actually fire.
    assert!(out.windows[0].exchange_attempts > 0);
    assert!(
        out.windows[0].exchange_rate() > 0.05,
        "exchange rate {}",
        out.windows[0].exchange_rate()
    );
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.4, "max |Δ ln g| = {err}");
}

#[test]
fn rewl_is_deterministic() {
    let (_, nt, comp, h) = system();
    let cfg = base_config(KernelSpec::LocalSwap, 11);
    let a = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    let b = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    assert_eq!(
        a.dos.ln_g(),
        b.dos.ln_g(),
        "same seed must give identical DOS"
    );
    assert_eq!(a.mask, b.mask);
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.total_moves, b.total_moves);

    let c = run_rewl(
        &h,
        &nt,
        &comp,
        (-0.645, -0.155),
        &base_config(KernelSpec::LocalSwap, 12),
    )
    .unwrap();
    assert_ne!(a.dos.ln_g(), c.dos.ln_g(), "different seeds must differ");
}

#[test]
fn serial_windows_match_exact_too() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(KernelSpec::LocalSwap, 5);
    cfg.max_sweeps = 400_000;
    let out = run_windows_serial(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    assert!(out.converged);
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.4, "max |Δ ln g| = {err}");
}

#[test]
fn deep_rewl_with_training_matches_exact() {
    let (_, nt, comp, h) = system();
    let deep = DeepSpec {
        proposal: DeepProposalConfig {
            k: 4,
            hidden: vec![12],
        },
        deep_weight: 0.25,
        trainer: TrainerConfig {
            k: 4,
            lr: 3e-3,
            grad_clip: 5.0,
            configs_per_batch: 8,
        },
        train_every_sweeps: 100,
        epochs_per_round: 2,
        buffer_capacity: 64,
        sample_every_sweeps: 5,
        sync_weights: true,
    };
    let mut cfg = base_config(KernelSpec::Deep(Box::new(deep)), 7);
    cfg.max_sweeps = 300_000;
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    assert!(out.converged, "deep REWL did not converge");
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.4, "max |Δ ln g| = {err}");
    // Both kernels must have been exercised.
    let mut saw_deep = false;
    let mut saw_local = false;
    for win in &out.windows {
        for (name, p, _) in win.stats.iter() {
            if name.contains("deep") && p > 0 {
                saw_deep = true;
            }
            if name.contains("local") && p > 0 {
                saw_local = true;
            }
        }
    }
    assert!(saw_deep && saw_local, "mixture must exercise both kernels");
}

#[test]
fn sro_accumulator_is_populated() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(KernelSpec::LocalSwap, 9);
    cfg.max_sweeps = 50_000;
    cfg.wl.ln_f_final = 1e-4; // quick run; SRO only needs coverage
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    // The L=2 spectrum is sparse (levels every 2-4 bins), so only a
    // fraction of the 49 bins is reachable at all.
    let sampled_bins = (0..cfg.num_bins).filter(|&b| out.sro.count(b) > 0).count();
    assert!(sampled_bins >= 5, "only {sampled_bins} bins sampled");
    // Pair probabilities must sum to 1 over (a,b) within the shell.
    for b in 0..cfg.num_bins {
        if let Some(mean) = out.sro.bin_mean(b) {
            let total: f64 = mean.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "bin {b}: Σp = {total}");
        }
    }
}

/// With telemetry on, every rank contributes a snapshot with phase
/// timings, acceptance counters, and fabric traffic counters.
#[test]
fn telemetry_snapshots_cover_every_rank() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(KernelSpec::LocalSwap, 21);
    cfg.telemetry = true;
    cfg.wl.ln_f_final = 1e-3; // short run; telemetry only needs coverage
    let out = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg).unwrap();
    assert_eq!(out.telemetry.len(), 4, "one snapshot per surviving rank");
    for (rank, t) in out.telemetry.iter().enumerate() {
        assert_eq!(t.rank, rank);
        let mb = t.phase_stat(dt_telemetry::Phase::MoveBatch).unwrap();
        assert!(mb.count > 0, "rank {rank} recorded no sweeps");
        let ee = t.phase_stat(dt_telemetry::Phase::EnergyEval).unwrap();
        assert!(ee.count > mb.count, "ΔE evals outnumber sweeps");
        assert!(t.phase_stat(dt_telemetry::Phase::Allreduce).unwrap().count > 0);
        assert!(t.counter("sweeps").unwrap() > 0);
        assert!(t.counter("comm_sends").unwrap() > 0);
        assert!(t.counter("proposed_local-swap").unwrap() > 0);
        assert!(t.gauge("ln_f").is_some());
    }
    // The JSONL export of a real run must be syntactically valid.
    for line in dt_telemetry::to_jsonl(&out.telemetry).lines() {
        dt_telemetry::validate_json(line).expect("telemetry JSONL line parses");
    }
    // Telemetry must not perturb sampling: a telemetry-off run with the
    // same seed produces the identical DOS.
    let mut cfg_off = cfg.clone();
    cfg_off.telemetry = false;
    let base = run_rewl(&h, &nt, &comp, (-0.645, -0.155), &cfg_off).unwrap();
    assert_eq!(out.dos.ln_g(), base.dos.ln_g());
    assert!(base.telemetry.is_empty());
}
