//! Fault-tolerance integration: REWL runs on a lossy simulated cluster
//! must degrade gracefully when walkers die, resume from cluster
//! checkpoints, and never hang on dropped messages.

use std::time::Instant;

use dt_hamiltonian::{exact::ExactDos, PairHamiltonian};
use dt_hpc::FaultPlan;
use dt_lattice::{Composition, Structure, Supercell};
use dt_rewl::{run_rewl, CheckpointSpec, KernelSpec, RewlConfig};
use dt_wanglandau::{LnfSchedule, WlParams};

/// BCC 2×2×2, 2 species, one attractive first-shell pair: small enough to
/// enumerate exactly, rich enough to need all four ranks.
fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

const RANGE: (f64, f64) = (-0.645, -0.155);

fn base_config(seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 5e-6,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 300_000,
        seed,
        kernel: KernelSpec::LocalSwap,
        ..RewlConfig::default()
    }
}

/// Max |Δ ln g| between a REWL output and exact enumeration.
fn compare_to_exact(out: &dt_rewl::RewlOutput, comp: &Composition, h: &PairHamiltonian) -> f64 {
    let (_, nt, _, _) = system();
    let exact = ExactDos::enumerate(h, &nt, comp);
    let mut dos = out.dos.clone();
    dos.normalize_total(comp.ln_num_configurations(), Some(&out.mask));
    let mut max_err: f64 = 0.0;
    for (&e, &count) in exact.energies().iter().zip(exact.counts()) {
        let bin = dos.grid().bin(e).expect("level in grid");
        assert!(out.mask[bin], "exact level {e} unvisited");
        max_err = max_err.max((dos.ln_g_bin(bin) - (count as f64).ln()).abs());
    }
    max_err
}

/// Killing one walker early leaves its window to the survivor: the run
/// completes, records the loss, and the merged DOS stays accurate.
#[test]
fn killed_walker_degrades_gracefully() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(3);
    // Rank 3 = window 1, slot 1. Rank 0 (the gather root) must survive.
    cfg.faults = FaultPlan::none().kill_at_round(3, 4);
    let out = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    assert_eq!(out.lost_ranks, vec![3]);
    assert_eq!(out.windows[0].lost_walkers, 0);
    assert_eq!(out.windows[1].lost_walkers, 1);
    assert!(out.converged, "survivors should still converge");
    assert!(
        out.windows[0].exchange_attempts > 0,
        "exchange must keep running against the surviving slot"
    );
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.8, "degraded DOS err {err}");
}

/// A checkpointed run that loses a rank can be rerun over the same
/// directory: the rerun resumes from the newest consistent snapshot,
/// revives the lost rank from its last written state, and converges to
/// the exact DOS with nothing lost.
#[test]
fn checkpointed_run_resumes_after_kill() {
    let (_, nt, comp, h) = system();
    let dir = std::env::temp_dir().join(format!("dtrewl-ft-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = base_config(3);
    cfg.checkpoint = Some(CheckpointSpec::new(&dir).every_rounds(5));
    // Kill rank 2 (window 1, slot 0) after the round-10 checkpoint exists.
    cfg.faults = FaultPlan::none().kill_at_round(2, 12);
    let crashed = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    assert_eq!(crashed.lost_ranks, vec![2]);
    assert_eq!(crashed.resumed_from, None);
    assert!(
        std::fs::read_dir(&dir).unwrap().count() > 0,
        "checkpoints must have been written"
    );

    // Same config, same directory, faults cleared: the rerun must resume
    // rather than start over, and must recover the lost walker.
    let mut cfg_retry = cfg.clone();
    cfg_retry.faults = FaultPlan::none();
    let out = run_rewl(&h, &nt, &comp, RANGE, &cfg_retry).unwrap();
    assert!(
        out.resumed_from.is_some(),
        "second run must resume from a snapshot"
    );
    assert_eq!(out.lost_ranks, Vec::<usize>::new());
    assert_eq!(out.windows[1].lost_walkers, 0);
    assert!(out.converged);
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.6, "resumed DOS err {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint directory records the failure schedule it was written
/// under. Resuming it under a *different* non-empty schedule is refused
/// with a typed error (silently replaying a run under new faults would
/// invalidate any determinism claim); resuming under the identical
/// schedule — or with faults cleared — proceeds.
#[test]
fn resume_under_different_fault_plan_is_refused() {
    let (_, nt, comp, h) = system();
    let dir = std::env::temp_dir().join(format!("dtrewl-ft-planck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = base_config(9);
    cfg.wl.ln_f_final = 1e-3; // converge quickly; this test is about startup
    cfg.max_sweeps = 60_000;
    cfg.checkpoint = Some(CheckpointSpec::new(&dir).every_rounds(2));
    // A plan whose kill never fires: recorded into every manifest.
    cfg.faults = FaultPlan::none().kill_at_round(3, 999_999);
    let first = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    assert!(first.lost_ranks.is_empty());

    // Same directory, different schedule: refused before any work.
    let mut cfg_other = cfg.clone();
    cfg_other.faults = FaultPlan::none().kill_at_round(2, 7);
    match run_rewl(&h, &nt, &comp, RANGE, &cfg_other) {
        Err(dt_rewl::RewlError::FaultPlanMismatch {
            recorded,
            requested,
        }) => {
            assert!(recorded.contains("kill:3:999999"), "recorded: {recorded}");
            assert!(requested.contains("kill:2:7"), "requested: {requested}");
        }
        other => panic!("expected FaultPlanMismatch, got {other:?}"),
    }

    // The identical schedule resumes cleanly.
    let again = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    assert!(again.resumed_from.is_some(), "identical plan must resume");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Dropped protocol messages surface as bounded timeouts, never hangs:
/// both sides of a broken exchange abandon it and the run completes well
/// inside the fabric's watchdog.
#[test]
fn dropped_messages_never_hang_the_run() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(3);
    // Round 0 pairs rank 0 with rank 2: drop the very first 0→2 message
    // (the exchange-energy request) and a later 2→0 protocol message.
    cfg.faults = FaultPlan::none()
        .drop_message(0, 2, 0)
        .drop_message(2, 0, 1);
    let start = Instant::now();
    let out = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "lossy run took {elapsed:?}; recv timeouts are not bounding waits"
    );
    assert_eq!(out.lost_ranks, Vec::<usize>::new());
    assert!(out.converged);
    let err = compare_to_exact(&out, &comp, &h);
    assert!(err < 0.6, "DOS err {err} after dropped messages");
}

/// Rank 0 is the gather root: losing it is unrecoverable and surfaces
/// as a typed error instead of a panic.
#[test]
fn root_rank_death_is_a_typed_error() {
    let (_, nt, comp, h) = system();
    let mut cfg = base_config(3);
    cfg.faults = FaultPlan::none().kill_at_round(0, 2);
    match run_rewl(&h, &nt, &comp, RANGE, &cfg) {
        Err(dt_rewl::RewlError::RootRankDied(cause)) => {
            assert!(cause.contains("rank 0"), "cause: {cause}");
        }
        other => panic!("expected RootRankDied, got {other:?}"),
    }
}
