//! Adaptive energy windows + dynamic walker reallocation, end to end.
//!
//! Three guarantees, each pinned by a test:
//!
//! 1. an adaptive run (pilot-seeded non-uniform windows + periodic
//!    rebalancing) still converges and reports round-trip statistics;
//! 2. the adaptive protocol is backend-agnostic: thread fabric and
//!    loopback TCP produce bit-identical output under the same seed;
//! 3. the adaptive protocol composes with self-healing: a mid-run rank
//!    kill under recovery mode converges to exactly the fault-free
//!    answer, bit for bit — rebalance plans are deterministic given the
//!    run seed, so the respawned rank replays the same migrations.

use dt_hamiltonian::PairHamiltonian;
use dt_hpc::{FaultPlan, RankOutcome, TcpCluster};
use dt_lattice::{Composition, Structure, Supercell};
use dt_rewl::{
    pilot_window_costs, run_rewl, run_rewl_on, CheckpointSpec, KernelSpec, RewlConfig, RewlOutput,
    WindowLayout,
};
use dt_wanglandau::{EnergyGrid, LnfSchedule, WlParams};

fn system() -> (
    Supercell,
    dt_lattice::NeighborTable,
    Composition,
    PairHamiltonian,
) {
    let cell = Supercell::cubic(Structure::bcc(), 2);
    let nt = cell.neighbor_table(1);
    let comp = Composition::equiatomic(2, cell.num_sites()).unwrap();
    let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
    (cell, nt, comp, h)
}

const RANGE: (f64, f64) = (-0.645, -0.155);

fn adaptive_config(seed: u64) -> RewlConfig {
    RewlConfig {
        num_windows: 2,
        walkers_per_window: 2,
        overlap: 0.75,
        num_bins: 49,
        wl: WlParams {
            ln_f_initial: 1.0,
            ln_f_final: 1e-3,
            schedule: LnfSchedule::Flatness {
                flatness: 0.8,
                reduction: 0.5,
            },
            sweeps_per_check: 20,
        },
        exchange_every_sweeps: 10,
        observe_every_sweeps: 2,
        max_sweeps: 60_000,
        seed,
        kernel: KernelSpec::LocalSwap,
        adaptive_windows: true,
        rebalance_every: 2,
        ..RewlConfig::default()
    }
}

fn run_over_tcp(cfg: &RewlConfig, plan: FaultPlan) -> RewlOutput {
    let (_, nt, comp, h) = system();
    let size = cfg.num_windows * cfg.walkers_per_window;
    let outcomes = TcpCluster::run_loopback(size, plan, |comm| {
        run_rewl_on(comm, &h, &nt, &comp, RANGE, cfg)
    });
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        if let RankOutcome::Completed(run) = outcome {
            let run = run.expect("no unrecoverable error");
            if rank == 0 {
                root = run.output;
            }
        }
    }
    root.expect("rank 0 assembles the output")
}

/// Every scientific bit of two outputs must match.
fn assert_bit_identical(a: &RewlOutput, b: &RewlOutput) {
    assert_eq!(a.dos.grid().num_bins(), b.dos.grid().num_bins());
    for bin in 0..a.dos.grid().num_bins() {
        assert_eq!(
            a.dos.ln_g_bin(bin).to_bits(),
            b.dos.ln_g_bin(bin).to_bits(),
            "ln g differs at bin {bin}"
        );
    }
    assert_eq!(a.mask, b.mask);
    for bin in 0..a.sro.num_bins() {
        assert_eq!(a.sro.count(bin), b.sro.count(bin), "sro count bin {bin}");
    }
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.sweeps, b.sweeps);
    assert_eq!(a.total_moves, b.total_moves);
    assert_eq!(a.lost_ranks, b.lost_ranks);
    assert_eq!(a.walkers_rebalanced, b.walkers_rebalanced);
    for (wa, wb) in a.windows.iter().zip(b.windows.iter()) {
        assert_eq!(wa, wb, "window report differs");
    }
}

/// The pilot pass is a pure function of (system, layout, seed): same
/// seed, same per-window costs, bit for bit — every rank can compute it
/// locally without communication.
#[test]
fn pilot_window_costs_are_deterministic() {
    let (_, nt, comp, h) = system();
    let grid = EnergyGrid::new(RANGE.0, RANGE.1, 49);
    let uniform = WindowLayout::new(grid, 2, 0.75);
    let a = pilot_window_costs(&h, &nt, &comp, &uniform, 7);
    let b = pilot_window_costs(&h, &nt, &comp, &uniform, 7);
    assert_eq!(a.len(), 2);
    assert!(a.iter().all(|c| c.is_finite() && *c > 0.0));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits(), "pilot costs must be pure");
    }
    let c = pilot_window_costs(&h, &nt, &comp, &uniform, 8);
    assert!(
        a.iter().zip(&c).any(|(x, y)| x.to_bits() != y.to_bits()),
        "different seeds should explore differently"
    );
}

/// An adaptive run converges and reports per-window round-trip stats
/// through the window reports.
#[test]
fn adaptive_run_converges_and_reports_round_trips() {
    let (_, nt, comp, h) = system();
    let cfg = adaptive_config(7);
    let out = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    assert!(out.converged, "adaptive run must still converge");
    // The BCC-2 toy spectrum is discrete — only a handful of bins are
    // reachable — so assert the visited set matches the uniform-layout
    // run rather than full coverage.
    let mut uniform_cfg = cfg.clone();
    uniform_cfg.adaptive_windows = false;
    uniform_cfg.rebalance_every = 0;
    let uniform = run_rewl(&h, &nt, &comp, RANGE, &uniform_cfg).unwrap();
    assert_eq!(out.mask, uniform.mask, "same reachable bins either way");
    for w in &out.windows {
        assert!(
            w.round_trips > 0,
            "window {} reported no round trips",
            w.window
        );
        assert!(w.round_trip_moves > 0);
    }
}

/// The adaptive protocol (pilot layout, RT stats gossip, rebalance
/// rounds) is backend-agnostic: loopback TCP reproduces the thread
/// fabric bit for bit.
#[test]
fn adaptive_tcp_run_matches_thread_backend_bit_for_bit() {
    let (_, nt, comp, h) = system();
    let cfg = adaptive_config(7);
    let thread_out = run_rewl(&h, &nt, &comp, RANGE, &cfg).unwrap();
    let tcp_out = run_over_tcp(&cfg, FaultPlan::none());
    assert_bit_identical(&thread_out, &tcp_out);
}

/// The adaptive protocol composes with self-healing: adaptive windows +
/// periodic rebalancing + a mid-run rank kill under recovery mode must
/// converge to exactly the fault-free answer. This pins two properties
/// at once: rebalance plans are deterministic given the run seed, and a
/// respawned rank restores its window assignment (possibly migrated)
/// from its checkpoint.
#[test]
fn adaptive_recovery_run_is_bit_identical_to_fault_free() {
    let (_, nt, comp, h) = system();
    let dir = std::env::temp_dir().join(format!("dtrewl-adaptive-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let baseline = run_rewl(&h, &nt, &comp, RANGE, &adaptive_config(5)).unwrap();

    let mut cfg = adaptive_config(5);
    cfg.checkpoint = Some(CheckpointSpec::new(&dir).every_rounds(1));
    cfg.recovery = true;
    let size = cfg.num_windows * cfg.walkers_per_window;
    // Rank 1 dies at round 3 — the round right after a rebalance round
    // (cadence 2 fires at rounds 1, 3, 5, ...), so the respawned rank
    // must restore a possibly-migrated assignment from its checkpoint
    // and replay the round-3 rebalance deterministically.
    let plan = FaultPlan::none().kill_at_round(1, 3);
    let outcomes = TcpCluster::run_loopback_recovering(size, plan, 2, |comm, respawns| {
        let mut life_cfg = cfg.clone();
        life_cfg.respawns = respawns;
        run_rewl_on(comm, &h, &nt, &comp, RANGE, &life_cfg)
    });
    let mut root = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        let run = outcome
            .completed()
            .unwrap_or_else(|| panic!("rank {rank} must complete under recovery"))
            .expect("no unrecoverable error");
        if rank == 0 {
            root = run.output;
        }
    }
    let out = root.expect("rank 0 assembles the output");

    assert_eq!(out.lost_ranks, Vec::<usize>::new(), "no rank stays lost");
    assert_eq!(out.recovery.ranks_respawned, 1, "one supervised respawn");
    assert_bit_identical(&baseline, &out);
    let _ = std::fs::remove_dir_all(&dir);
}
