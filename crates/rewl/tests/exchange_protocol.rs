//! Property tests of the public exchange-protocol surface: the pairing
//! function and the round-tagged message namespace.

use dt_rewl::exchange::tags;
use dt_rewl::{exchange_role, ExchangeRole};
use proptest::prelude::*;

proptest! {
    /// If the pairing names a partner, the partner names this rank back
    /// with the complementary role — no rank can ever wait on a peer
    /// that is not talking to it.
    #[test]
    fn pairing_symmetry(
        w in 1usize..6,
        m in 1usize..6,
        round in 0u64..1_000,
        rank_pick in any::<usize>(),
    ) {
        let rank = rank_pick % (w * m);
        match exchange_role(rank, round, w, m) {
            ExchangeRole::Initiator { partner } => {
                prop_assert!(partner < w * m);
                prop_assert_eq!(
                    exchange_role(partner, round, w, m),
                    ExchangeRole::Responder { initiator: rank }
                );
                // Initiators live in the window below their partner.
                prop_assert_eq!(rank / w + 1, partner / w);
            }
            ExchangeRole::Responder { initiator } => {
                prop_assert!(initiator < w * m);
                prop_assert_eq!(
                    exchange_role(initiator, round, w, m),
                    ExchangeRole::Initiator { partner: rank }
                );
            }
            ExchangeRole::Idle => {}
        }
    }

    /// Round-tagged protocol messages can never collide across rounds,
    /// tags, or with the transport's reserved collective space (bit 63).
    #[test]
    fn round_tags_are_injective(
        tag_a in 1u64..=14,
        tag_b in 1u64..=14,
        round_a in 0u64..100_000,
        round_b in 0u64..100_000,
    ) {
        let a = tags::with_round(tag_a, round_a);
        let b = tags::with_round(tag_b, round_b);
        prop_assert!(a < 1 << 63);
        prop_assert!(b < 1 << 63);
        if (tag_a, round_a) != (tag_b, round_b) {
            prop_assert_ne!(a, b);
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// A single window (or a single total rank) never exchanges.
    #[test]
    fn single_window_is_always_idle(w in 1usize..6, round in 0u64..64, slot_pick in any::<usize>()) {
        let rank = slot_pick % w;
        prop_assert_eq!(exchange_role(rank, round, w, 1), ExchangeRole::Idle);
    }
}
