//! Property tests of window layout and DOS merging.

use dt_rewl::{merge_windows, WindowLayout};
use dt_wanglandau::EnergyGrid;
use proptest::prelude::*;

/// The shared invariant set both constructors must uphold: full grid
/// coverage, ≥ 2-bin windows, strictly monotone starts, ≥ 1-bin
/// overlaps, and window grids bin-aligned with the global grid.
fn assert_layout_invariants(
    layout: &WindowLayout,
    bins: usize,
    windows: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(layout.bin_range(0).0, 0);
    prop_assert_eq!(layout.bin_range(windows - 1).1, bins);
    for w in 0..windows {
        let (lo, hi) = layout.bin_range(w);
        prop_assert!(hi - lo >= 2, "window {} too narrow", w);
        let wg = layout.window_grid(w);
        prop_assert_eq!(wg.num_bins(), hi - lo);
        for b in 0..wg.num_bins() {
            let gc = layout.global_grid().center(lo + b);
            prop_assert!((wg.center(b) - gc).abs() < 1e-12);
        }
        if w > 0 {
            prop_assert!(
                lo > layout.bin_range(w - 1).0,
                "window starts not strictly monotone at {}",
                w
            );
        }
        if w + 1 < windows {
            let (olo, ohi) = layout.overlap_range(w);
            prop_assert!(ohi > olo, "windows {},{} disjoint", w, w + 1);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any layout covers the grid contiguously with nonempty overlaps and
    /// window grids that share bin boundaries with the global grid.
    #[test]
    fn layouts_are_well_formed(
        bins in 16usize..200,
        windows in 1usize..9,
        overlap in 0.1f64..0.9,
    ) {
        prop_assume!(bins >= windows * 4);
        let grid = EnergyGrid::new(0.0, 1.0, bins);
        let layout = WindowLayout::new(grid, windows, overlap);
        assert_layout_invariants(&layout, bins, windows)?;
    }

    /// The equal-diffusion constructor upholds exactly the same layout
    /// invariants as the uniform one, for any finite non-negative cost
    /// profile — including adversarial ones (zero-cost stretches, huge
    /// spikes) — and strictly-monotone window starts survive the repair
    /// pass.
    #[test]
    fn equal_diffusion_layouts_are_well_formed(
        bins in 16usize..200,
        windows in 1usize..9,
        overlap in 0.1f64..0.9,
        raw_costs in proptest::collection::vec(0.0f64..1000.0, 200),
        spike_at in 0usize..200,
        spike in 1.0f64..1e6,
    ) {
        prop_assume!(bins >= windows * 4);
        let mut profile: Vec<f64> = raw_costs[..bins].to_vec();
        profile[spike_at % bins] += spike;
        let grid = EnergyGrid::new(0.0, 1.0, bins);
        let layout = WindowLayout::equal_diffusion(grid, windows, overlap, &profile);
        assert_layout_invariants(&layout, bins, windows)?;
    }

    /// Merging fully-visited pieces with arbitrary per-window offsets
    /// recovers the underlying curve up to one global constant, for any
    /// smooth truth and layout.
    #[test]
    fn merge_inverts_window_offsets(
        windows in 2usize..6,
        overlap in 0.3f64..0.8,
        amp in 10.0f64..2000.0,
        skew in -20.0f64..20.0,
        offsets in proptest::collection::vec(-5000.0f64..5000.0, 6),
    ) {
        let bins = 96;
        let grid = EnergyGrid::new(0.0, 1.0, bins);
        let layout = WindowLayout::new(grid, windows, overlap);
        let truth: Vec<f64> = (0..bins)
            .map(|b| {
                let x = (b as f64 + 0.5) / bins as f64;
                amp * (x * (1.0 - x)).sqrt() + skew * x
            })
            .collect();
        let pieces: Vec<(Vec<f64>, Vec<bool>)> = (0..windows)
            .map(|w| {
                let (lo, hi) = layout.bin_range(w);
                let vals: Vec<f64> =
                    truth[lo..hi].iter().map(|&v| v + offsets[w]).collect();
                (vals, vec![true; hi - lo])
            })
            .collect();
        let (merged, mask) = merge_windows(&layout, &pieces);
        prop_assert!(mask.iter().all(|&v| v));
        let delta = merged.ln_g()[0] - truth[0];
        for (b, &t) in truth.iter().enumerate() {
            prop_assert!(
                (merged.ln_g()[b] - t - delta).abs() < 1e-6,
                "bin {b}: {} vs {}",
                merged.ln_g()[b] - delta,
                t
            );
        }
    }

    /// Merging respects visited masks: bins unvisited by every covering
    /// window stay masked out.
    #[test]
    fn merge_preserves_unvisited_holes(hole in 1usize..94) {
        let bins = 96;
        let grid = EnergyGrid::new(0.0, 1.0, bins);
        let layout = WindowLayout::new(grid, 2, 0.5);
        let (lo0, hi0) = layout.bin_range(0);
        let (lo1, hi1) = layout.bin_range(1);
        // Keep the hole outside the overlap so joins stay possible.
        let (olo, ohi) = layout.overlap_range(0);
        prop_assume!(hole < olo || hole >= ohi);
        let mut m0 = vec![true; hi0 - lo0];
        let mut m1 = vec![true; hi1 - lo1];
        if hole >= lo0 && hole < hi0 {
            m0[hole - lo0] = false;
        }
        if hole >= lo1 && hole < hi1 {
            m1[hole - lo1] = false;
        }
        let p0: Vec<f64> = (lo0..hi0).map(|b| b as f64).collect();
        let p1: Vec<f64> = (lo1..hi1).map(|b| b as f64 + 7.0).collect();
        let (_, mask) = merge_windows(&layout, &[(p0, m0), (p1, m1)]);
        prop_assert!(!mask[hole], "hole at {hole} must stay masked");
    }
}
