//! Thermodynamic identities that must hold for ANY density of states:
//! positivity of C_v, monotonicity of U and F, entropy bounds, and
//! consistency of the reweighting accumulator.

use dt_thermo::{canonical_curve, MicrocanonicalAccumulator, KB_EV_PER_K};
use proptest::prelude::*;

/// Arbitrary small DOS: ascending energies with positive ln g.
fn dos() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0.001f64..0.5, 0.0f64..500.0), 2..12).prop_map(|pairs| {
        let mut e = 0.0;
        let mut energies = Vec::with_capacity(pairs.len());
        let mut ln_g = Vec::with_capacity(pairs.len());
        for (de, lg) in pairs {
            e += de;
            energies.push(e);
            ln_g.push(lg);
        }
        (energies, ln_g)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For any DOS: Cv ≥ 0, U non-decreasing in T, F non-increasing in T,
    /// S non-negative and non-decreasing.
    #[test]
    fn canonical_identities_hold((energies, ln_g) in dos()) {
        let temps: Vec<f64> = (1..40).map(|i| 50.0 * i as f64).collect();
        let curve = canonical_curve(&energies, &ln_g, &temps, KB_EV_PER_K);
        for p in &curve {
            prop_assert!(p.cv >= -1e-9, "Cv = {}", p.cv);
            prop_assert!(p.u.is_finite() && p.f.is_finite() && p.s.is_finite());
        }
        for w in curve.windows(2) {
            prop_assert!(w[1].u >= w[0].u - 1e-9, "U decreased");
            prop_assert!(w[1].f <= w[0].f + 1e-9, "F increased");
            prop_assert!(w[1].s >= w[0].s - 1e-9, "S decreased");
        }
    }

    /// Entropy approaches ln(total states) at high temperature and
    /// ln(ground degeneracy) at low temperature, relative to the minimum.
    #[test]
    fn entropy_limits((energies, ln_g) in dos()) {
        let hot = canonical_curve(&energies, &ln_g, &[1e9], KB_EV_PER_K)[0];
        let ln_total = {
            let m = ln_g.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            m + ln_g.iter().map(|&v| (v - m).exp()).sum::<f64>().ln()
        };
        prop_assert!((hot.s - ln_total).abs() < 0.02 * ln_total.abs().max(1.0),
            "S_hot {} vs ln_total {ln_total}", hot.s);

        let cold = canonical_curve(&energies, &ln_g, &[0.01], KB_EV_PER_K)[0];
        prop_assert!((cold.s - ln_g[0]).abs() < 1e-3 * ln_g[0].max(1.0) + 1e-6,
            "S_cold {} vs ln g0 {}", cold.s, ln_g[0]);
    }

    /// Shifting ln g by a constant shifts F and S consistently but leaves
    /// U and Cv untouched.
    #[test]
    fn ln_g_shift_covariance((energies, ln_g) in dos(), shift in -100.0f64..100.0) {
        let t = 400.0;
        let a = canonical_curve(&energies, &ln_g, &[t], KB_EV_PER_K)[0];
        let shifted: Vec<f64> = ln_g.iter().map(|&v| v + shift).collect();
        let b = canonical_curve(&energies, &shifted, &[t], KB_EV_PER_K)[0];
        prop_assert!((a.u - b.u).abs() < 1e-9);
        prop_assert!((a.cv - b.cv).abs() < 1e-9);
        prop_assert!((b.s - a.s - shift).abs() < 1e-6, "S shift mismatch");
        prop_assert!((a.f - b.f - KB_EV_PER_K * t * shift).abs() < 1e-9);
    }

    /// A constant observable reweights to itself at any temperature.
    #[test]
    fn constant_observable_is_fixed_point(
        (energies, ln_g) in dos(),
        value in -5.0f64..5.0,
        beta in 0.0f64..50.0,
    ) {
        let mut acc = MicrocanonicalAccumulator::new(energies.len(), 1);
        for bin in 0..energies.len() {
            acc.record(bin, &[value]);
        }
        let avg = acc.canonical_average(&energies, &ln_g, beta)[0];
        prop_assert!((avg - value).abs() < 1e-9);
    }

    /// Reweighted averages are bounded by the min/max of the bin means.
    #[test]
    fn reweighted_average_is_convex_combination(
        (energies, ln_g) in dos(),
        values in proptest::collection::vec(-3.0f64..3.0, 12),
        beta in 0.0f64..20.0,
    ) {
        let n = energies.len();
        let mut acc = MicrocanonicalAccumulator::new(n, 1);
        for bin in 0..n {
            acc.record(bin, &[values[bin % values.len()]]);
        }
        let avg = acc.canonical_average(&energies, &ln_g, beta)[0];
        let lo = (0..n).map(|b| values[b % values.len()]).fold(f64::INFINITY, f64::min);
        let hi = (0..n).map(|b| values[b % values.len()]).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
    }
}
