//! Microcanonical observable accumulators and canonical reweighting.
//!
//! During flat-histogram sampling each walker records observables (e.g.
//! Warren–Cowley pair counts) *per energy bin*. Because the walk is flat in
//! energy, the per-bin averages estimate microcanonical expectations
//! `⟨O⟩_E`; any canonical average then follows by reweighting with the
//! sampled DOS:
//!
//! `⟨O⟩_T = Σ_E g(E) ⟨O⟩_E e^{−βE} / Σ_E g(E) e^{−βE}`.
//!
//! This is how DeepThermo turns one sampling run into whole
//! SRO-vs-temperature curves without re-simulating at every temperature.

/// Per-energy-bin accumulator of a vector-valued observable.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrocanonicalAccumulator {
    num_bins: usize,
    obs_dim: usize,
    /// `sums[bin * obs_dim + j]`.
    sums: Vec<f64>,
    counts: Vec<u64>,
}

impl MicrocanonicalAccumulator {
    /// Accumulator for `num_bins` energy bins and an `obs_dim`-dimensional
    /// observable.
    pub fn new(num_bins: usize, obs_dim: usize) -> Self {
        assert!(num_bins > 0 && obs_dim > 0);
        MicrocanonicalAccumulator {
            num_bins,
            obs_dim,
            sums: vec![0.0; num_bins * obs_dim],
            counts: vec![0; num_bins],
        }
    }

    /// Number of energy bins.
    pub fn num_bins(&self) -> usize {
        self.num_bins
    }

    /// Observable dimension.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Record one observation in `bin`.
    pub fn record(&mut self, bin: usize, obs: &[f64]) {
        assert_eq!(obs.len(), self.obs_dim);
        let base = bin * self.obs_dim;
        for (s, &o) in self.sums[base..base + self.obs_dim].iter_mut().zip(obs) {
            *s += o;
        }
        self.counts[bin] += 1;
    }

    /// Record `count` observations in `bin` whose element-wise totals are
    /// already summed in `sums` — used when reconstructing an accumulator
    /// from serialized per-bin totals, where replaying `record` per sample
    /// would be O(count).
    ///
    /// # Panics
    /// Panics when `sums.len() != obs_dim`.
    pub fn record_sum(&mut self, bin: usize, sums: &[f64], count: u64) {
        assert_eq!(sums.len(), self.obs_dim);
        let base = bin * self.obs_dim;
        for (s, &o) in self.sums[base..base + self.obs_dim].iter_mut().zip(sums) {
            *s += o;
        }
        self.counts[bin] += count;
    }

    /// Samples recorded in a bin.
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// Raw per-bin state: the element-wise observation totals and the
    /// sample count. This is the exact internal representation, exposed
    /// so serializers (the `dt-serve` artifact registry) can round-trip
    /// an accumulator bit-identically via [`record_sum`].
    ///
    /// [`record_sum`]: MicrocanonicalAccumulator::record_sum
    pub fn bin_data(&self, bin: usize) -> (&[f64], u64) {
        let base = bin * self.obs_dim;
        (&self.sums[base..base + self.obs_dim], self.counts[bin])
    }

    /// Microcanonical mean `⟨O⟩_E` of a bin (`None` if unsampled).
    pub fn bin_mean(&self, bin: usize) -> Option<Vec<f64>> {
        (self.counts[bin] > 0).then(|| {
            let base = bin * self.obs_dim;
            self.sums[base..base + self.obs_dim]
                .iter()
                .map(|&s| s / self.counts[bin] as f64)
                .collect()
        })
    }

    /// Merge another walker's accumulator.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &MicrocanonicalAccumulator) {
        assert_eq!(self.num_bins, other.num_bins);
        assert_eq!(self.obs_dim, other.obs_dim);
        for (a, &b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Canonical average `⟨O⟩_T` by reweighting with `(energies, ln_g)`
    /// (bin-aligned with this accumulator). Bins without samples are
    /// skipped in both numerator and denominator, which is unbiased as
    /// long as unsampled bins carry negligible canonical weight.
    ///
    /// `beta` is `1/(k_B T)` in the inverse units of `energies`.
    pub fn canonical_average(&self, energies: &[f64], ln_g: &[f64], beta: f64) -> Vec<f64> {
        assert_eq!(energies.len(), self.num_bins);
        assert_eq!(ln_g.len(), self.num_bins);
        // Stabilize in log space.
        let mut w_max = f64::NEG_INFINITY;
        for (bin, (&e, &lg)) in energies.iter().zip(ln_g).enumerate() {
            if self.counts[bin] > 0 {
                w_max = w_max.max(lg - beta * e);
            }
        }
        let mut z = 0.0;
        let mut num = vec![0.0; self.obs_dim];
        for (bin, (&e, &lg)) in energies.iter().zip(ln_g).enumerate() {
            if self.counts[bin] == 0 {
                continue;
            }
            let w = (lg - beta * e - w_max).exp();
            z += w;
            let base = bin * self.obs_dim;
            let inv_count = 1.0 / self.counts[bin] as f64;
            for (n, &s) in num.iter_mut().zip(&self.sums[base..base + self.obs_dim]) {
                *n += w * s * inv_count;
            }
        }
        assert!(z > 0.0, "no sampled bins to reweight");
        num.into_iter().map(|n| n / z).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_means_are_exact() {
        let mut acc = MicrocanonicalAccumulator::new(3, 2);
        acc.record(1, &[1.0, 10.0]);
        acc.record(1, &[3.0, 30.0]);
        assert_eq!(acc.bin_mean(1), Some(vec![2.0, 20.0]));
        assert_eq!(acc.bin_mean(0), None);
        assert_eq!(acc.count(1), 2);
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = MicrocanonicalAccumulator::new(2, 1);
        let mut b = MicrocanonicalAccumulator::new(2, 1);
        a.record(0, &[1.0]);
        b.record(0, &[3.0]);
        b.record(1, &[5.0]);
        a.merge(&b);
        assert_eq!(a.bin_mean(0), Some(vec![2.0]));
        assert_eq!(a.bin_mean(1), Some(vec![5.0]));
    }

    #[test]
    fn canonical_average_two_level() {
        // O = 0 in the ground bin, 1 in the excited bin; closed form is
        // the excited-state occupation probability.
        let mut acc = MicrocanonicalAccumulator::new(2, 1);
        acc.record(0, &[0.0]);
        acc.record(1, &[1.0]);
        let energies = [0.0, 0.1];
        let ln_g = [0.0, 3.0f64.ln()];
        let beta = 20.0;
        let avg = acc.canonical_average(&energies, &ln_g, beta)[0];
        let p1 = 3.0 * (-beta * 0.1f64).exp() / (1.0 + 3.0 * (-beta * 0.1f64).exp());
        assert!((avg - p1).abs() < 1e-12);
    }

    #[test]
    fn beta_zero_gives_g_weighted_mean() {
        let mut acc = MicrocanonicalAccumulator::new(2, 1);
        acc.record(0, &[1.0]);
        acc.record(1, &[2.0]);
        let energies = [0.0, 1.0];
        let ln_g = [1.0f64.ln(), 3.0f64.ln()];
        let avg = acc.canonical_average(&energies, &ln_g, 0.0)[0];
        assert!((avg - (1.0 + 3.0 * 2.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn unsampled_bins_are_skipped() {
        let mut acc = MicrocanonicalAccumulator::new(3, 1);
        acc.record(0, &[7.0]);
        // Bin 1 unsampled but has huge ln g — must not contribute.
        let energies = [0.0, 0.5, 1.0];
        let ln_g = [0.0, 1000.0, 0.0];
        let avg = acc.canonical_average(&energies, &ln_g, 1.0)[0];
        assert_eq!(avg, 7.0);
    }

    #[test]
    fn huge_ln_g_is_stable() {
        let mut acc = MicrocanonicalAccumulator::new(2, 1);
        acc.record(0, &[1.0]);
        acc.record(1, &[2.0]);
        let energies = [0.0, 10.0];
        let ln_g = [0.0, 10_000.0];
        let avg = acc.canonical_average(&energies, &ln_g, 1.0)[0];
        assert!(avg.is_finite());
        // The e^10000 bin dominates overwhelmingly.
        assert!((avg - 2.0).abs() < 1e-9);
    }
}
