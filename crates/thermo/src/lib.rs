//! # dt-thermo
//!
//! Thermodynamics evaluation from a density of states — the final stage of
//! the DeepThermo pipeline.
//!
//! Once Wang–Landau sampling has produced `ln g(E)`, every canonical
//! quantity follows from reweighting sums of the form
//! `Σ_E g(E) X(E) e^{−βE}`, evaluated here entirely in log space so a DOS
//! spanning `e^10,000` (the paper's headline range) is handled without
//! overflow:
//!
//! * [`canonical_curve`] — U(T), C_v(T), F(T), S(T) over a temperature grid
//!   (with a non-panicking [`try_canonical_curve`] for untrusted input,
//!   e.g. the `dt-serve` HTTP endpoints),
//! * [`find_cv_peak`] — order–disorder transition locator,
//! * [`MicrocanonicalAccumulator`] — per-energy-bin observable averages
//!   (collected during sampling) reweighted into canonical averages, used
//!   for the Warren–Cowley SRO vs temperature curves.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod canonical;
pub mod reweight;

pub use canonical::{
    canonical_curve, find_cv_peak, temperature_grid, try_canonical_curve, try_temperature_grid,
    ThermoError, ThermoPoint,
};
pub use reweight::MicrocanonicalAccumulator;

/// Boltzmann constant in eV/K (re-exported from `dt-hamiltonian` so users
/// of this crate need not depend on it directly for unit handling).
pub use dt_hamiltonian::KB_EV_PER_K;
