//! Canonical thermodynamics from `(E, ln g)` pairs.

/// Why a canonical evaluation cannot proceed.
///
/// Returned by the `try_` variants ([`try_canonical_curve`],
/// [`try_temperature_grid`]) so callers that receive untrusted input —
/// the `dt-serve` HTTP endpoints in particular — can map a bad request
/// to an error response instead of a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum ThermoError {
    /// `energies` and `ln_g` have different lengths.
    LengthMismatch {
        /// Length of the energy slice.
        energies: usize,
        /// Length of the `ln g` slice.
        ln_g: usize,
    },
    /// The density of states is empty.
    EmptyDos,
    /// A temperature grid point is zero or negative.
    NonPositiveTemperature(f64),
    /// A requested uniform grid is degenerate: fewer than two points,
    /// inverted bounds, or a non-positive lower bound.
    BadGrid {
        /// Requested lower bound (K).
        t_min: f64,
        /// Requested upper bound (K).
        t_max: f64,
        /// Requested number of points.
        n: usize,
    },
}

impl std::fmt::Display for ThermoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThermoError::LengthMismatch { energies, ln_g } => {
                write!(f, "E / ln g length mismatch ({energies} vs {ln_g})")
            }
            ThermoError::EmptyDos => write!(f, "empty density of states"),
            ThermoError::NonPositiveTemperature(t) => {
                write!(f, "temperature must be positive, got {t}")
            }
            ThermoError::BadGrid { t_min, t_max, n } => write!(
                f,
                "bad temperature grid: need n >= 2 and 0 < t_min < t_max, \
                 got t_min {t_min}, t_max {t_max}, n {n}"
            ),
        }
    }
}

impl std::error::Error for ThermoError {}

/// One temperature point of the thermodynamic curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermoPoint {
    /// Temperature (K).
    pub t: f64,
    /// Internal energy ⟨E⟩ (eV).
    pub u: f64,
    /// Heat capacity `C_v / k_B = β²(⟨E²⟩ − ⟨E⟩²)` (dimensionless, per
    /// supercell; divide by N for per-atom).
    pub cv: f64,
    /// Helmholtz free energy `F = −k_B T ln Z` (eV). Absolute when `ln g`
    /// carries the absolute normalization.
    pub f: f64,
    /// Entropy `S / k_B = β(U − F)` (dimensionless, per supercell).
    pub s: f64,
}

/// Evaluate U, C_v, F, S on a temperature grid from a (possibly huge)
/// density of states given as `(energies[i], ln_g[i])`.
///
/// All sums are taken in log space: with
/// `w_i(β) = ln g_i − β E_i`, `ln Z = LSE_i w_i` and moments follow from
/// ratios of shifted log-sum-exps, so `ln g` ranges of 10⁴ (the paper's
/// `~e^10,000`) are handled exactly.
///
/// # Panics
/// Panics when slices mismatch, are empty, or any temperature is ≤ 0.
/// Use [`try_canonical_curve`] to get a [`ThermoError`] instead.
pub fn canonical_curve(energies: &[f64], ln_g: &[f64], temps: &[f64], kb: f64) -> Vec<ThermoPoint> {
    try_canonical_curve(energies, ln_g, temps, kb).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`canonical_curve`]: validates the inputs and returns a
/// [`ThermoError`] describing the first problem found.
///
/// # Errors
/// [`ThermoError::LengthMismatch`] / [`ThermoError::EmptyDos`] for a
/// malformed DOS, [`ThermoError::NonPositiveTemperature`] for a bad grid
/// point.
pub fn try_canonical_curve(
    energies: &[f64],
    ln_g: &[f64],
    temps: &[f64],
    kb: f64,
) -> Result<Vec<ThermoPoint>, ThermoError> {
    if energies.len() != ln_g.len() {
        return Err(ThermoError::LengthMismatch {
            energies: energies.len(),
            ln_g: ln_g.len(),
        });
    }
    if energies.is_empty() {
        return Err(ThermoError::EmptyDos);
    }
    temps
        .iter()
        .map(|&t| {
            if t.is_nan() || t <= 0.0 {
                return Err(ThermoError::NonPositiveTemperature(t));
            }
            let beta = 1.0 / (kb * t);
            // w_i = ln g_i − β E_i, stabilized by the max.
            let mut w_max = f64::NEG_INFINITY;
            for (&e, &lg) in energies.iter().zip(ln_g) {
                w_max = w_max.max(lg - beta * e);
            }
            let mut z = 0.0; // Σ exp(w_i − w_max)
            let mut ez = 0.0; // Σ E_i exp(...)
            let mut e2z = 0.0; // Σ E_i² exp(...)
            for (&e, &lg) in energies.iter().zip(ln_g) {
                let w = (lg - beta * e - w_max).exp();
                z += w;
                ez += w * e;
                e2z += w * e * e;
            }
            let u = ez / z;
            let var = (e2z / z - u * u).max(0.0);
            let ln_z = w_max + z.ln();
            let f = -kb * t * ln_z;
            Ok(ThermoPoint {
                t,
                u,
                cv: beta * beta * var,
                f,
                s: beta * (u - f),
            })
        })
        .collect()
}

/// A uniformly spaced temperature grid `[t_min, t_max]` with `n` points.
///
/// # Panics
/// Panics on a degenerate grid; use [`try_temperature_grid`] to get a
/// [`ThermoError`] instead.
pub fn temperature_grid(t_min: f64, t_max: f64, n: usize) -> Vec<f64> {
    try_temperature_grid(t_min, t_max, n).unwrap_or_else(|e| panic!("{e}"))
}

/// Non-panicking [`temperature_grid`].
///
/// # Errors
/// [`ThermoError::BadGrid`] unless `n >= 2` and `0 < t_min < t_max`.
pub fn try_temperature_grid(t_min: f64, t_max: f64, n: usize) -> Result<Vec<f64>, ThermoError> {
    if !(n >= 2 && t_max > t_min && t_min > 0.0) {
        return Err(ThermoError::BadGrid { t_min, t_max, n });
    }
    Ok((0..n)
        .map(|i| t_min + (t_max - t_min) * i as f64 / (n - 1) as f64)
        .collect())
}

/// Locate the heat-capacity peak — the order–disorder transition
/// temperature estimate. Returns `(T_c, C_v(T_c))`.
pub fn find_cv_peak(curve: &[ThermoPoint]) -> (f64, f64) {
    assert!(!curve.is_empty());
    curve
        .iter()
        .map(|p| (p.t, p.cv))
        .fold((curve[0].t, f64::NEG_INFINITY), |best, (t, cv)| {
            if cv > best.1 {
                (t, cv)
            } else {
                best
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::KB_EV_PER_K;

    /// Two-level system: N-fold degenerate ground state at 0 and M-fold
    /// excited state at ε — everything is known in closed form.
    fn two_level(eps: f64, g0: f64, g1: f64) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0, eps], vec![g0.ln(), g1.ln()])
    }

    #[test]
    fn two_level_system_matches_closed_form() {
        let eps = 0.1;
        let (e, lg) = two_level(eps, 1.0, 3.0);
        let t = 500.0;
        let beta = 1.0 / (KB_EV_PER_K * t);
        let pts = canonical_curve(&e, &lg, &[t], KB_EV_PER_K);
        let z = 1.0 + 3.0 * (-beta * eps).exp();
        let u = 3.0 * eps * (-beta * eps).exp() / z;
        assert!((pts[0].u - u).abs() < 1e-12);
        let var = 3.0 * eps * eps * (-beta * eps).exp() / z - u * u;
        assert!((pts[0].cv - beta * beta * var).abs() < 1e-9);
        // F = -kT ln Z, S = β(U − F).
        assert!((pts[0].f + KB_EV_PER_K * t * z.ln()).abs() < 1e-12);
        assert!((pts[0].s - beta * (pts[0].u - pts[0].f)).abs() < 1e-12);
    }

    #[test]
    fn entropy_limits_are_correct() {
        // At T→0 the system sits in the (g0-fold) ground state: S → ln g0;
        // at T→∞ all states equally likely: S → ln(g0+g1).
        let (e, lg) = two_level(0.05, 2.0, 6.0);
        let lo = canonical_curve(&e, &lg, &[1.0], KB_EV_PER_K)[0];
        let hi = canonical_curve(&e, &lg, &[1e7], KB_EV_PER_K)[0];
        assert!((lo.s - 2.0f64.ln()).abs() < 1e-6, "S(0) = {}", lo.s);
        assert!((hi.s - 8.0f64.ln()).abs() < 1e-3, "S(inf) = {}", hi.s);
    }

    #[test]
    fn schottky_peak_is_found() {
        let (e, lg) = two_level(0.1, 1.0, 1.0);
        let temps = temperature_grid(50.0, 3000.0, 400);
        let curve = canonical_curve(&e, &lg, &temps, KB_EV_PER_K);
        let (tc, cv) = find_cv_peak(&curve);
        // Schottky anomaly of a symmetric two-level system peaks at
        // βε ≈ 2.3994 ⇒ T ≈ ε / (2.3994 k_B).
        let expected = 0.1 / (2.3994 * KB_EV_PER_K);
        assert!(
            (tc - expected).abs() < 30.0,
            "T_peak {tc} vs analytic {expected}"
        );
        assert!(cv > 0.4, "peak height {cv}");
    }

    #[test]
    fn huge_ln_g_values_do_not_overflow() {
        // DOS spanning e^10,000 — the paper's headline scale.
        let e: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let lg: Vec<f64> = (0..100).map(|i| 10_000.0 * (i as f64 / 99.0)).collect();
        let pts = canonical_curve(&e, &lg, &[300.0, 3000.0], KB_EV_PER_K);
        for p in pts {
            assert!(p.u.is_finite());
            assert!(p.cv.is_finite() && p.cv >= 0.0);
            assert!(p.f.is_finite());
            assert!(p.s.is_finite() && p.s > 0.0);
        }
    }

    #[test]
    fn u_is_monotone_in_t() {
        let (e, lg) = two_level(0.2, 4.0, 4.0);
        let temps = temperature_grid(10.0, 5000.0, 50);
        let curve = canonical_curve(&e, &lg, &temps, KB_EV_PER_K);
        for w in curve.windows(2) {
            assert!(w[1].u >= w[0].u - 1e-12, "U must increase with T");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_temperature_rejected() {
        let (e, lg) = two_level(0.1, 1.0, 1.0);
        let _ = canonical_curve(&e, &lg, &[-1.0], KB_EV_PER_K);
    }

    #[test]
    fn try_variants_return_errors_instead_of_panicking() {
        let (e, lg) = two_level(0.1, 1.0, 1.0);
        assert_eq!(
            try_canonical_curve(&e, &lg[..1], &[300.0], KB_EV_PER_K),
            Err(ThermoError::LengthMismatch {
                energies: 2,
                ln_g: 1
            })
        );
        assert_eq!(
            try_canonical_curve(&[], &[], &[300.0], KB_EV_PER_K),
            Err(ThermoError::EmptyDos)
        );
        assert_eq!(
            try_canonical_curve(&e, &lg, &[300.0, -5.0], KB_EV_PER_K),
            Err(ThermoError::NonPositiveTemperature(-5.0))
        );
        assert!(matches!(
            try_canonical_curve(&e, &lg, &[f64::NAN], KB_EV_PER_K),
            Err(ThermoError::NonPositiveTemperature(_))
        ));
        assert_eq!(
            try_temperature_grid(200.0, 100.0, 5),
            Err(ThermoError::BadGrid {
                t_min: 200.0,
                t_max: 100.0,
                n: 5
            })
        );
        assert!(try_temperature_grid(100.0, 200.0, 1).is_err());
    }

    #[test]
    fn try_variants_agree_with_panicking_wrappers() {
        let (e, lg) = two_level(0.1, 1.0, 3.0);
        let temps = temperature_grid(100.0, 2000.0, 17);
        assert_eq!(
            try_temperature_grid(100.0, 2000.0, 17).unwrap(),
            temps,
            "grid variants must agree"
        );
        let a = canonical_curve(&e, &lg, &temps, KB_EV_PER_K);
        let b = try_canonical_curve(&e, &lg, &temps, KB_EV_PER_K).unwrap();
        assert_eq!(a, b, "curve variants must agree bit-for-bit");
    }

    #[test]
    fn temperature_grid_endpoints() {
        let g = temperature_grid(100.0, 200.0, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 100.0);
        assert_eq!(g[4], 200.0);
    }
}
