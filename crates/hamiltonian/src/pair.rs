//! Effective pair-interaction (EPI) cluster-expansion Hamiltonian.

use dt_lattice::{Configuration, NeighborTable, SiteId, Species};

use crate::model::{DeltaWorkspace, EnergyModel, WorkspaceExt};

/// `E(σ) = Σ_s Σ_{⟨ij⟩ ∈ shell s} V_s(σ_i, σ_j)` with symmetric per-shell
/// interaction matrices, the standard on-lattice cluster expansion for
/// configurational thermodynamics of alloys.
///
/// Interactions are stored flat (`v[shell][a*m + b]`, eV per *undirected*
/// pair); the energy is computed over directed neighbor pairs with a factor
/// `1/2`, which is exact for the image-multiplicity neighbor tables of
/// `dt-lattice`.
#[derive(Debug, Clone, PartialEq)]
pub struct PairHamiltonian {
    num_species: usize,
    /// `v[shell][a*m + b]`, symmetric in (a, b).
    v: Vec<Vec<f64>>,
}

impl PairHamiltonian {
    /// Build from per-shell interaction matrices (`matrices[s][a*m+b]`).
    ///
    /// # Panics
    /// Panics if a matrix has the wrong size or is not symmetric.
    pub fn new(num_species: usize, matrices: Vec<Vec<f64>>) -> Self {
        assert!(!matrices.is_empty(), "need at least one shell");
        for (s, m) in matrices.iter().enumerate() {
            assert_eq!(
                m.len(),
                num_species * num_species,
                "shell {s} matrix has wrong size"
            );
            for a in 0..num_species {
                for b in 0..a {
                    assert!(
                        (m[a * num_species + b] - m[b * num_species + a]).abs() < 1e-12,
                        "shell {s} matrix must be symmetric at ({a},{b})"
                    );
                }
            }
        }
        PairHamiltonian {
            num_species,
            v: matrices,
        }
    }

    /// Build from upper-triangle pair energies given as
    /// `pairs[s] = [(a, b, v_ab), ...]`; unspecified entries are zero.
    pub fn from_pairs(
        num_species: usize,
        num_shells: usize,
        pairs: &[(usize, usize, usize, f64)],
    ) -> Self {
        let mut v = vec![vec![0.0; num_species * num_species]; num_shells];
        for &(shell, a, b, val) in pairs {
            v[shell][a * num_species + b] = val;
            v[shell][b * num_species + a] = val;
        }
        PairHamiltonian::new(num_species, v)
    }

    /// Interaction energy of an `(a, b)` pair in `shell`.
    #[inline(always)]
    pub fn v(&self, shell: usize, a: Species, b: Species) -> f64 {
        self.v[shell][a.index() * self.num_species + b.index()]
    }

    /// Energy of every directed pair touching `site`, i.e.
    /// `Σ_s Σ_{j ∈ nb_s(site)} V_s(σ_site, σ_j)`.
    #[inline]
    fn site_energy(&self, config: &Configuration, neighbors: &NeighborTable, site: SiteId) -> f64 {
        let species = config.species();
        let si = species[site as usize];
        let mut e = 0.0;
        for shell in 0..self.v.len() {
            let row = &self.v[shell][si.index() * self.num_species..][..self.num_species];
            for &j in neighbors.neighbors(site, shell) {
                e += row[species[j as usize].index()];
            }
        }
        e
    }

    /// Like [`Self::site_energy`] but with the species on `site` overridden
    /// and overrides applied to marked neighbor sites via `lookup`.
    #[inline]
    fn site_energy_with<F>(
        &self,
        neighbors: &NeighborTable,
        site: SiteId,
        s_site: Species,
        lookup: F,
    ) -> f64
    where
        F: Fn(SiteId) -> Species,
    {
        let mut e = 0.0;
        for shell in 0..self.v.len() {
            let row = &self.v[shell][s_site.index() * self.num_species..][..self.num_species];
            for &j in neighbors.neighbors(site, shell) {
                e += row[lookup(j).index()];
            }
        }
        e
    }

    /// Mean pair energy of the ideal random alloy with mole fractions
    /// `fracs` — the infinite-temperature energy per site is
    /// `Σ_s z_s/2 · Σ_ab c_a c_b V_s(a,b)`. Used for analytic validation.
    pub fn random_alloy_energy_per_site(&self, neighbors: &NeighborTable, fracs: &[f64]) -> f64 {
        let m = self.num_species;
        let mut e = 0.0;
        for shell in 0..self.v.len() {
            let z = neighbors.coordination(shell) as f64;
            let mut mean_v = 0.0;
            for a in 0..m {
                for b in 0..m {
                    mean_v += fracs[a] * fracs[b] * self.v[shell][a * m + b];
                }
            }
            e += 0.5 * z * mean_v;
        }
        e
    }
}

impl EnergyModel for PairHamiltonian {
    fn num_species(&self) -> usize {
        self.num_species
    }

    fn num_shells(&self) -> usize {
        self.v.len()
    }

    fn total_energy(&self, config: &Configuration, neighbors: &NeighborTable) -> f64 {
        let species = config.species();
        let m = self.num_species;
        let mut total = 0.0;
        for shell in 0..self.v.len() {
            let v = &self.v[shell];
            let mut shell_sum = 0.0;
            for i in 0..neighbors.num_sites() as SiteId {
                let a = species[i as usize].index() * m;
                let row = &v[a..a + m];
                let mut site_sum = 0.0;
                for &j in neighbors.neighbors(i, shell) {
                    site_sum += row[species[j as usize].index()];
                }
                shell_sum += site_sum;
            }
            total += 0.5 * shell_sum;
        }
        total
    }

    fn swap_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
    ) -> f64 {
        if a == b {
            return 0.0;
        }
        let species = config.species();
        let sa = species[a as usize];
        let sb = species[b as usize];
        if sa == sb {
            return 0.0;
        }
        // ΔE = [E'(a) + E'(b)] - [E(a) + E(b)] computed over pairs touching
        // a or b; the a–b pair itself is double counted identically before
        // and after except that V(sb, σ_b→sa) terms need care. We evaluate
        // "after" energies with an explicit two-site override, which handles
        // adjacency (including multiple periodic images) exactly.
        let before = self.site_energy(config, neighbors, a)
            + self.site_energy(config, neighbors, b)
            - self.pair_energy_between(config, neighbors, a, b);
        let lookup = |j: SiteId| {
            if j == a {
                sb
            } else if j == b {
                sa
            } else {
                species[j as usize]
            }
        };
        let after = self.site_energy_with(neighbors, a, sb, lookup)
            + self.site_energy_with(neighbors, b, sa, lookup)
            - self.pair_energy_between_species(neighbors, a, b, sb, sa);
        after - before
    }

    fn reassign_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(SiteId, Species)],
        workspace: &mut DeltaWorkspace,
    ) -> f64 {
        if moves.is_empty() {
            return 0.0;
        }
        debug_assert_eq!(workspace.num_sites(), neighbors.num_sites());
        workspace.begin_move();
        for &(site, _) in moves {
            debug_assert!(!workspace.in_move(site), "duplicate site in reassignment");
            workspace.mark_site(site);
        }
        let species = config.species();

        // E_touch = Σ_{i∈S} site_energy(i) − ½ Σ_{i∈S} Σ_{j∈nb(i)∩S} V(σi,σj)
        // evaluated before and after; only pairs touching S contribute to ΔE.
        let mut before = 0.0;
        for &(site, _) in moves {
            before += self.site_energy(config, neighbors, site);
            before -= 0.5 * self.internal_pair_energy(config, neighbors, site, workspace);
        }

        // "After" species lookup: overridden for moved sites. `moves` is
        // small (k ≤ a few thousand), but lookups must be O(1): stash the
        // new species in a side map keyed by the workspace mark.
        let mut after_species: Vec<(SiteId, Species)> = moves.to_vec();
        after_species.sort_unstable_by_key(|&(s, _)| s);
        let lookup = |j: SiteId| -> Species {
            if workspace.in_move(j) {
                let idx = after_species
                    .binary_search_by_key(&j, |&(s, _)| s)
                    .expect("marked site present in move list");
                after_species[idx].1
            } else {
                species[j as usize]
            }
        };

        let mut after = 0.0;
        for &(site, new_s) in moves {
            after += self.site_energy_with(neighbors, site, new_s, lookup);
        }
        // Subtract the double-counted internal pairs of the "after" state.
        for &(site, new_s) in moves {
            let mut internal = 0.0;
            for shell in 0..self.v.len() {
                for &j in neighbors.neighbors(site, shell) {
                    if workspace.in_move(j) {
                        internal +=
                            self.v[shell][new_s.index() * self.num_species + lookup(j).index()];
                    }
                }
            }
            after -= 0.5 * internal;
        }
        after - before
    }

    fn energy_lower_bound(&self, neighbors: &NeighborTable) -> f64 {
        self.bound(neighbors, f64::min)
    }

    fn energy_upper_bound(&self, neighbors: &NeighborTable) -> f64 {
        self.bound(neighbors, f64::max)
    }
}

impl PairHamiltonian {
    /// Energy of the direct pairs between sites `a` and `b` (with image
    /// multiplicity) using current species.
    fn pair_energy_between(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
    ) -> f64 {
        let sa = config.species_at(a);
        let sb = config.species_at(b);
        self.pair_energy_between_species(neighbors, a, b, sa, sb)
    }

    /// Energy of the direct a–b pairs with explicit species.
    fn pair_energy_between_species(
        &self,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
        sa: Species,
        sb: Species,
    ) -> f64 {
        let mut e = 0.0;
        for shell in 0..self.v.len() {
            let mult = neighbors
                .neighbors(a, shell)
                .iter()
                .filter(|&&j| j == b)
                .count() as f64;
            e += mult * self.v[shell][sa.index() * self.num_species + sb.index()];
        }
        e
    }

    /// Σ_{j∈nb(site)∩S} V(σ_site, σ_j) over all shells (current species).
    fn internal_pair_energy(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        site: SiteId,
        workspace: &DeltaWorkspace,
    ) -> f64 {
        let species = config.species();
        let s = species[site as usize];
        let mut e = 0.0;
        for shell in 0..self.v.len() {
            let row = &self.v[shell][s.index() * self.num_species..][..self.num_species];
            for &j in neighbors.neighbors(site, shell) {
                if workspace.in_move(j) {
                    e += row[species[j as usize].index()];
                }
            }
        }
        e
    }

    fn bound(&self, neighbors: &NeighborTable, pick: fn(f64, f64) -> f64) -> f64 {
        let n = neighbors.num_sites() as f64;
        let mut total = 0.0;
        for shell in 0..self.v.len() {
            let z = neighbors.coordination(shell) as f64;
            let extreme = self.v[shell].iter().copied().fold(self.v[shell][0], pick);
            total += 0.5 * n * z * extreme;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// A small asymmetric-feeling (but symmetric) 3-species test model.
    fn toy_model() -> PairHamiltonian {
        PairHamiltonian::from_pairs(
            3,
            2,
            &[
                (0, 0, 1, -0.05),
                (0, 0, 2, 0.02),
                (0, 1, 2, -0.01),
                (0, 0, 0, 0.005),
                (1, 0, 1, 0.015),
                (1, 1, 2, -0.007),
            ],
        )
    }

    fn setup(l: usize) -> (Supercell, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), l);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(3, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_matrix_rejected() {
        let mut m = vec![0.0; 4];
        m[1] = 1.0; // v(0,1) != v(1,0)
        let _ = PairHamiltonian::new(2, vec![m]);
    }

    #[test]
    fn swap_delta_matches_full_recompute() {
        let (_, nt, comp) = setup(3);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut config = Configuration::random(&comp, &mut rng);
        for _ in 0..200 {
            let a = rng.random_range(0..nt.num_sites()) as SiteId;
            let b = rng.random_range(0..nt.num_sites()) as SiteId;
            let e0 = h.total_energy(&config, &nt);
            let delta = h.swap_delta(&config, &nt, a, b);
            config.swap(a, b);
            let e1 = h.total_energy(&config, &nt);
            assert!(
                ((e1 - e0) - delta).abs() < 1e-9,
                "swap ({a},{b}): recompute {} vs delta {delta}",
                e1 - e0
            );
        }
    }

    #[test]
    fn swap_delta_of_adjacent_sites_is_exact() {
        let (_, nt, comp) = setup(2);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = Configuration::random(&comp, &mut rng);
        // Explicitly exercise neighbor pairs (including duplicate images in
        // the tiny L=2 cell).
        for i in 0..nt.num_sites() as SiteId {
            for &j in nt.neighbors(i, 0) {
                let e0 = h.total_energy(&config, &nt);
                let delta = h.swap_delta(&config, &nt, i, j);
                config.swap(i, j);
                let e1 = h.total_energy(&config, &nt);
                assert!(((e1 - e0) - delta).abs() < 1e-9);
                config.swap(i, j); // restore
            }
        }
    }

    #[test]
    fn reassign_delta_matches_full_recompute() {
        let (_, nt, comp) = setup(3);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(nt.num_sites());
        for trial in 0..100 {
            let k = rng.random_range(1..=8usize);
            // Distinct random sites.
            let mut sites: Vec<SiteId> = (0..nt.num_sites() as SiteId).collect();
            for i in 0..k {
                let j = rng.random_range(i..sites.len());
                sites.swap(i, j);
            }
            let moves: Vec<(SiteId, Species)> = sites[..k]
                .iter()
                .map(|&s| (s, Species(rng.random_range(0..3u8))))
                .collect();
            let e0 = h.total_energy(&config, &nt);
            let delta = h.reassign_delta(&config, &nt, &moves, &mut ws);
            for &(s, sp) in &moves {
                config.set(s, sp);
            }
            let e1 = h.total_energy(&config, &nt);
            assert!(
                ((e1 - e0) - delta).abs() < 1e-9,
                "trial {trial}: recompute {} vs delta {delta}",
                e1 - e0
            );
        }
    }

    #[test]
    fn reassign_with_whole_lattice_matches() {
        let (_, nt, comp) = setup(2);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(nt.num_sites());
        let moves: Vec<(SiteId, Species)> = (0..nt.num_sites() as SiteId)
            .map(|s| (s, Species(rng.random_range(0..3u8))))
            .collect();
        let e0 = h.total_energy(&config, &nt);
        let delta = h.reassign_delta(&config, &nt, &moves, &mut ws);
        for &(s, sp) in &moves {
            config.set(s, sp);
        }
        assert!(((h.total_energy(&config, &nt) - e0) - delta).abs() < 1e-9);
    }

    #[test]
    fn empty_reassign_is_zero() {
        let (_, nt, comp) = setup(2);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let config = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(nt.num_sites());
        assert_eq!(h.reassign_delta(&config, &nt, &[], &mut ws), 0.0);
    }

    #[test]
    fn bounds_contain_sampled_energies() {
        let (_, nt, comp) = setup(3);
        let h = toy_model();
        let lo = h.energy_lower_bound(&nt);
        let hi = h.energy_upper_bound(&nt);
        assert!(lo < hi);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            let c = Configuration::random(&comp, &mut rng);
            let e = h.total_energy(&c, &nt);
            assert!(e >= lo && e <= hi, "{lo} <= {e} <= {hi}");
        }
    }

    #[test]
    fn random_alloy_energy_matches_analytic_mean() {
        let (cell, nt, comp) = setup(4);
        let h = toy_model();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let n = 400;
        let mut mean = 0.0;
        for _ in 0..n {
            let c = Configuration::random(&comp, &mut rng);
            mean += h.total_energy(&c, &nt);
        }
        mean /= n as f64;
        let analytic =
            h.random_alloy_energy_per_site(&nt, &comp.fractions()) * cell.num_sites() as f64;
        // Finite-size correction: sampling without replacement slightly
        // shifts pair probabilities ~O(1/N); allow a generous tolerance.
        let scale = (cell.num_sites() as f64) * 0.01;
        assert!(
            (mean - analytic).abs() < scale.max(0.5),
            "mean {mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn b2_ground_state_is_lower_than_random_for_ordering_model() {
        // A model where unlike first-shell pairs are favored and like
        // second-shell pairs are favored: B2 must beat random.
        let h = PairHamiltonian::from_pairs(
            4,
            2,
            &[
                (0, 0, 2, -0.05),
                (0, 0, 3, -0.05),
                (0, 1, 2, -0.05),
                (0, 1, 3, -0.05),
                (1, 0, 1, -0.02),
                (1, 2, 3, -0.02),
            ],
        );
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let b2 = Configuration::b2_ordered(&cell, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rand_cfg = Configuration::random(&comp, &mut rng);
        assert!(h.total_energy(&b2, &nt) < h.total_energy(&rand_cfg, &nt));
    }
}
