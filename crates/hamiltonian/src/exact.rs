//! Exact enumeration of small systems.
//!
//! For supercells with a handful of sites the full configuration space can
//! be enumerated, giving the *exact* density of states and canonical
//! averages. Every stochastic sampler in the workspace (Wang–Landau, REWL,
//! Metropolis, DeepThermo) is validated against these references in the
//! integration tests.

use dt_lattice::{Composition, Configuration, NeighborTable, Species};

use crate::model::EnergyModel;

/// Tolerance for grouping enumerated energies into discrete levels.
const LEVEL_TOL: f64 = 1e-9;

/// The exact density of states of a finite system: distinct energy levels
/// and their configuration counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactDos {
    energies: Vec<f64>,
    counts: Vec<u64>,
}

impl ExactDos {
    /// Enumerate every configuration of `comp` over the supercell behind
    /// `neighbors` and histogram exact energies.
    ///
    /// Cost is the multinomial `N! / Π N_a!` — keep `N ≲ 20` sites.
    pub fn enumerate<M: EnergyModel>(
        model: &M,
        neighbors: &NeighborTable,
        comp: &Composition,
    ) -> Self {
        assert_eq!(comp.num_sites(), neighbors.num_sites());
        let n = comp.num_sites();
        let mut remaining: Vec<usize> = comp.counts().to_vec();
        let mut assignment: Vec<Species> = vec![Species(0); n];
        let mut levels: Vec<(f64, u64)> = Vec::new();

        // Depth-first enumeration of multiset permutations.
        #[allow(clippy::too_many_arguments)]
        fn recurse<M: EnergyModel>(
            site: usize,
            n: usize,
            remaining: &mut [usize],
            assignment: &mut [Species],
            model: &M,
            neighbors: &NeighborTable,
            comp: &Composition,
            levels: &mut Vec<(f64, u64)>,
        ) {
            if site == n {
                let config = Configuration::from_species(assignment.to_vec(), comp.num_species());
                let e = model.total_energy(&config, neighbors);
                match levels.binary_search_by(|&(le, _)| le.partial_cmp(&e).expect("finite energy"))
                {
                    Ok(i) => levels[i].1 += 1,
                    Err(i) => {
                        // Merge into an adjacent level within tolerance.
                        if i > 0 && (levels[i - 1].0 - e).abs() <= LEVEL_TOL {
                            levels[i - 1].1 += 1;
                        } else if i < levels.len() && (levels[i].0 - e).abs() <= LEVEL_TOL {
                            levels[i].1 += 1;
                        } else {
                            levels.insert(i, (e, 1));
                        }
                    }
                }
                return;
            }
            for s in 0..remaining.len() {
                if remaining[s] == 0 {
                    continue;
                }
                remaining[s] -= 1;
                assignment[site] = Species(s as u8);
                recurse(
                    site + 1,
                    n,
                    remaining,
                    assignment,
                    model,
                    neighbors,
                    comp,
                    levels,
                );
                remaining[s] += 1;
            }
        }

        recurse(
            0,
            n,
            &mut remaining,
            &mut assignment,
            model,
            neighbors,
            comp,
            &mut levels,
        );

        ExactDos {
            energies: levels.iter().map(|&(e, _)| e).collect(),
            counts: levels.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// Distinct energy levels, ascending.
    pub fn energies(&self) -> &[f64] {
        &self.energies
    }

    /// Configuration count of each level.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `ln g(E)` for each level.
    pub fn ln_g(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| (c as f64).ln()).collect()
    }

    /// Total number of configurations enumerated.
    pub fn total_configurations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Ground-state (minimum) energy.
    pub fn ground_state_energy(&self) -> f64 {
        self.energies[0]
    }

    /// Exact canonical mean energy at inverse temperature `beta = 1/kT`
    /// (same energy units as the model).
    pub fn mean_energy(&self, beta: f64) -> f64 {
        let (z, ez) = self.weighted_sums(beta);
        ez / z
    }

    /// Exact canonical heat capacity `C_v / k_B = β² (⟨E²⟩ − ⟨E⟩²)`.
    pub fn heat_capacity(&self, beta: f64) -> f64 {
        let e0 = self.energies[0];
        let mut z = 0.0;
        let mut ez = 0.0;
        let mut e2z = 0.0;
        for (&e, &c) in self.energies.iter().zip(&self.counts) {
            let w = c as f64 * (-beta * (e - e0)).exp();
            z += w;
            ez += w * e;
            e2z += w * e * e;
        }
        let mean = ez / z;
        let mean2 = e2z / z;
        beta * beta * (mean2 - mean * mean)
    }

    /// Exact probability of each energy level at inverse temperature `beta`.
    pub fn level_probabilities(&self, beta: f64) -> Vec<f64> {
        let e0 = self.energies[0];
        let weights: Vec<f64> = self
            .energies
            .iter()
            .zip(&self.counts)
            .map(|(&e, &c)| c as f64 * (-beta * (e - e0)).exp())
            .collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }

    fn weighted_sums(&self, beta: f64) -> (f64, f64) {
        let e0 = self.energies[0];
        let mut z = 0.0;
        let mut ez = 0.0;
        for (&e, &c) in self.energies.iter().zip(&self.counts) {
            let w = c as f64 * (-beta * (e - e0)).exp();
            z += w;
            ez += w * e;
        }
        (z, ez)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::PairHamiltonian;
    use dt_lattice::{Structure, Supercell};

    fn binary_model() -> PairHamiltonian {
        // Ising-like: unlike pairs cost +0.01 in shell 1 only.
        PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, 0.01)])
    }

    #[test]
    fn total_count_matches_multinomial() {
        let cell = Supercell::cubic(Structure::bcc(), 2); // 16 sites
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let dos = ExactDos::enumerate(&binary_model(), &nt, &comp);
        // 16 choose 8 = 12870
        assert_eq!(dos.total_configurations(), 12_870);
        assert!((comp.ln_num_configurations() - 12_870f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ground_state_of_antiferro_binary_on_bcc_is_b2() {
        // Unlike-preferring model: V(0,1) < 0 ⇒ B2 checkerboard ground
        // state with all 8 first-shell pairs unlike: E = -N·z/2·|V|.
        let h = PairHamiltonian::from_pairs(2, 1, &[(0, 0, 1, -0.01)]);
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let dos = ExactDos::enumerate(&h, &nt, &comp);
        let expected = -0.01 * 16.0 * 8.0 / 2.0;
        assert!((dos.ground_state_energy() - expected).abs() < 1e-9);
        // The B2 state on L=2 BCC is 2-fold degenerate (sublattice swap).
        assert_eq!(dos.counts()[0], 2);
    }

    #[test]
    fn high_t_mean_energy_approaches_random_alloy_value() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let h = binary_model();
        let dos = ExactDos::enumerate(&h, &nt, &comp);
        let e_inf = dos
            .energies()
            .iter()
            .zip(dos.counts())
            .map(|(&e, &c)| e * c as f64)
            .sum::<f64>()
            / dos.total_configurations() as f64;
        // β → 0 canonical mean = unweighted mean over all states.
        assert!((dos.mean_energy(1e-12) - e_inf).abs() < 1e-6);
    }

    #[test]
    fn heat_capacity_is_nonnegative_and_vanishes_at_extremes() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let dos = ExactDos::enumerate(&binary_model(), &nt, &comp);
        for beta in [1e-9, 0.1, 1.0, 10.0, 100.0] {
            assert!(dos.heat_capacity(beta) >= -1e-12);
        }
        assert!(dos.heat_capacity(1e-9) < 1e-3);
        assert!(dos.heat_capacity(1e4) < 1e-3);
    }

    #[test]
    fn level_probabilities_sum_to_one() {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(2, 16).unwrap();
        let dos = ExactDos::enumerate(&binary_model(), &nt, &comp);
        let p = dos.level_probabilities(5.0);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn quaternary_enumeration_small() {
        // 8-site SC cell, 2 atoms each of 4 species: 8!/(2!^4) = 2520.
        let cell = Supercell::cubic(Structure::simple_cubic(), 2);
        let nt = cell.neighbor_table(1);
        let comp = Composition::equiatomic(4, 8).unwrap();
        let h = PairHamiltonian::from_pairs(4, 1, &[(0, 0, 1, -0.01), (0, 2, 3, 0.02)]);
        let dos = ExactDos::enumerate(&h, &nt, &comp);
        assert_eq!(dos.total_configurations(), 2520);
        assert_eq!(dos.energies().len(), dos.counts().len());
    }
}
