//! The alloy-agnostic material layer.
//!
//! A [`Material`] bundles everything the pipeline needs to know about an
//! alloy system: the crystal [`Structure`], the named [`SpeciesSet`], the
//! relative composition ratios, the number of interaction shells, and the
//! EPI [`PairHamiltonian`]. Everything above this layer — surrogate and
//! proposal training, REWL sampling, serving — is generic over it.
//!
//! Materials come from two places:
//!
//! - the **registry** of built-ins ([`Material::builtin`]): `nbmotaw`
//!   (the paper's BCC refractory HEA, bit-identical to the historical
//!   hard-wired path) and `crconi` (an FCC ordering alloy with 4 shells);
//! - **declarative files** in the `dtmat v1` text format
//!   ([`Material::parse`] / [`Material::serialize`]), so new alloys need
//!   no recompile. The format round-trips exactly: floats are written
//!   with shortest-exact formatting and re-read bit-identically.
//!
//! ```text
//! dtmat v1
//! name cuau
//! display CuAu
//! structure fcc
//! shells 4
//! species Cu Au
//! ratios 1 1
//! epi 0 Cu Au -0.012
//! epi 1 Cu Cu -0.004
//! end
//! ```

use std::fmt;
use std::path::Path;

use dt_lattice::{Composition, LatticeError, SpeciesSet, Structure};

use crate::pair::PairHamiltonian;

/// Errors producing a [`Material`] from the registry or a definition file.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterialError {
    /// The requested name is not in the built-in registry.
    UnknownBuiltin(String),
    /// Reading or writing a material file failed.
    Io {
        /// Path of the file.
        path: String,
        /// OS error message.
        message: String,
    },
    /// A material file failed to parse.
    Parse {
        /// 1-based line number of the offending line (0 for file-level
        /// problems such as a missing header).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The species set and the Hamiltonian disagree on species count.
    SpeciesCountMismatch {
        /// Number of named species.
        species: usize,
        /// Number of species the Hamiltonian was built for.
        hamiltonian: usize,
    },
    /// The declared shell count and the Hamiltonian disagree.
    ShellCountMismatch {
        /// Declared number of shells.
        shells: usize,
        /// Number of shells the Hamiltonian carries.
        hamiltonian: usize,
    },
    /// The composition ratio list does not match the species count.
    RatioCountMismatch {
        /// Number of ratios given.
        ratios: usize,
        /// Number of named species.
        species: usize,
    },
    /// A lattice-layer validation failed (bad ratios, too many species,
    /// shells unavailable on the structure, ...).
    Lattice(LatticeError),
}

impl fmt::Display for MaterialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterialError::UnknownBuiltin(name) => write!(
                f,
                "unknown built-in material '{name}' (available: {})",
                Material::builtin_names().join(", ")
            ),
            MaterialError::Io { path, message } => {
                write!(f, "material file {path}: {message}")
            }
            MaterialError::Parse { line, message } => {
                write!(f, "material file line {line}: {message}")
            }
            MaterialError::SpeciesCountMismatch {
                species,
                hamiltonian,
            } => write!(
                f,
                "{species} species named but the Hamiltonian has {hamiltonian}"
            ),
            MaterialError::ShellCountMismatch {
                shells,
                hamiltonian,
            } => write!(
                f,
                "{shells} shells declared but the Hamiltonian has {hamiltonian}"
            ),
            MaterialError::RatioCountMismatch { ratios, species } => {
                write!(f, "{ratios} composition ratios given for {species} species")
            }
            MaterialError::Lattice(e) => write!(f, "lattice: {e}"),
        }
    }
}

impl std::error::Error for MaterialError {}

impl From<LatticeError> for MaterialError {
    fn from(e: LatticeError) -> Self {
        MaterialError::Lattice(e)
    }
}

/// A complete alloy system definition: structure + species + composition
/// ratios + shell count + EPI matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct Material {
    key: String,
    display_name: String,
    structure: Structure,
    species: SpeciesSet,
    ratios: Vec<f64>,
    num_shells: usize,
    hamiltonian: PairHamiltonian,
}

impl Material {
    /// Assemble a material, validating that species set, composition
    /// ratios, shell count, and Hamiltonian are mutually consistent.
    ///
    /// # Errors
    /// Fails on any count mismatch or invalid ratio list.
    pub fn new(
        key: impl Into<String>,
        display_name: impl Into<String>,
        structure: Structure,
        species: SpeciesSet,
        ratios: Vec<f64>,
        num_shells: usize,
        hamiltonian: PairHamiltonian,
    ) -> Result<Self, MaterialError> {
        use crate::model::EnergyModel;
        if species.len() != hamiltonian.num_species() {
            return Err(MaterialError::SpeciesCountMismatch {
                species: species.len(),
                hamiltonian: hamiltonian.num_species(),
            });
        }
        if num_shells == 0 || num_shells != hamiltonian.num_shells() {
            return Err(MaterialError::ShellCountMismatch {
                shells: num_shells,
                hamiltonian: hamiltonian.num_shells(),
            });
        }
        if ratios.len() != species.len() {
            return Err(MaterialError::RatioCountMismatch {
                ratios: ratios.len(),
                species: species.len(),
            });
        }
        if ratios.iter().any(|r| !r.is_finite() || *r < 0.0) || ratios.iter().sum::<f64>() <= 0.0 {
            return Err(MaterialError::Lattice(LatticeError::BadRatios));
        }
        Ok(Material {
            key: key.into(),
            display_name: display_name.into(),
            structure,
            species,
            ratios,
            num_shells,
            hamiltonian,
        })
    }

    /// Registry key (lowercase identifier used in artifact ids and the
    /// CLI, e.g. `"nbmotaw"`).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Human-readable name (e.g. `"NbMoTaW"`).
    pub fn display_name(&self) -> &str {
        &self.display_name
    }

    /// Crystal structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Named species set.
    pub fn species(&self) -> &SpeciesSet {
        &self.species
    }

    /// Relative composition ratios, one per species (need not sum to 1).
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Number of interaction shells the Hamiltonian couples.
    pub fn num_shells(&self) -> usize {
        self.num_shells
    }

    /// The EPI Hamiltonian.
    pub fn hamiltonian(&self) -> &PairHamiltonian {
        &self.hamiltonian
    }

    /// Number of species.
    pub fn num_species(&self) -> usize {
        self.species.len()
    }

    /// True when every species has the same composition ratio.
    pub fn is_equiatomic(&self) -> bool {
        self.ratios
            .iter()
            .all(|&r| (r - self.ratios[0]).abs() < 1e-12)
    }

    /// Apportion `num_sites` lattice sites according to the composition
    /// ratios. Equiatomic ratios reproduce [`Composition::equiatomic`]
    /// bit-identically.
    ///
    /// # Errors
    /// Propagates [`LatticeError`] for invalid site counts.
    pub fn composition(&self, num_sites: usize) -> Result<Composition, MaterialError> {
        if self.is_equiatomic() {
            // Preserve the historical code path (and its exact rounding)
            // for the equiatomic case.
            return Ok(Composition::equiatomic(self.species.len(), num_sites)?);
        }
        Ok(Composition::from_ratios(&self.ratios, num_sites)?)
    }

    /// Same material with different composition ratios (e.g. an
    /// off-stoichiometry variant of a registry entry).
    ///
    /// # Errors
    /// Fails when the ratio list is invalid for this species set.
    pub fn with_ratios(&self, ratios: Vec<f64>) -> Result<Self, MaterialError> {
        Material::new(
            self.key.clone(),
            self.display_name.clone(),
            self.structure.clone(),
            self.species.clone(),
            ratios,
            self.num_shells,
            self.hamiltonian.clone(),
        )
    }

    /// One-line composition summary: `"equiatomic"` or percentage
    /// fractions like `"40/30/30"`.
    pub fn composition_summary(&self) -> String {
        if self.is_equiatomic() {
            return "equiatomic".to_string();
        }
        let sum: f64 = self.ratios.iter().sum();
        self.ratios
            .iter()
            .map(|r| format!("{:.0}", 100.0 * r / sum))
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Names of the built-in registry entries.
    pub fn builtin_names() -> &'static [&'static str] {
        &["nbmotaw", "crconi"]
    }

    /// Look up a built-in material by registry key.
    ///
    /// # Errors
    /// [`MaterialError::UnknownBuiltin`] for names not in the registry.
    pub fn builtin(name: &str) -> Result<Self, MaterialError> {
        match name {
            "nbmotaw" => Ok(Self::nbmotaw()),
            "crconi" => Ok(Self::crconi()),
            other => Err(MaterialError::UnknownBuiltin(other.to_string())),
        }
    }

    /// The paper's system: equiatomic NbMoTaW on BCC with 2 EPI shells.
    /// The Hamiltonian is exactly [`crate::nbmotaw::nbmotaw`], so every
    /// golden fingerprint of the historical hard-wired path is preserved.
    pub fn nbmotaw() -> Self {
        Material::new(
            "nbmotaw",
            "NbMoTaW",
            Structure::bcc(),
            SpeciesSet::nb_mo_ta_w(),
            vec![1.0; 4],
            2,
            crate::nbmotaw::nbmotaw(),
        )
        .expect("static material is valid")
    }

    /// An FCC ordering alloy shaped after CrCoNi: 3 species, 4 EPI
    /// shells. First-shell interactions disfavor Cr–Cr pairs and favor
    /// Cr–Co / Cr–Ni unlike pairs — the strong chemical short-range order
    /// reported for CrCoNi — while weaker far-shell terms stabilize the
    /// ordered arrangement, driving an order–disorder transition the
    /// FCC end-to-end pipeline can resolve.
    pub fn crconi() -> Self {
        // shell, a, b, V (eV); species Cr=0, Co=1, Ni=2.
        let epi: &[(usize, usize, usize, f64)] = &[
            (0, 0, 0, 0.0300),
            (0, 0, 1, -0.0240),
            (0, 0, 2, -0.0280),
            (0, 1, 1, 0.0040),
            (0, 1, 2, -0.0020),
            (0, 2, 2, 0.0020),
            (1, 0, 0, -0.0120),
            (1, 0, 1, 0.0080),
            (1, 0, 2, 0.0100),
            (2, 0, 1, -0.0030),
            (2, 0, 2, -0.0020),
            (3, 0, 0, 0.0020),
            (3, 1, 2, -0.0020),
        ];
        Material::new(
            "crconi",
            "CrCoNi",
            Structure::fcc(),
            SpeciesSet::new(vec!["Cr", "Co", "Ni"]).expect("static set is valid"),
            vec![1.0; 3],
            4,
            PairHamiltonian::from_pairs(3, 4, epi),
        )
        .expect("static material is valid")
    }

    /// Resolve a CLI-style specifier: a built-in registry key, or a path
    /// to a `dtmat v1` file.
    ///
    /// # Errors
    /// Propagates registry / IO / parse errors.
    pub fn resolve(spec: &str) -> Result<Self, MaterialError> {
        if Self::builtin_names().contains(&spec) {
            Self::builtin(spec)
        } else if spec.contains(['/', '.']) || Path::new(spec).exists() {
            Self::load(Path::new(spec))
        } else {
            // A bare word that is neither a registry key nor an existing
            // file reads better as "unknown material" than as an IO error.
            Err(MaterialError::UnknownBuiltin(spec.to_string()))
        }
    }

    /// Load a material definition from a `dtmat v1` file.
    ///
    /// # Errors
    /// [`MaterialError::Io`] on read failure, parse errors otherwise.
    pub fn load(path: &Path) -> Result<Self, MaterialError> {
        let text = std::fs::read_to_string(path).map_err(|e| MaterialError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Self::parse(&text)
    }

    /// Write this material as a `dtmat v1` file.
    ///
    /// # Errors
    /// [`MaterialError::Io`] on write failure.
    pub fn save(&self, path: &Path) -> Result<(), MaterialError> {
        std::fs::write(path, self.serialize()).map_err(|e| MaterialError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Serialize to the `dtmat v1` text format. Floats are written with
    /// shortest-exact formatting, so [`Material::parse`] round-trips
    /// bit-identically.
    pub fn serialize(&self) -> String {
        use dt_lattice::Species;
        let mut out = String::new();
        out.push_str("dtmat v1\n");
        out.push_str(&format!("name {}\n", self.key));
        out.push_str(&format!("display {}\n", self.display_name));
        out.push_str(&format!("structure {}\n", self.structure.name()));
        out.push_str(&format!("shells {}\n", self.num_shells));
        out.push_str("species");
        for (_, name) in self.species.iter() {
            out.push(' ');
            out.push_str(name);
        }
        out.push('\n');
        out.push_str("ratios");
        for r in &self.ratios {
            out.push_str(&format!(" {r:?}"));
        }
        out.push('\n');
        let m = self.species.len();
        for shell in 0..self.num_shells {
            for a in 0..m {
                for b in a..m {
                    let v = self
                        .hamiltonian
                        .v(shell, Species(a as u8), Species(b as u8));
                    if v != 0.0 {
                        out.push_str(&format!(
                            "epi {shell} {} {} {v:?}\n",
                            self.species.name(Species(a as u8)),
                            self.species.name(Species(b as u8)),
                        ));
                    }
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse a `dtmat v1` document.
    ///
    /// # Errors
    /// [`MaterialError::Parse`] with the offending line number; count and
    /// validity mismatches surface as their typed variants.
    pub fn parse(text: &str) -> Result<Self, MaterialError> {
        let err = |line: usize, message: String| MaterialError::Parse { line, message };
        let mut lines = text.lines().enumerate();
        // The header must be the first material line, but comments and
        // blank lines may precede it (files often open with a banner).
        let (n, header) = lines
            .by_ref()
            .find(|(_, l)| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with('#')
            })
            .ok_or_else(|| err(0, "empty material file".into()))?;
        if header.trim() != "dtmat v1" {
            return Err(err(
                n + 1,
                format!("expected 'dtmat v1' header, got '{header}'"),
            ));
        }

        let mut name: Option<String> = None;
        let mut display: Option<String> = None;
        let mut structure: Option<Structure> = None;
        let mut shells: Option<usize> = None;
        let mut species: Option<SpeciesSet> = None;
        let mut ratios: Option<Vec<f64>> = None;
        let mut epi: Vec<(usize, usize, usize, f64)> = Vec::new();
        let mut saw_end = false;

        for (i, raw) in lines {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tokens = line.split_whitespace();
            let kw = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            match kw {
                "name" => {
                    name = Some(
                        rest.first()
                            .ok_or_else(|| err(lineno, "name needs a value".into()))?
                            .to_string(),
                    );
                }
                "display" => {
                    display = Some(rest.join(" "));
                }
                "structure" => {
                    let s = rest
                        .first()
                        .ok_or_else(|| err(lineno, "structure needs a value".into()))?;
                    structure = Some(match *s {
                        "bcc" => Structure::bcc(),
                        "fcc" => Structure::fcc(),
                        "sc" => Structure::simple_cubic(),
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown structure '{other}' (bcc, fcc, sc)"),
                            ))
                        }
                    });
                }
                "shells" => {
                    let s = rest
                        .first()
                        .ok_or_else(|| err(lineno, "shells needs a value".into()))?;
                    shells = Some(
                        s.parse::<usize>()
                            .map_err(|_| err(lineno, format!("bad shell count '{s}'")))?,
                    );
                }
                "species" => {
                    if rest.is_empty() {
                        return Err(err(lineno, "species needs at least one name".into()));
                    }
                    species = Some(SpeciesSet::new(
                        rest.iter().map(|s| s.to_string()).collect(),
                    )?);
                }
                "ratios" => {
                    let mut v = Vec::with_capacity(rest.len());
                    for s in &rest {
                        v.push(
                            s.parse::<f64>()
                                .map_err(|_| err(lineno, format!("bad ratio '{s}'")))?,
                        );
                    }
                    ratios = Some(v);
                }
                "epi" => {
                    if rest.len() != 4 {
                        return Err(err(
                            lineno,
                            "epi needs: <shell> <species> <species> <value>".into(),
                        ));
                    }
                    let sp = species.as_ref().ok_or_else(|| {
                        err(lineno, "epi lines must come after the species line".into())
                    })?;
                    let shell = rest[0]
                        .parse::<usize>()
                        .map_err(|_| err(lineno, format!("bad epi shell '{}'", rest[0])))?;
                    let a = sp.by_name(rest[1]).ok_or_else(|| {
                        err(lineno, format!("unknown species '{}' in epi line", rest[1]))
                    })?;
                    let b = sp.by_name(rest[2]).ok_or_else(|| {
                        err(lineno, format!("unknown species '{}' in epi line", rest[2]))
                    })?;
                    let v = rest[3]
                        .parse::<f64>()
                        .map_err(|_| err(lineno, format!("bad epi value '{}'", rest[3])))?;
                    epi.push((shell, a.index(), b.index(), v));
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                other => {
                    return Err(err(lineno, format!("unknown keyword '{other}'")));
                }
            }
        }
        if !saw_end {
            return Err(err(0, "missing 'end' line".into()));
        }

        let missing = |what: &str| err(0, format!("missing '{what}' line"));
        let name = name.ok_or_else(|| missing("name"))?;
        let structure = structure.ok_or_else(|| missing("structure"))?;
        let shells = shells.ok_or_else(|| missing("shells"))?;
        let species = species.ok_or_else(|| missing("species"))?;
        let display = display.unwrap_or_else(|| name.clone());
        let ratios = ratios.unwrap_or_else(|| vec![1.0; species.len()]);

        if shells == 0 {
            return Err(err(0, "shell count must be at least 1".into()));
        }
        for &(shell, _, _, _) in &epi {
            if shell >= shells {
                return Err(err(
                    0,
                    format!("epi shell {shell} out of range for {shells} shells"),
                ));
            }
        }
        let hamiltonian = PairHamiltonian::from_pairs(species.len(), shells, &epi);
        Material::new(
            name,
            display,
            structure,
            species,
            ratios,
            shells,
            hamiltonian,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EnergyModel;
    use crate::nbmotaw::nbmotaw;

    #[test]
    fn builtin_nbmotaw_is_bit_identical_to_legacy_hamiltonian() {
        let mat = Material::builtin("nbmotaw").unwrap();
        assert_eq!(*mat.hamiltonian(), nbmotaw());
        assert_eq!(mat.key(), "nbmotaw");
        assert_eq!(mat.display_name(), "NbMoTaW");
        assert_eq!(mat.structure().name(), "bcc");
        assert_eq!(mat.num_shells(), 2);
        assert!(mat.is_equiatomic());
    }

    #[test]
    fn builtin_nbmotaw_composition_matches_equiatomic() {
        let mat = Material::nbmotaw();
        let c = mat.composition(128).unwrap();
        assert_eq!(c, Composition::equiatomic(4, 128).unwrap());
    }

    #[test]
    fn builtin_crconi_is_fcc_four_shell() {
        let mat = Material::builtin("crconi").unwrap();
        assert_eq!(mat.structure().name(), "fcc");
        assert_eq!(mat.num_shells(), 4);
        assert_eq!(mat.num_species(), 3);
        assert_eq!(mat.hamiltonian().num_shells(), 4);
        // The defining chemistry: Cr-Cr first-shell repulsion dominates.
        use dt_lattice::Species;
        let h = mat.hamiltonian();
        assert!(h.v(0, Species(0), Species(0)) > 0.0);
        assert!(h.v(0, Species(0), Species(1)) < 0.0);
        assert!(h.v(0, Species(0), Species(2)) < 0.0);
    }

    #[test]
    fn unknown_builtin_is_typed_error() {
        match Material::builtin("unobtainium") {
            Err(MaterialError::UnknownBuiltin(n)) => assert_eq!(n, "unobtainium"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn builtin_registry_round_trips_through_dtmat() {
        for name in Material::builtin_names() {
            let mat = Material::builtin(name).unwrap();
            let text = mat.serialize();
            let back = Material::parse(&text).unwrap();
            assert_eq!(mat, back, "round trip failed for {name}");
        }
    }

    #[test]
    fn dtmat_round_trips_awkward_floats() {
        let mat = Material::new(
            "toy",
            "Toy",
            Structure::simple_cubic(),
            SpeciesSet::new(vec!["A", "B"]).unwrap(),
            vec![0.1, 0.3],
            2,
            PairHamiltonian::from_pairs(
                2,
                2,
                &[(0, 0, 1, -0.017_345_600_000_000_2), (1, 0, 0, 1.0e-17)],
            ),
        )
        .unwrap();
        let back = Material::parse(&mat.serialize()).unwrap();
        assert_eq!(mat, back);
    }

    #[test]
    fn parse_reports_line_numbers() {
        let text = "dtmat v1\nname x\nstructure bcc\nshells 2\nspecies A B\nepi 0 A C 1.0\nend\n";
        match Material::parse(text) {
            Err(MaterialError::Parse { line, message }) => {
                assert_eq!(line, 6);
                assert!(message.contains("unknown species 'C'"), "{message}");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_header_and_missing_end() {
        assert!(matches!(
            Material::parse("not a material"),
            Err(MaterialError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            Material::parse("dtmat v1\nname x\nstructure bcc\nshells 1\nspecies A\n"),
            Err(MaterialError::Parse { line: 0, .. })
        ));
    }

    #[test]
    fn parse_rejects_out_of_range_epi_shell() {
        let text = "dtmat v1\nname x\nstructure bcc\nshells 1\nspecies A B\nepi 3 A B 1.0\nend\n";
        assert!(matches!(
            Material::parse(text),
            Err(MaterialError::Parse { .. })
        ));
    }

    #[test]
    fn non_equiatomic_ratios_flow_into_composition() {
        let mat = Material::crconi().with_ratios(vec![4.0, 3.0, 3.0]).unwrap();
        assert!(!mat.is_equiatomic());
        assert_eq!(mat.composition_summary(), "40/30/30");
        let c = mat.composition(100).unwrap();
        assert_eq!(c.counts(), &[40, 30, 30]);
    }

    #[test]
    fn with_ratios_validates() {
        assert!(Material::crconi().with_ratios(vec![1.0]).is_err());
        assert!(Material::crconi().with_ratios(vec![0.0, 0.0, 0.0]).is_err());
    }

    #[test]
    fn resolve_prefers_registry_then_path() {
        assert_eq!(Material::resolve("crconi").unwrap(), Material::crconi());
        assert!(matches!(
            Material::resolve("/nonexistent/file.dtmat"),
            Err(MaterialError::Io { .. })
        ));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("dtmat_roundtrip_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crconi.dtmat");
        let mat = Material::crconi();
        mat.save(&path).unwrap();
        let back = Material::load(&path).unwrap();
        assert_eq!(mat, back);
        std::fs::remove_file(&path).ok();
    }
}
