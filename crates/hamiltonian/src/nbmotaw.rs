//! The NbMoTaW parameter set.
//!
//! Effective pair interactions shaped after published cluster expansions of
//! the NbMoTaW refractory high-entropy alloy (Widom et al.; Yin et al.):
//! the dominant chemistry is a strong Mo–Ta (and, weaker, W–Nb / Mo–Nb)
//! nearest-neighbor ordering tendency that drives a B2-like order–disorder
//! transition well below the melting point. Absolute magnitudes here are
//! calibrated to place that transition in the experimentally discussed
//! few-hundred-to-~1000 K range rather than to reproduce any single DFT
//! dataset — DeepThermo's sampling behaviour depends on the *shape* of the
//! energy landscape, which this set preserves.

use dt_lattice::{Species, SpeciesSet};

use crate::pair::PairHamiltonian;

/// Boltzmann constant in eV/K.
pub const KB_EV_PER_K: f64 = 8.617_333_262e-5;

/// Species indices for the NbMoTaW set.
pub mod elements {
    use dt_lattice::Species;
    /// Niobium.
    pub const NB: Species = Species(0);
    /// Molybdenum.
    pub const MO: Species = Species(1);
    /// Tantalum.
    pub const TA: Species = Species(2);
    /// Tungsten.
    pub const W: Species = Species(3);
}

/// The ordered species set (Nb, Mo, Ta, W).
pub fn nbmotaw_species() -> SpeciesSet {
    SpeciesSet::nb_mo_ta_w()
}

/// Two-shell EPI Hamiltonian for equiatomic NbMoTaW on BCC (eV per pair).
///
/// First-shell mixing energies favor unlike Mo–Ta / Mo–Nb / W–Nb pairs
/// (B2-type ordering across the two BCC sublattices); second-shell terms
/// weakly favor like pairs on the same sublattice, stabilizing the ordered
/// phase.
pub fn nbmotaw() -> PairHamiltonian {
    use elements::*;
    let p = |a: Species, b: Species| (a.index(), b.index());
    let (nb_mo, nb_ta, nb_w) = (p(NB, MO), p(NB, TA), p(NB, W));
    let (mo_ta, mo_w, ta_w) = (p(MO, TA), p(MO, W), p(TA, W));
    PairHamiltonian::from_pairs(
        4,
        2,
        &[
            // shell, a, b, V (eV)
            (0, nb_mo.0, nb_mo.1, -0.0185),
            (0, nb_ta.0, nb_ta.1, -0.0040),
            (0, nb_w.0, nb_w.1, -0.0220),
            (0, mo_ta.0, mo_ta.1, -0.0465),
            (0, mo_w.0, mo_w.1, -0.0060),
            (0, ta_w.0, ta_w.1, -0.0155),
            (1, nb_mo.0, nb_mo.1, 0.0085),
            (1, nb_ta.0, nb_ta.1, 0.0015),
            (1, nb_w.0, nb_w.1, 0.0095),
            (1, mo_ta.0, mo_ta.1, 0.0205),
            (1, mo_w.0, mo_w.1, 0.0030),
            (1, ta_w.0, ta_w.1, 0.0070),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EnergyModel;
    use dt_lattice::{Composition, Configuration, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mo_ta_is_the_strongest_first_shell_interaction() {
        let h = nbmotaw();
        use elements::*;
        let v_mota = h.v(0, MO, TA);
        for (a, b) in [(NB, MO), (NB, TA), (NB, W), (MO, W), (TA, W)] {
            assert!(v_mota < h.v(0, a, b), "Mo-Ta must dominate shell 1");
        }
    }

    #[test]
    fn interactions_are_symmetric() {
        let h = nbmotaw();
        for shell in 0..2 {
            for a in 0..4u8 {
                for b in 0..4u8 {
                    assert_eq!(
                        h.v(shell, Species(a), Species(b)),
                        h.v(shell, Species(b), Species(a))
                    );
                }
            }
        }
    }

    #[test]
    fn b2_order_beats_random_alloy() {
        let h = nbmotaw();
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        // (Nb,Mo | Ta,W) split puts the strong Mo–Ta and Nb–W bonds across
        // sublattices.
        let b2 = Configuration::b2_ordered(&cell, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut random_mean = 0.0;
        for _ in 0..20 {
            random_mean += h.total_energy(&Configuration::random(&comp, &mut rng), &nt);
        }
        random_mean /= 20.0;
        let e_b2 = h.total_energy(&b2, &nt);
        assert!(
            e_b2 < random_mean,
            "ordered {e_b2} must undercut random {random_mean}"
        );
    }

    #[test]
    fn energy_scale_is_physical() {
        // Per-atom energies should sit in the tens-of-meV range so that the
        // order-disorder transition lands at a few hundred kelvin
        // (k_B * 1000 K ≈ 86 meV).
        let h = nbmotaw();
        let cell = Supercell::cubic(Structure::bcc(), 4);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let c = Configuration::random(&comp, &mut rng);
        let per_atom = h.total_energy(&c, &nt) / cell.num_sites() as f64;
        assert!(per_atom.abs() < 0.5, "per-atom energy {per_atom} eV");
        assert!(per_atom.abs() > 0.001, "per-atom energy {per_atom} eV");
    }

    #[test]
    fn kb_matches_codata() {
        assert!((KB_EV_PER_K - 8.617333262e-5).abs() < 1e-15);
    }
}
