//! The [`EnergyModel`] abstraction and shared scratch space for
//! incremental energy evaluation.

use dt_lattice::{Configuration, NeighborTable, SiteId, Species};

/// Reusable scratch buffers for k-site reassignment deltas.
///
/// Monte Carlo inner loops call [`EnergyModel::reassign_delta`] millions of
/// times; this workspace keeps those calls allocation-free. One workspace
/// per walker (it is not shared across threads).
#[derive(Debug, Clone)]
pub struct DeltaWorkspace {
    /// Membership mask over sites: `mark[i] == epoch` iff site `i` is in
    /// the current move's reassignment set.
    mark: Vec<u64>,
    epoch: u64,
}

impl DeltaWorkspace {
    /// Workspace for a supercell with `num_sites` sites.
    pub fn new(num_sites: usize) -> Self {
        DeltaWorkspace {
            mark: vec![0; num_sites],
            epoch: 0,
        }
    }

    /// Begin a new move: returns the fresh epoch value.
    #[inline]
    fn begin(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Mark a site as a member of the current move's set.
    #[inline]
    fn mark(&mut self, site: SiteId) {
        self.mark[site as usize] = self.epoch;
    }

    /// Is the site in the current move's set?
    #[inline]
    fn contains(&self, site: SiteId) -> bool {
        self.mark[site as usize] == self.epoch
    }

    /// Number of sites this workspace covers.
    pub fn num_sites(&self) -> usize {
        self.mark.len()
    }
}

/// A configuration energy functional with incremental updates.
///
/// Implementations must satisfy, for any configuration `σ` and move `m`:
/// `total_energy(apply(σ, m)) == total_energy(σ) + delta(σ, m)` up to
/// floating-point error — this contract is enforced by property tests in
/// both `dt-hamiltonian` and `dt-surrogate`.
pub trait EnergyModel: Send + Sync {
    /// Number of species the model understands.
    fn num_species(&self) -> usize;

    /// Number of coordination shells the model reads. A matching
    /// [`NeighborTable`] must provide at least this many shells.
    fn num_shells(&self) -> usize;

    /// Total energy of a configuration (eV).
    fn total_energy(&self, config: &Configuration, neighbors: &NeighborTable) -> f64;

    /// Energy change if the species on sites `a` and `b` were swapped.
    /// Must be exact for `a == b` (zero) and for adjacent sites.
    fn swap_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
    ) -> f64;

    /// Energy change if each `(site, species)` in `moves` were applied
    /// simultaneously. Sites must be distinct. `workspace` provides
    /// allocation-free scratch.
    fn reassign_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(SiteId, Species)],
        workspace: &mut DeltaWorkspace,
    ) -> f64;

    /// A (loose but safe) lower bound on the energy of any configuration
    /// with `num_sites` sites — used to initialize Wang–Landau energy
    /// windows before the range is refined.
    fn energy_lower_bound(&self, neighbors: &NeighborTable) -> f64;

    /// A (loose but safe) upper bound, mirror of
    /// [`EnergyModel::energy_lower_bound`].
    fn energy_upper_bound(&self, neighbors: &NeighborTable) -> f64;
}

/// Blanket impl so `&M`, `Box<M>`, `Arc<M>` all work where an
/// `EnergyModel` is expected.
impl<M: EnergyModel + ?Sized> EnergyModel for &M {
    fn num_species(&self) -> usize {
        (**self).num_species()
    }
    fn num_shells(&self) -> usize {
        (**self).num_shells()
    }
    fn total_energy(&self, config: &Configuration, neighbors: &NeighborTable) -> f64 {
        (**self).total_energy(config, neighbors)
    }
    fn swap_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
    ) -> f64 {
        (**self).swap_delta(config, neighbors, a, b)
    }
    fn reassign_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(SiteId, Species)],
        workspace: &mut DeltaWorkspace,
    ) -> f64 {
        (**self).reassign_delta(config, neighbors, moves, workspace)
    }
    fn energy_lower_bound(&self, neighbors: &NeighborTable) -> f64 {
        (**self).energy_lower_bound(neighbors)
    }
    fn energy_upper_bound(&self, neighbors: &NeighborTable) -> f64 {
        (**self).energy_upper_bound(neighbors)
    }
}

pub(crate) use workspace_internals::*;

mod workspace_internals {
    use super::*;

    /// Internal hooks used by concrete models in this crate.
    pub(crate) trait WorkspaceExt {
        fn begin_move(&mut self) -> u64;
        fn mark_site(&mut self, site: SiteId);
        fn in_move(&self, site: SiteId) -> bool;
    }

    impl WorkspaceExt for DeltaWorkspace {
        #[inline]
        fn begin_move(&mut self) -> u64 {
            self.begin()
        }
        #[inline]
        fn mark_site(&mut self, site: SiteId) {
            self.mark(site)
        }
        #[inline]
        fn in_move(&self, site: SiteId) -> bool {
            self.contains(site)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_epochs_do_not_leak_between_moves() {
        let mut ws = DeltaWorkspace::new(8);
        ws.begin_move();
        ws.mark_site(3);
        assert!(ws.in_move(3));
        ws.begin_move();
        assert!(!ws.in_move(3), "previous move's marks must expire");
        assert_eq!(ws.num_sites(), 8);
    }
}
