//! # dt-hamiltonian
//!
//! Configuration energy models for on-lattice alloy Monte Carlo.
//!
//! DeepThermo's samplers are generic over an [`EnergyModel`]: anything that
//! can produce a total configuration energy and *incremental* energy
//! differences for the two move classes the framework uses — two-site swaps
//! (the classical local proposal) and k-site reassignments (the deep,
//! global proposal).
//!
//! The concrete physics here is an effective pair-interaction (EPI)
//! cluster-expansion Hamiltonian ([`PairHamiltonian`]) with a parameter set
//! shaped after the NbMoTaW refractory high-entropy alloy
//! ([`nbmotaw::nbmotaw`]). The paper evaluated a deep-learning potential
//! trained on DFT; the sampling algorithms only ever see the [`EnergyModel`]
//! interface, so the EPI model is a faithful drop-in substrate (see
//! DESIGN.md, "Substitutions").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exact;
pub mod material;
pub mod model;
pub mod nbmotaw;
pub mod pair;

pub use material::{Material, MaterialError};
pub use model::{DeltaWorkspace, EnergyModel};
pub use nbmotaw::{nbmotaw, nbmotaw_species, KB_EV_PER_K};
pub use pair::PairHamiltonian;
