//! Property tests: incremental energies must agree with full recomputation
//! for arbitrary interaction matrices, structures, and move sets.

use dt_hamiltonian::{DeltaWorkspace, EnergyModel, PairHamiltonian};
use dt_lattice::{Composition, Configuration, SiteId, Species, Structure, Supercell};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Random symmetric interaction matrices for `m` species and 2 shells.
fn interaction_matrices(m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    let upper = m * (m + 1) / 2;
    proptest::collection::vec(
        proptest::collection::vec(-0.1f64..0.1, upper..=upper),
        2..=2,
    )
    .prop_map(move |shells| {
        shells
            .into_iter()
            .map(|tri| {
                let mut mat = vec![0.0; m * m];
                let mut k = 0;
                for a in 0..m {
                    for b in a..m {
                        mat[a * m + b] = tri[k];
                        mat[b * m + a] = tri[k];
                        k += 1;
                    }
                }
                mat
            })
            .collect()
    })
}

fn structures() -> impl Strategy<Value = Structure> {
    prop_oneof![
        Just(Structure::bcc()),
        Just(Structure::fcc()),
        Just(Structure::simple_cubic()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn swap_delta_agrees_with_recompute(
        structure in structures(),
        l in 2usize..4,
        mats in interaction_matrices(3),
        seed in any::<u64>(),
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..12),
    ) {
        let cell = Supercell::cubic(structure, l);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(3, cell.num_sites()).unwrap();
        let h = PairHamiltonian::new(3, mats);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = Configuration::random(&comp, &mut rng);
        let n = cell.num_sites() as u32;
        for (ra, rb) in pairs {
            let a = (ra % n) as SiteId;
            let b = (rb % n) as SiteId;
            let e0 = h.total_energy(&config, &nt);
            let d = h.swap_delta(&config, &nt, a, b);
            config.swap(a, b);
            let e1 = h.total_energy(&config, &nt);
            prop_assert!(((e1 - e0) - d).abs() < 1e-9);
        }
    }

    #[test]
    fn reassign_delta_agrees_with_recompute(
        structure in structures(),
        mats in interaction_matrices(4),
        seed in any::<u64>(),
        raw_moves in proptest::collection::vec((any::<u32>(), 0u8..4), 1..20),
    ) {
        let cell = Supercell::cubic(structure, 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let h = PairHamiltonian::new(4, mats);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(cell.num_sites());

        // Deduplicate sites (keep first occurrence).
        let n = cell.num_sites() as u32;
        let mut seen = vec![false; cell.num_sites()];
        let mut moves: Vec<(SiteId, Species)> = Vec::new();
        for (rs, sp) in raw_moves {
            let site = (rs % n) as SiteId;
            if !seen[site as usize] {
                seen[site as usize] = true;
                moves.push((site, Species(sp)));
            }
        }

        let e0 = h.total_energy(&config, &nt);
        let d = h.reassign_delta(&config, &nt, &moves, &mut ws);
        for &(s, sp) in &moves {
            config.set(s, sp);
        }
        let e1 = h.total_energy(&config, &nt);
        prop_assert!(((e1 - e0) - d).abs() < 1e-9, "recompute {} vs {}", e1 - e0, d);
    }

    #[test]
    fn total_energy_within_bounds(
        structure in structures(),
        mats in interaction_matrices(4),
        seed in any::<u64>(),
    ) {
        let cell = Supercell::cubic(structure, 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let h = PairHamiltonian::new(4, mats);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = Configuration::random(&comp, &mut rng);
        let e = h.total_energy(&config, &nt);
        prop_assert!(e >= h.energy_lower_bound(&nt) - 1e-9);
        prop_assert!(e <= h.energy_upper_bound(&nt) + 1e-9);
    }

    /// Swapping equal-species sites or a site with itself never changes the
    /// energy, and swap deltas are antisymmetric under swapping back.
    #[test]
    fn swap_delta_structure_properties(
        mats in interaction_matrices(3),
        seed in any::<u64>(),
        a in any::<u32>(),
        b in any::<u32>(),
    ) {
        let cell = Supercell::cubic(Structure::bcc(), 2);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(3, cell.num_sites()).unwrap();
        let h = PairHamiltonian::new(3, mats);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut config = Configuration::random(&comp, &mut rng);
        let n = cell.num_sites() as u32;
        let (a, b) = ((a % n) as SiteId, (b % n) as SiteId);
        prop_assert_eq!(h.swap_delta(&config, &nt, a, a), 0.0);
        let fwd = h.swap_delta(&config, &nt, a, b);
        config.swap(a, b);
        let back = h.swap_delta(&config, &nt, a, b);
        prop_assert!((fwd + back).abs() < 1e-9);
    }
}
