//! The trained surrogate energy model.

use dt_hamiltonian::{DeltaWorkspace, EnergyModel};
use dt_lattice::{Configuration, NeighborTable, SiteId, Species};
use dt_nn::{mse_loss, Activation, Adam, ForwardScratch, Matrix, Mlp, NnFormatError};
use rand::Rng;

use crate::dataset::Dataset;
use crate::descriptor::PairCorrelationDescriptor;
use crate::metrics::{mae, r_squared, rmse};

/// Errors from [`SurrogateModel::load`] and the file round-trip helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializeError {
    /// The `dtsur` header line is missing or names an unknown version.
    BadHeader,
    /// A required structural line is absent.
    MissingField(&'static str),
    /// A structural line is present but unparseable.
    BadField(&'static str),
    /// The embedded network's input width does not match the descriptor.
    DimensionMismatch {
        /// Input dimension of the deserialized network.
        net_in: usize,
        /// Feature dimension implied by the descriptor line.
        descriptor: usize,
    },
    /// The embedded network failed to deserialize.
    Net(NnFormatError),
    /// Reading or writing the model file failed. The message carries the
    /// rendered `std::io::Error` (stored as text so this enum stays
    /// `Clone + PartialEq`).
    Io(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::BadHeader => write!(f, "bad surrogate header"),
            SerializeError::MissingField(what) => write!(f, "missing {what}"),
            SerializeError::BadField(what) => write!(f, "unparseable {what}"),
            SerializeError::DimensionMismatch { net_in, descriptor } => write!(
                f,
                "network input dim {net_in} does not match descriptor dim {descriptor}"
            ),
            SerializeError::Net(e) => write!(f, "embedded network: {e}"),
            SerializeError::Io(what) => write!(f, "surrogate file I/O failed: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SerializeError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnFormatError> for SerializeError {
    fn from(e: NnFormatError) -> Self {
        SerializeError::Net(e)
    }
}

impl From<std::io::Error> for SerializeError {
    fn from(e: std::io::Error) -> Self {
        SerializeError::Io(e.to_string())
    }
}

/// Hyperparameters for surrogate training.
#[derive(Debug, Clone)]
pub struct TrainingOptions {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs (full-batch).
    pub epochs: usize,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            hidden: vec![64, 64],
            lr: 3e-3,
            epochs: 400,
        }
    }
}

/// Accuracy summary after training (experiment E1).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Per-site MAE on the training split (eV/site).
    pub train_mae: f64,
    /// Per-site MAE on the test split (eV/site).
    pub test_mae: f64,
    /// Test RMSE (eV/site).
    pub test_rmse: f64,
    /// Test R².
    pub test_r2: f64,
    /// Final training loss (normalized units).
    pub final_loss: f64,
}

/// A trained deep-learning energy surrogate.
///
/// Implements [`EnergyModel`], so every sampler in the workspace (WL,
/// REWL, Metropolis, parallel tempering) runs on it unmodified — the
/// paper's architecture, where the MC loop only ever sees the DL
/// potential. Incremental deltas use the O(k·z) descriptor update plus two
/// network evaluations; the descriptor base is recomputed per call
/// (O(N·z)), which is exact and fast enough for the supercells the
/// examples sample on.
#[derive(Debug, Clone)]
pub struct SurrogateModel {
    descriptor: PairCorrelationDescriptor,
    net: Mlp,
    /// Target normalization: per-site energies are standardized during
    /// training.
    y_mean: f64,
    y_std: f64,
}

impl SurrogateModel {
    /// Train a surrogate on a dataset of per-site energies.
    pub fn train<R: Rng + ?Sized>(
        descriptor: PairCorrelationDescriptor,
        train: &Dataset,
        test: &Dataset,
        opts: &TrainingOptions,
        rng: &mut R,
    ) -> (SurrogateModel, TrainReport) {
        assert!(!train.is_empty() && !test.is_empty());
        let dim = descriptor.dim();
        assert_eq!(train.x.cols(), dim);

        // Standardize targets.
        let n = train.len() as f64;
        let y_mean = train.y.data().iter().sum::<f64>() / n;
        let var = train
            .y
            .data()
            .iter()
            .map(|&y| (y - y_mean) * (y - y_mean))
            .sum::<f64>()
            / n;
        let y_std = var.sqrt().max(1e-12);
        let y_norm = train.y.map(|y| (y - y_mean) / y_std);

        let mut dims = vec![dim];
        dims.extend_from_slice(&opts.hidden);
        dims.push(1);
        let mut net = Mlp::new(&dims, Activation::Tanh, Activation::Identity, rng);
        let mut adam = Adam::with_lr(opts.lr);
        let mut final_loss = f64::INFINITY;
        for _ in 0..opts.epochs {
            let out = net.forward_train(&train.x);
            let (loss, grad) = mse_loss(&out, &y_norm);
            net.zero_grad();
            net.backward(&grad);
            net.clip_grad_norm(10.0);
            adam.step(&mut net);
            final_loss = loss;
        }

        let model = SurrogateModel {
            descriptor,
            net,
            y_mean,
            y_std,
        };
        let pred_train = model.predict_rows(&train.x);
        let pred_test = model.predict_rows(&test.x);
        let report = TrainReport {
            train_mae: mae(&pred_train, train.y.data()),
            test_mae: mae(&pred_test, test.y.data()),
            test_rmse: rmse(&pred_test, test.y.data()),
            test_r2: r_squared(&pred_test, test.y.data()),
            final_loss,
        };
        (model, report)
    }

    /// The descriptor this model consumes.
    pub fn descriptor(&self) -> PairCorrelationDescriptor {
        self.descriptor
    }

    /// The underlying network.
    pub fn net(&self) -> &Mlp {
        &self.net
    }

    /// Per-site energy prediction from a feature vector.
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        let out = self.net.forward(&Matrix::row_vector(features));
        out.data()[0] * self.y_std + self.y_mean
    }

    /// Per-site energy predictions for a feature matrix.
    ///
    /// Runs one batched forward over all rows on the `dt-nn` inference
    /// engine. Allocates a fresh scratch; callers on a hot loop should
    /// hold a [`ForwardScratch`] and use
    /// [`SurrogateModel::predict_rows_with`] instead.
    pub fn predict_rows(&self, x: &Matrix) -> Vec<f64> {
        let mut scratch = ForwardScratch::for_mlp(&self.net, x.rows());
        let mut out = Vec::with_capacity(x.rows());
        self.predict_rows_with(x.data(), x.rows(), &mut scratch, &mut out);
        out
    }

    /// A scratch sized for batched prediction of up to `max_rows` rows.
    pub fn forward_scratch(&self, max_rows: usize) -> ForwardScratch {
        ForwardScratch::for_mlp(&self.net, max_rows)
    }

    /// Per-site energy predictions for `rows` feature rows stored
    /// row-major in `x`, written into `out` through a caller-provided
    /// scratch — allocation-free once both are warm.
    pub fn predict_rows_with(
        &self,
        x: &[f64],
        rows: usize,
        scratch: &mut ForwardScratch,
        out: &mut Vec<f64>,
    ) {
        let pred = self.net.forward_into(x, rows, scratch);
        out.clear();
        out.extend(pred.iter().map(|&v| v * self.y_std + self.y_mean));
    }

    /// Per-site energy of a configuration.
    pub fn predict_per_site(&self, config: &Configuration, neighbors: &NeighborTable) -> f64 {
        self.predict_features(&self.descriptor.compute(config, neighbors))
    }

    /// Serialize to a versioned text format (descriptor layout, target
    /// normalization, embedded network). Lossless: restored models predict
    /// bit-identically.
    pub fn save(&self) -> String {
        format!(
            "dtsur v1\ndesc {} {}\nnorm {:016x} {:016x}\n{}",
            self.descriptor.num_species,
            self.descriptor.num_shells,
            self.y_mean.to_bits(),
            self.y_std.to_bits(),
            dt_nn::save_mlp(&self.net)
        )
    }

    /// Restore a model written by [`SurrogateModel::save`].
    ///
    /// # Errors
    /// Returns a [`SerializeError`] describing the first structural or
    /// encoding problem encountered.
    pub fn load(text: &str) -> Result<SurrogateModel, SerializeError> {
        let mut lines = text.lines();
        if lines.next() != Some("dtsur v1") {
            return Err(SerializeError::BadHeader);
        }
        let desc = lines
            .next()
            .ok_or(SerializeError::MissingField("desc line"))?;
        let mut d = desc
            .strip_prefix("desc ")
            .ok_or(SerializeError::BadField("desc line"))?
            .split_whitespace();
        let num_species: usize = d
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(SerializeError::BadField("num_species"))?;
        let num_shells: usize = d
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(SerializeError::BadField("num_shells"))?;
        let norm = lines
            .next()
            .ok_or(SerializeError::MissingField("norm line"))?;
        let mut n = norm
            .strip_prefix("norm ")
            .ok_or(SerializeError::BadField("norm line"))?
            .split_whitespace();
        let bits = |tok: Option<&str>| -> Result<f64, SerializeError> {
            tok.and_then(|t| u64::from_str_radix(t, 16).ok())
                .map(f64::from_bits)
                .ok_or(SerializeError::BadField("normalization bits"))
        };
        let y_mean = bits(n.next())?;
        let y_std = bits(n.next())?;
        let net_text: String = lines.collect::<Vec<_>>().join("\n");
        let net = dt_nn::load_mlp(&net_text)?;
        let descriptor = PairCorrelationDescriptor {
            num_species,
            num_shells,
        };
        if net.in_dim() != descriptor.dim() {
            return Err(SerializeError::DimensionMismatch {
                net_in: net.in_dim(),
                descriptor: descriptor.dim(),
            });
        }
        Ok(SurrogateModel {
            descriptor,
            net,
            y_mean,
            y_std,
        })
    }

    /// Write the model to `path` ([`SurrogateModel::save`] format).
    ///
    /// # Errors
    /// Returns [`SerializeError::Io`] if the file cannot be written.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), SerializeError> {
        std::fs::write(path, self.save())?;
        Ok(())
    }

    /// Read a model previously written by [`SurrogateModel::save_to_file`].
    ///
    /// # Errors
    /// Returns [`SerializeError::Io`] if the file cannot be read, or any
    /// other [`SerializeError`] if its contents are not a valid model.
    pub fn load_from_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<SurrogateModel, SerializeError> {
        SurrogateModel::load(&std::fs::read_to_string(path)?)
    }

    fn delta_via_features(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(SiteId, Species)],
    ) -> f64 {
        // Before/after descriptors stacked into a 2-row batch so the
        // network runs ONCE per delta instead of twice; bit-identical to
        // two batch-1 passes (see the dt-nn equivalence suite). The
        // scratch is thread-local because `EnergyModel` deltas take
        // `&self` on the swap path.
        thread_local! {
            static SCRATCH: std::cell::RefCell<(ForwardScratch, Vec<f64>)> =
                std::cell::RefCell::default();
        }
        let base = self.descriptor.compute(config, neighbors);
        let delta = self.descriptor.delta(config, neighbors, moves);
        let n = config.num_sites() as f64;
        SCRATCH.with(|cell| {
            let (scratch, x2) = &mut *cell.borrow_mut();
            x2.clear();
            x2.extend_from_slice(&base);
            x2.extend(base.iter().zip(&delta).map(|(&b, &d)| b + d));
            let out = self.net.forward_into(x2, 2, scratch);
            let before = out[0] * self.y_std + self.y_mean;
            let after = out[1] * self.y_std + self.y_mean;
            (after - before) * n
        })
    }
}

impl EnergyModel for SurrogateModel {
    fn num_species(&self) -> usize {
        self.descriptor.num_species
    }

    fn num_shells(&self) -> usize {
        self.descriptor.num_shells
    }

    fn total_energy(&self, config: &Configuration, neighbors: &NeighborTable) -> f64 {
        self.predict_per_site(config, neighbors) * config.num_sites() as f64
    }

    fn swap_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        a: SiteId,
        b: SiteId,
    ) -> f64 {
        let sa = config.species_at(a);
        let sb = config.species_at(b);
        if a == b || sa == sb {
            return 0.0;
        }
        self.delta_via_features(config, neighbors, &[(a, sb), (b, sa)])
    }

    fn reassign_delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(SiteId, Species)],
        _workspace: &mut DeltaWorkspace,
    ) -> f64 {
        if moves.is_empty() {
            return 0.0;
        }
        self.delta_via_features(config, neighbors, moves)
    }

    fn energy_lower_bound(&self, neighbors: &NeighborTable) -> f64 {
        // Network outputs are bounded by the tanh hidden layers only
        // weakly; use a generous multiple of the training scale.
        let n = neighbors.num_sites() as f64;
        (self.y_mean - 50.0 * self.y_std) * n
    }

    fn energy_upper_bound(&self, neighbors: &NeighborTable) -> f64 {
        let n = neighbors.num_sites() as f64;
        (self.y_mean + 50.0 * self.y_std) * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SamplingStrategy;
    use dt_hamiltonian::nbmotaw;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::{RngExt, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn trained() -> (SurrogateModel, TrainReport, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let h = nbmotaw();
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = Dataset::generate(&h, &nt, &comp, d, 256, SamplingStrategy::Annealed, &mut rng);
        let (train, test) = ds.split(0.8);
        let (model, report) = SurrogateModel::train(
            d,
            &train,
            &test,
            &TrainingOptions {
                hidden: vec![32, 32],
                lr: 3e-3,
                epochs: 600,
            },
            &mut rng,
        );
        (model, report, nt, comp)
    }

    #[test]
    fn surrogate_learns_the_pair_hamiltonian_accurately() {
        let (_, report, _, _) = trained();
        // The descriptor is a sufficient statistic for the EPI model, so
        // the fit should be tight: MAE well under k_B·300 K ≈ 26 meV.
        assert!(
            report.test_mae < 0.005,
            "test MAE {} eV/site",
            report.test_mae
        );
        assert!(report.test_r2 > 0.95, "R² {}", report.test_r2);
        assert!(report.train_mae <= report.test_mae * 3.0);
    }

    #[test]
    fn energy_model_deltas_match_total_recompute() {
        let (model, _, nt, comp) = trained();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut config = Configuration::random(&comp, &mut rng);
        let mut ws = DeltaWorkspace::new(config.num_sites());
        for _ in 0..20 {
            let a = rng.random_range(0..config.num_sites()) as SiteId;
            let b = rng.random_range(0..config.num_sites()) as SiteId;
            let e0 = model.total_energy(&config, &nt);
            let d = model.swap_delta(&config, &nt, a, b);
            config.swap(a, b);
            let e1 = model.total_energy(&config, &nt);
            assert!(((e1 - e0) - d).abs() < 1e-8, "{} vs {d}", e1 - e0);
        }
        // Reassignment path.
        let moves = vec![(0 as SiteId, Species(1)), (5, Species(2)), (9, Species(0))];
        let e0 = model.total_energy(&config, &nt);
        let d = model.reassign_delta(&config, &nt, &moves, &mut ws);
        for &(s, sp) in &moves {
            config.set(s, sp);
        }
        let e1 = model.total_energy(&config, &nt);
        assert!(((e1 - e0) - d).abs() < 1e-8);
    }

    #[test]
    fn surrogate_tracks_truth_on_held_out_configs() {
        let (model, _, nt, comp) = trained();
        let h = nbmotaw();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..10 {
            let c = Configuration::random(&comp, &mut rng);
            let truth = h.total_energy(&c, &nt) / c.num_sites() as f64;
            let pred = model.predict_per_site(&c, &nt);
            assert!((truth - pred).abs() < 0.01, "pred {pred} vs truth {truth}");
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let (model, _, nt, comp) = trained();
        let text = model.save();
        let back = SurrogateModel::load(&text).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..5 {
            let c = Configuration::random(&comp, &mut rng);
            assert_eq!(
                model.predict_per_site(&c, &nt).to_bits(),
                back.predict_per_site(&c, &nt).to_bits(),
                "restored model must predict bit-identically"
            );
        }
    }

    #[test]
    fn load_rejects_corruption_with_typed_errors() {
        let (model, _, _, _) = trained();
        assert_eq!(
            SurrogateModel::load("garbage").unwrap_err(),
            SerializeError::BadHeader
        );
        assert_eq!(
            SurrogateModel::load("dtsur v1").unwrap_err(),
            SerializeError::MissingField("desc line")
        );
        assert_eq!(
            SurrogateModel::load("dtsur v1\ndesc x 2\nnorm 0 0").unwrap_err(),
            SerializeError::BadField("num_species")
        );
        let text = model.save();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            SurrogateModel::load(&truncated).unwrap_err(),
            SerializeError::Net(_)
        ));
        let tampered = text.replacen("desc 4 2", "desc 3 2", 1);
        assert!(matches!(
            SurrogateModel::load(&tampered).unwrap_err(),
            SerializeError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let (model, _, _, _) = trained();
        let dir = std::env::temp_dir().join("dtsur-serialize-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dtsur");
        model.save_to_file(&path).unwrap();
        let back = SurrogateModel::load_from_file(&path).unwrap();
        assert_eq!(back.save(), model.save());
        assert!(matches!(
            SurrogateModel::load_from_file(dir.join("missing.dtsur")),
            Err(SerializeError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounds_bracket_predictions() {
        let (model, _, nt, comp) = trained();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let c = Configuration::random(&comp, &mut rng);
        let e = model.total_energy(&c, &nt);
        assert!(e > model.energy_lower_bound(&nt));
        assert!(e < model.energy_upper_bound(&nt));
    }
}
