//! # dt-surrogate
//!
//! Deep-learning energy surrogates.
//!
//! In the paper, configuration energies come from a deep-learning potential
//! trained on DFT data so that Monte Carlo sampling never touches DFT.
//! Here the "expensive reference" is the EPI cluster expansion of
//! `dt-hamiltonian` (see DESIGN.md, "Substitutions"); this crate implements
//! the same train→deploy loop:
//!
//! * [`PairCorrelationDescriptor`] — shell-resolved pair-correlation
//!   features, the natural on-lattice analogue of the local-environment
//!   descriptors DFT-trained potentials use,
//! * [`Dataset`] — reference-energy datasets sampled across the reachable
//!   energy range (random + annealed configurations so ordered states are
//!   represented),
//! * [`SurrogateModel`] — a trained MLP that implements
//!   [`dt_hamiltonian::EnergyModel`], so every sampler in the workspace can
//!   run on the surrogate exactly as it runs on the reference model,
//! * [`metrics`] — MAE / RMSE / R² and parity-plot data (experiment E1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod descriptor;
pub mod metrics;
pub mod model;

pub use dataset::{Dataset, SamplingStrategy};
pub use descriptor::PairCorrelationDescriptor;
pub use metrics::{mae, parity_points, r_squared, rmse};
pub use model::{SerializeError, SurrogateModel, TrainReport, TrainingOptions};
