//! Regression metrics and parity-plot data.

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    pred.iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root-mean-square error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    (pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot` (can be
/// negative for models worse than the mean predictor; 1 for a constant
/// truth predicted exactly).
pub fn r_squared(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty());
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|&t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred
        .iter()
        .zip(truth)
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum();
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// `(truth, prediction)` pairs for a parity plot (experiment E1).
pub fn parity_points(pred: &[f64], truth: &[f64]) -> Vec<(f64, f64)> {
    truth.iter().copied().zip(pred.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t), 0.0);
        assert_eq!(rmse(&t, &t), 0.0);
        assert_eq!(r_squared(&t, &t), 1.0);
    }

    #[test]
    fn known_errors() {
        let p = [1.0, 3.0];
        let t = [2.0, 1.0];
        assert_eq!(mae(&p, &t), 1.5);
        assert!((rmse(&p, &t) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        assert!(r_squared(&p, &t).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        let t = [1.0, 2.0];
        let p = [10.0, -10.0];
        assert!(r_squared(&p, &t) < 0.0);
    }

    #[test]
    fn parity_points_zip() {
        let pts = parity_points(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(pts, vec![(3.0, 1.0), (4.0, 2.0)]);
    }
}
