//! Configuration descriptors for the energy surrogate.

use dt_lattice::{sro::ordered_pair_counts, Configuration, NeighborTable};

/// Shell-resolved pair-correlation descriptor.
///
/// Features are the undirected pair probabilities `p_s(a,b)` for `a ≤ b`
/// in each shell (a sufficient statistic for any pair Hamiltonian, and the
/// leading terms of a cluster-expansion descriptor in general), plus the
/// per-species concentrations. Dimension:
/// `shells · m(m+1)/2 + m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairCorrelationDescriptor {
    /// Number of species `m`.
    pub num_species: usize,
    /// Number of coordination shells.
    pub num_shells: usize,
}

impl PairCorrelationDescriptor {
    /// Feature dimension.
    pub fn dim(&self) -> usize {
        let m = self.num_species;
        self.num_shells * m * (m + 1) / 2 + m
    }

    /// Compute features into `out`.
    ///
    /// # Panics
    /// Panics when `out.len() != dim()`.
    pub fn fill(&self, out: &mut [f64], config: &Configuration, neighbors: &NeighborTable) {
        assert_eq!(out.len(), self.dim(), "descriptor buffer size");
        let m = self.num_species;
        let mut k = 0usize;
        for shell in 0..self.num_shells {
            let counts = ordered_pair_counts(config, neighbors, shell, m);
            let total = neighbors.directed_pair_count(shell) as f64;
            for a in 0..m {
                for b in a..m {
                    // Undirected probability: diagonal pairs appear once in
                    // the ordered table per direction; off-diagonal twice.
                    let directed = if a == b {
                        counts[a * m + b] as f64
                    } else {
                        (counts[a * m + b] + counts[b * m + a]) as f64
                    };
                    out[k] = directed / total;
                    k += 1;
                }
            }
        }
        let n = config.num_sites() as f64;
        for (o, &c) in out[k..].iter_mut().zip(config.species_counts()) {
            *o = c as f64 / n;
        }
    }

    /// Compute features into a fresh vector.
    pub fn compute(&self, config: &Configuration, neighbors: &NeighborTable) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.fill(&mut out, config, neighbors);
        out
    }

    /// Feature-vector *change* caused by simultaneously applying `moves`
    /// (`(site, new species)`, distinct sites), in O(k·z) — the incremental
    /// path that lets [`crate::SurrogateModel`] serve as an
    /// [`dt_hamiltonian::EnergyModel`].
    pub fn delta(
        &self,
        config: &Configuration,
        neighbors: &NeighborTable,
        moves: &[(dt_lattice::SiteId, dt_lattice::Species)],
    ) -> Vec<f64> {
        let m = self.num_species;
        let mut sorted: Vec<(dt_lattice::SiteId, dt_lattice::Species)> = moves.to_vec();
        sorted.sort_unstable_by_key(|&(s, _)| s);
        let new_species = |site: dt_lattice::SiteId| -> dt_lattice::Species {
            match sorted.binary_search_by_key(&site, |&(s, _)| s) {
                Ok(i) => sorted[i].1,
                Err(_) => config.species_at(site),
            }
        };
        let moved = |site: dt_lattice::SiteId| -> bool {
            sorted.binary_search_by_key(&site, |&(s, _)| s).is_ok()
        };

        let mut out = vec![0.0; self.dim()];
        let per_shell = m * (m + 1) / 2;
        let tri = |a: usize, b: usize| -> usize {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            // Index of (lo, hi) in the upper triangle enumerated row-major.
            lo * m - lo * (lo + 1) / 2 + hi
        };
        for shell in 0..self.num_shells {
            let total = neighbors.directed_pair_count(shell) as f64;
            let base = shell * per_shell;
            // Every directed pair (i, j) with i or j moved changes exactly
            // once in this enumeration (see module docs).
            for &(i, new_i) in &sorted {
                let old_i = config.species_at(i);
                for &j in neighbors.neighbors(i, shell) {
                    let old_j = config.species_at(j);
                    let new_j = new_species(j);
                    // Directed pair (i, j).
                    out[base + tri(old_i.index(), old_j.index())] -= 1.0 / total;
                    out[base + tri(new_i.index(), new_j.index())] += 1.0 / total;
                    // Directed pair (j, i) when j did not move (otherwise
                    // it is covered when enumerating j).
                    if !moved(j) {
                        out[base + tri(old_j.index(), old_i.index())] -= 1.0 / total;
                        out[base + tri(old_j.index(), new_i.index())] += 1.0 / total;
                    }
                }
            }
        }
        // Concentrations: canonical moves conserve them unless the caller
        // reassigns off-multiset (allowed for generality).
        let n = config.num_sites() as f64;
        let conc_base = self.num_shells * per_shell;
        for &(site, new_s) in &sorted {
            let old_s = config.species_at(site);
            if old_s != new_s {
                out[conc_base + old_s.index()] -= 1.0 / n;
                out[conc_base + new_s.index()] += 1.0 / n;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_lattice::{Composition, Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Supercell, NeighborTable, Composition) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        (cell, nt, comp)
    }

    #[test]
    fn dim_formula() {
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        assert_eq!(d.dim(), 2 * 10 + 4);
    }

    #[test]
    fn pair_probabilities_sum_to_one_per_shell() {
        let (_, nt, comp) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let c = Configuration::random(&comp, &mut rng);
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        let f = d.compute(&c, &nt);
        let per_shell = 10;
        for shell in 0..2 {
            let s: f64 = f[shell * per_shell..(shell + 1) * per_shell].iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "shell {shell}: {s}");
        }
        // Concentrations are the tail.
        let conc: f64 = f[20..].iter().sum();
        assert!((conc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn descriptor_distinguishes_order_from_disorder() {
        let (cell, nt, comp) = fixture();
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let random = d.compute(&Configuration::random(&comp, &mut rng), &nt);
        let ordered = d.compute(&Configuration::b2_ordered(&cell, 4), &nt);
        let dist: f64 = random
            .iter()
            .zip(&ordered)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.1, "descriptors too close: {dist}");
    }

    #[test]
    fn delta_matches_full_recompute() {
        use dt_lattice::{SiteId, Species};
        use rand::RngExt;
        let (_, nt, comp) = fixture();
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut config = Configuration::random(&comp, &mut rng);
        for trial in 0..50 {
            let k = rng.random_range(1..=6usize);
            let mut sites: Vec<SiteId> = (0..config.num_sites() as SiteId).collect();
            for i in 0..k {
                let j = rng.random_range(i..sites.len());
                sites.swap(i, j);
            }
            let moves: Vec<(SiteId, Species)> = sites[..k]
                .iter()
                .map(|&s| (s, Species(rng.random_range(0..4u8))))
                .collect();
            let before = d.compute(&config, &nt);
            let delta = d.delta(&config, &nt, &moves);
            for &(s, sp) in &moves {
                config.set(s, sp);
            }
            let after = d.compute(&config, &nt);
            for (i, ((&b, &dl), &a)) in before.iter().zip(&delta).zip(&after).enumerate() {
                assert!(
                    (b + dl - a).abs() < 1e-10,
                    "trial {trial} feature {i}: {b} + {dl} != {a}"
                );
            }
        }
    }

    use dt_lattice::{SiteId, Species};
    use proptest::prelude::*;

    proptest! {
        /// Material-agnostic sizing and consistency: for every species
        /// count m ∈ 2..=6 and shell count ∈ 1..=6, the descriptor's
        /// dimension formula, normalization, and incremental `delta` hold
        /// on both cubic structures the material layer exposes.
        #[test]
        fn descriptor_laws_hold_across_species_and_shells(
            m in 2usize..=6,
            shells in 1usize..=6,
            bcc in any::<bool>(),
            seed in 0u64..1 << 48,
            k in 1usize..=4,
        ) {
            let structure = if bcc { Structure::bcc() } else { Structure::fcc() };
            let cell = Supercell::cubic(structure, 2);
            let nt = cell.try_neighbor_table(shells).unwrap();
            let comp = Composition::equiatomic(m, cell.num_sites()).unwrap();
            let d = PairCorrelationDescriptor {
                num_species: m,
                num_shells: shells,
            };
            prop_assert_eq!(d.dim(), shells * m * (m + 1) / 2 + m);

            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut config = Configuration::random(&comp, &mut rng);
            let f = d.compute(&config, &nt);
            prop_assert_eq!(f.len(), d.dim());
            let per_shell = m * (m + 1) / 2;
            for shell in 0..shells {
                let s: f64 = f[shell * per_shell..(shell + 1) * per_shell].iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9, "shell {} sums to {}", shell, s);
            }
            let conc: f64 = f[shells * per_shell..].iter().sum();
            prop_assert!((conc - 1.0).abs() < 1e-9);

            // delta == recompute for a random distinct-site move set.
            use rand::RngExt;
            let mut sites: Vec<SiteId> = (0..config.num_sites() as SiteId).collect();
            for i in 0..k {
                let j = rng.random_range(i..sites.len());
                sites.swap(i, j);
            }
            let moves: Vec<(SiteId, Species)> = sites[..k]
                .iter()
                .map(|&s| (s, Species(rng.random_range(0..m as u8))))
                .collect();
            let delta = d.delta(&config, &nt, &moves);
            for &(s, sp) in &moves {
                config.set(s, sp);
            }
            let after = d.compute(&config, &nt);
            for i in 0..d.dim() {
                prop_assert!(
                    (f[i] + delta[i] - after[i]).abs() < 1e-10,
                    "feature {}: {} + {} != {}",
                    i, f[i], delta[i], after[i]
                );
            }
        }
    }

    #[test]
    fn descriptor_is_permutation_invariant_in_space() {
        // Global translation of the configuration (shift all cells by one)
        // must not change pair correlations.
        let (cell, nt, comp) = fixture();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let c = Configuration::random(&comp, &mut rng);
        let mut shifted_species = vec![dt_lattice::Species(0); c.num_sites()];
        for site in 0..cell.num_sites() as u32 {
            let (x, y, z, b) = cell.decompose(site);
            let target = cell.site_at(x as isize + 1, y as isize, z as isize, b);
            shifted_species[target as usize] = c.species_at(site);
        }
        let shifted = Configuration::from_species(shifted_species, 4);
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        let fa = d.compute(&c, &nt);
        let fb = d.compute(&shifted, &nt);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
