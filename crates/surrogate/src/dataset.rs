//! Reference-energy datasets for surrogate training.

use dt_hamiltonian::EnergyModel;
use dt_lattice::{Composition, Configuration, NeighborTable, SiteId};
use dt_nn::Matrix;
use rand::{Rng, RngExt};
use rayon::prelude::*;

use crate::descriptor::PairCorrelationDescriptor;

/// How configurations are drawn when building a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Uniformly random configurations only — cheap but concentrated near
    /// the infinite-temperature energy.
    Random,
    /// Mix of random configurations and annealed (partially quenched)
    /// ones, spreading samples across the reachable energy range the way
    /// the paper's active-learning loop does.
    Annealed,
}

/// A supervised dataset: descriptors `x`, energies-per-site `y`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features, one row per configuration.
    pub x: Matrix,
    /// Targets (energy per site, eV), one row per configuration.
    pub y: Matrix,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate a dataset of `count` configurations.
    pub fn generate<M: EnergyModel + Sync, R: Rng + ?Sized>(
        model: &M,
        neighbors: &NeighborTable,
        comp: &Composition,
        descriptor: PairCorrelationDescriptor,
        count: usize,
        strategy: SamplingStrategy,
        rng: &mut R,
    ) -> Dataset {
        assert!(count > 0);
        // Draw per-sample seeds up front so generation can parallelize.
        let seeds: Vec<u64> = (0..count).map(|_| rng.random()).collect();
        let n = comp.num_sites() as f64;
        let rows: Vec<(Vec<f64>, f64)> = seeds
            .par_iter()
            .enumerate()
            .map(|(i, &seed)| {
                use rand::SeedableRng;
                let mut local = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let mut config = Configuration::random(comp, &mut local);
                if strategy == SamplingStrategy::Annealed {
                    // Quench a varying number of sweeps toward low or high
                    // energy so the dataset spans the range.
                    let sweeps = (i % 8) * 3;
                    let minimize = i % 2 == 0;
                    quench_in_place(model, neighbors, &mut config, sweeps, minimize, &mut local);
                }
                let e = model.total_energy(&config, neighbors) / n;
                (descriptor.compute(&config, neighbors), e)
            })
            .collect();
        let dim = descriptor.dim();
        let mut x = Matrix::zeros(count, dim);
        let mut y = Matrix::zeros(count, 1);
        for (i, (feat, e)) in rows.into_iter().enumerate() {
            x.row_mut(i).copy_from_slice(&feat);
            y.row_mut(i)[0] = e;
        }
        Dataset { x, y }
    }

    /// Split into `(train, test)` with the first `train_fraction` rows in
    /// train (rows are already i.i.d. by construction).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&train_fraction));
        let n_train = ((self.len() as f64) * train_fraction).round().max(1.0) as usize;
        let n_train = n_train.min(self.len() - 1);
        let take = |lo: usize, hi: usize| -> Dataset {
            let mut x = Matrix::zeros(hi - lo, self.x.cols());
            let mut y = Matrix::zeros(hi - lo, 1);
            for i in lo..hi {
                x.row_mut(i - lo).copy_from_slice(self.x.row(i));
                y.row_mut(i - lo)[0] = self.y.row(i)[0];
            }
            Dataset { x, y }
        };
        (take(0, n_train), take(n_train, self.len()))
    }

    /// Energy range `(min, max)` of the targets.
    pub fn energy_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.y.rows() {
            lo = lo.min(self.y.row(r)[0]);
            hi = hi.max(self.y.row(r)[0]);
        }
        (lo, hi)
    }
}

/// Zero-temperature-ish quench used by the annealed strategy.
fn quench_in_place<M: EnergyModel, R: Rng + ?Sized>(
    model: &M,
    neighbors: &NeighborTable,
    config: &mut Configuration,
    sweeps: usize,
    minimize: bool,
    rng: &mut R,
) {
    let n = config.num_sites();
    for _ in 0..sweeps {
        for _ in 0..n {
            let a = rng.random_range(0..n) as SiteId;
            let b = rng.random_range(0..n) as SiteId;
            if config.species_at(a) == config.species_at(b) {
                continue;
            }
            let d = model.swap_delta(config, neighbors, a, b);
            if (minimize && d < 0.0) || (!minimize && d > 0.0) {
                config.swap(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_hamiltonian::nbmotaw;
    use dt_lattice::{Structure, Supercell};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (NeighborTable, Composition, PairCorrelationDescriptor) {
        let cell = Supercell::cubic(Structure::bcc(), 3);
        let nt = cell.neighbor_table(2);
        let comp = Composition::equiatomic(4, cell.num_sites()).unwrap();
        let d = PairCorrelationDescriptor {
            num_species: 4,
            num_shells: 2,
        };
        (nt, comp, d)
    }

    #[test]
    fn generation_has_right_shape() {
        let (nt, comp, d) = fixture();
        let h = nbmotaw();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = Dataset::generate(&h, &nt, &comp, d, 20, SamplingStrategy::Random, &mut rng);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.x.cols(), d.dim());
        assert_eq!(ds.y.cols(), 1);
    }

    #[test]
    fn annealed_strategy_spans_wider_energy_range() {
        let (nt, comp, d) = fixture();
        let h = nbmotaw();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let random = Dataset::generate(&h, &nt, &comp, d, 48, SamplingStrategy::Random, &mut rng);
        let annealed =
            Dataset::generate(&h, &nt, &comp, d, 48, SamplingStrategy::Annealed, &mut rng);
        let (rl, rh) = random.energy_range();
        let (al, ah) = annealed.energy_range();
        assert!(
            ah - al > rh - rl,
            "annealed {al}..{ah} vs random {rl}..{rh}"
        );
    }

    #[test]
    fn split_partitions_rows() {
        let (nt, comp, d) = fixture();
        let h = nbmotaw();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = Dataset::generate(&h, &nt, &comp, d, 10, SamplingStrategy::Random, &mut rng);
        let (train, test) = ds.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.x.row(0), ds.x.row(0));
        assert_eq!(test.y.row(0)[0], ds.y.row(8)[0]);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let (nt, comp, d) = fixture();
        let h = nbmotaw();
        let a = Dataset::generate(
            &h,
            &nt,
            &comp,
            d,
            8,
            SamplingStrategy::Annealed,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let b = Dataset::generate(
            &h,
            &nt,
            &comp,
            d,
            8,
            SamplingStrategy::Annealed,
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert_eq!(a.x.data(), b.x.data());
        assert_eq!(a.y.data(), b.y.data());
    }
}
