//! A small LRU cache for pure-function responses.
//!
//! `canonical_curve` is a pure function of `(artifact, T-grid)`, so the
//! `/v1/thermo` endpoint memoizes whole response bodies. The cache is a
//! hash map plus a recency index kept in a `BTreeMap<u64, K>` keyed by a
//! monotonically increasing use-stamp: both lookup-bump and eviction are
//! `O(log n)`, and there is no unsafe linked-list juggling.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used cache with a fixed capacity.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    next_stamp: u64,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. A zero capacity is a
    /// legal "cache disabled" configuration: every `get` misses and
    /// every `put` is dropped.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            next_stamp: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let stamp = self.next_stamp;
        let entry = self.map.get_mut(key)?;
        self.recency.remove(&entry.1);
        entry.1 = stamp;
        self.recency.insert(stamp, key.clone());
        self.next_stamp += 1;
        Some(&entry.0)
    }

    /// Insert `key → value`, evicting the least recently used entry if
    /// the cache is full. Replacing an existing key refreshes its
    /// recency.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(key.clone(), (value, stamp));
        self.recency.insert(stamp, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_stored_value() {
        let mut c = LruCache::new(4);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(c.get(&"a"), Some(&1));
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_refreshes_it() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // refresh, not insert
        c.put("c", 3); // evicts "b", the true LRU
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_keeps_len_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put(i, i * 2);
            assert!(c.len() <= 8);
        }
        // The 8 most recent keys survive.
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert_eq!(c.get(&0), None);
    }
}
