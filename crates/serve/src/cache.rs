//! Response caching: a small LRU plus its single-flight composition.
//!
//! `canonical_curve` is a pure function of `(artifact, T-grid)`, so the
//! `/v1/thermo` endpoint memoizes whole response bodies. The cache is a
//! hash map plus a recency index kept in a `BTreeMap<u64, K>` keyed by a
//! monotonically increasing use-stamp: both lookup-bump and eviction are
//! `O(log n)`, and there is no unsafe linked-list juggling.
//!
//! [`ResponseCache`] layers [`crate::singleflight::SingleFlight`] over
//! the LRU: a cold key computed by one leader while concurrent
//! requesters park and share the result, so a popular new artifact
//! costs one evaluation, not one per waiting client.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Mutex;

use crate::http::Response;
use crate::singleflight::SingleFlight;

/// A least-recently-used cache with a fixed capacity.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    next_stamp: u64,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries. A zero capacity is a
    /// legal "cache disabled" configuration: every `get` misses and
    /// every `put` is dropped.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            next_stamp: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let stamp = self.next_stamp;
        let entry = self.map.get_mut(key)?;
        self.recency.remove(&entry.1);
        entry.1 = stamp;
        self.recency.insert(stamp, key.clone());
        self.next_stamp += 1;
        Some(&entry.0)
    }

    /// Insert `key → value`, evicting the least recently used entry if
    /// the cache is full. Replacing an existing key refreshes its
    /// recency.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.recency.remove(&old_stamp);
        } else if self.map.len() >= self.capacity {
            if let Some((&oldest, _)) = self.recency.iter().next() {
                if let Some(victim) = self.recency.remove(&oldest) {
                    self.map.remove(&victim);
                }
            }
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(key.clone(), (value, stamp));
        self.recency.insert(stamp, key);
    }
}

/// How a [`ResponseCache::get_or_fill`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// Served from the LRU.
    Hit,
    /// This caller led the fill (ran the computation).
    Miss,
    /// Another caller's in-flight fill supplied the value.
    Coalesced,
}

/// The `/v1/thermo` response cache: an LRU of rendered bodies with
/// single-flight fills. Fill errors (e.g. a `422` for an out-of-range
/// grid) are shared with concurrent waiters but never cached.
pub struct ResponseCache {
    lru: Mutex<LruCache<String, String>>,
    flight: SingleFlight<String, Result<String, Response>>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` bodies (0 disables the LRU;
    /// concurrent fills still coalesce).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            lru: Mutex::new(LruCache::new(capacity)),
            flight: SingleFlight::new(),
        }
    }

    /// Serve `key` from the LRU, or compute it with `fill` — at most
    /// one concurrent fill per key; late arrivals park and share the
    /// leader's result. The leader publishes into the LRU *before* the
    /// flight closes, so a racer sees either the flight or the cached
    /// body, never neither.
    pub fn get_or_fill<F>(&self, key: &str, fill: F) -> (Result<String, Response>, FillOutcome)
    where
        F: FnOnce() -> Result<String, Response>,
    {
        if let Some(body) = self.lru.lock().expect("cache lock").get(&key.to_string()) {
            return (Ok(body.clone()), FillOutcome::Hit);
        }
        let owned = key.to_string();
        let (result, led) = self.flight.run(&owned, fill, |result| {
            if let Ok(body) = result {
                self.lru
                    .lock()
                    .expect("cache lock")
                    .put(owned.clone(), body.clone());
            }
        });
        let outcome = if led {
            FillOutcome::Miss
        } else {
            FillOutcome::Coalesced
        };
        (result, outcome)
    }

    /// Number of cached bodies.
    pub fn len(&self) -> usize {
        self.lru.lock().expect("cache lock").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_stored_value() {
        let mut c = LruCache::new(4);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        // Touch "a" so "b" is the LRU victim.
        assert_eq!(c.get(&"a"), Some(&1));
        c.put("c", 3);
        assert_eq!(c.get(&"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn replacing_a_key_refreshes_it() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10); // refresh, not insert
        c.put("c", 3); // evicts "b", the true LRU
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn heavy_churn_keeps_len_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.put(i, i * 2);
            assert!(c.len() <= 8);
        }
        // The 8 most recent keys survive.
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
        assert_eq!(c.get(&0), None);
    }

    #[test]
    fn response_cache_hits_after_one_fill() {
        let cache = ResponseCache::new(4);
        let (r, o) = cache.get_or_fill("k", || Ok("body".to_string()));
        assert_eq!((r.unwrap().as_str(), o), ("body", FillOutcome::Miss));
        let (r, o) = cache.get_or_fill("k", || panic!("must not refill"));
        assert_eq!((r.unwrap().as_str(), o), ("body", FillOutcome::Hit));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fill_errors_are_not_cached() {
        let cache = ResponseCache::new(4);
        let (r, o) = cache.get_or_fill("bad", || Err(Response::error(422, "nope")));
        assert_eq!(o, FillOutcome::Miss);
        assert_eq!(r.unwrap_err().status, 422);
        assert!(cache.is_empty());
        // The next caller recomputes (and may succeed).
        let (r, o) = cache.get_or_fill("bad", || Ok("fine".to_string()));
        assert_eq!((r.unwrap().as_str(), o), ("fine", FillOutcome::Miss));
    }

    #[test]
    fn concurrent_cold_fills_coalesce_to_one_evaluation() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, Barrier};
        const CALLERS: usize = 64;
        let cache = Arc::new(ResponseCache::new(4));
        let fills = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(CALLERS));
        let handles: Vec<_> = (0..CALLERS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let fills = Arc::clone(&fills);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    cache.get_or_fill("cold", || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(50));
                        Ok("v".to_string())
                    })
                })
            })
            .collect();
        for h in handles {
            let (r, _) = h.join().unwrap();
            assert_eq!(r.unwrap(), "v");
        }
        // The leader published before its flight closed, so every
        // caller either joined that flight or hit the LRU — the fill
        // ran exactly once.
        assert_eq!(fills.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_response_cache_still_coalesces() {
        let cache = ResponseCache::new(0);
        let (r, o) = cache.get_or_fill("k", || Ok("x".to_string()));
        assert_eq!((r.unwrap().as_str(), o), ("x", FillOutcome::Miss));
        // Nothing persisted...
        assert!(cache.is_empty());
        // ...so the next sequential caller refills.
        let (_, o) = cache.get_or_fill("k", || Ok("x".to_string()));
        assert_eq!(o, FillOutcome::Miss);
    }
}
