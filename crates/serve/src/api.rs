//! Endpoint handlers: the pure `Request → Response` core of the
//! service.
//!
//! Everything here is synchronous and deterministic so it can be tested
//! without sockets. The transport layer ([`crate::server`]) owns
//! threads, queues, and deadlines; this module owns JSON parsing,
//! artifact lookup, thermodynamics evaluation, the response cache, and
//! the metrics it all emits.
//!
//! ## Endpoints
//!
//! | Method | Path            | Purpose                                     |
//! |--------|-----------------|---------------------------------------------|
//! | GET    | `/healthz`      | Liveness + artifact count                   |
//! | GET    | `/metrics`      | Metrics registry snapshot (JSON)            |
//! | GET    | `/v1/artifacts` | List loaded artifacts with manifests        |
//! | POST   | `/v1/thermo`    | Canonical U/C_v/F/S curve (LRU-cached)      |
//! | POST   | `/v1/sro`       | Reweighted short-range order vs temperature |
//! | POST   | `/v1/predict`   | Batched surrogate per-site energies         |
//! | POST   | `/v1/shutdown`  | Begin graceful drain                        |
//!
//! Malformed bodies map to `400`, unknown artifacts to `404`, requests
//! that parse but cannot be served to `422` — handlers never panic on
//! client input.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use dt_surrogate::SurrogateModel;
use dt_telemetry::{parse_json, push_f64, push_json_string, JsonValue, MetricsRegistry};
use dt_thermo::{try_canonical_curve, ThermoPoint, KB_EV_PER_K};

use crate::artifact::{Artifact, ArtifactRegistry};
use crate::cache::{FillOutcome, ResponseCache};
use crate::http::{Request, Response};
use crate::ServeError;

/// Most temperatures accepted in one request (grid or explicit list).
pub const MAX_TEMPERATURES: usize = 4096;
/// Most feature rows accepted by one `/v1/predict` call.
pub const MAX_PREDICT_ROWS: usize = 4096;

/// Per-endpoint latency histogram names, as exported by `/metrics`.
const LATENCY_HISTOGRAMS: &[&str] = &[
    "latency_healthz_ns",
    "latency_metrics_ns",
    "latency_artifacts_ns",
    "latency_thermo_ns",
    "latency_sro_ns",
    "latency_predict_ns",
    "latency_shutdown_ns",
    "latency_other_ns",
];

/// Shared, thread-safe application state: the loaded registry, the
/// response cache, metrics, and the drain flag.
pub struct AppState {
    registry: ArtifactRegistry,
    surrogates: HashMap<String, SurrogateModel>,
    cache: ResponseCache,
    cache_capacity: usize,
    /// Metrics shared with the transport layer (queue rejections and
    /// deadline expiries are recorded there, served from here).
    pub metrics: MetricsRegistry,
    shutdown: AtomicBool,
    started: Instant,
}

impl AppState {
    /// Build serving state over a loaded registry. Surrogate models are
    /// deserialized once, up front, so `/v1/predict` never parses text
    /// on the hot path.
    ///
    /// # Errors
    /// [`ServeError::BadArtifact`] when an artifact carries surrogate
    /// text that does not deserialize.
    pub fn new(registry: ArtifactRegistry, cache_capacity: usize) -> Result<AppState, ServeError> {
        let mut surrogates = HashMap::new();
        for artifact in registry.iter() {
            if let Some(text) = &artifact.surrogate_text {
                let model = SurrogateModel::load(text).map_err(|e| ServeError::BadArtifact {
                    path: std::path::PathBuf::from(&artifact.manifest.id),
                    what: format!("surrogate: {e}"),
                })?;
                surrogates.insert(artifact.manifest.id.clone(), model);
            }
        }
        Ok(AppState {
            registry,
            surrogates,
            cache: ResponseCache::new(cache_capacity),
            cache_capacity,
            metrics: MetricsRegistry::new(),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
        })
    }

    /// The loaded registry.
    pub fn registry(&self) -> &ArtifactRegistry {
        &self.registry
    }

    /// Ask the server to drain and stop accepting connections.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Dispatch one request, recording request metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let start = Instant::now();
        let (endpoint, resp) = self.route(req);
        self.metrics.counter("requests_total").inc();
        if resp.status >= 500 {
            self.metrics.counter("responses_5xx").inc();
        } else if resp.status >= 400 {
            self.metrics.counter("responses_4xx").inc();
        }
        self.metrics
            .histogram(latency_name(endpoint))
            .record(start.elapsed().as_nanos() as u64);
        resp
    }

    fn route(&self, req: &Request) -> (&'static str, Response) {
        match (req.method.as_str(), req.target.as_str()) {
            ("GET", "/healthz") => ("healthz", self.healthz()),
            ("GET", "/metrics") => ("metrics", self.metrics_snapshot()),
            ("GET", "/v1/artifacts") => ("artifacts", self.list_artifacts()),
            ("POST", "/v1/thermo") => ("thermo", self.thermo(&req.body)),
            ("POST", "/v1/sro") => ("sro", self.sro(&req.body)),
            ("POST", "/v1/predict") => ("predict", self.predict(&req.body)),
            ("POST", "/v1/shutdown") => ("shutdown", self.begin_shutdown()),
            (_, "/healthz" | "/metrics" | "/v1/artifacts") => {
                ("other", Response::error(405, "endpoint only supports GET"))
            }
            (_, "/v1/thermo" | "/v1/sro" | "/v1/predict" | "/v1/shutdown") => {
                ("other", Response::error(405, "endpoint only supports POST"))
            }
            (_, target) => (
                "other",
                Response::error(404, &format!("no such endpoint: {target}")),
            ),
        }
    }

    fn healthz(&self) -> Response {
        let mut body = String::from("{\"status\":");
        push_json_string(
            &mut body,
            if self.shutdown_requested() {
                "draining"
            } else {
                "ok"
            },
        );
        body.push_str(&format!(",\"artifacts\":{}", self.registry.len()));
        body.push_str(",\"uptime_s\":");
        push_f64(&mut body, self.started.elapsed().as_secs_f64());
        body.push('}');
        Response::json(200, body)
    }

    fn metrics_snapshot(&self) -> Response {
        let mut body = String::from("{\"counters\":{");
        for (i, (name, value)) in self.metrics.counter_values().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, name);
            body.push_str(&format!(":{value}"));
        }
        body.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.metrics.gauge_values().iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, name);
            body.push(':');
            push_f64(&mut body, *value);
        }
        body.push_str("},\"latency\":{");
        let mut first = true;
        for name in LATENCY_HISTOGRAMS {
            let h = self.metrics.histogram(name);
            if h.count() == 0 {
                continue;
            }
            if !first {
                body.push(',');
            }
            first = false;
            push_json_string(&mut body, name);
            body.push_str(&format!(":{{\"count\":{},\"mean_ns\":", h.count()));
            push_f64(&mut body, h.mean());
            body.push_str(",\"p50_ns\":");
            push_f64(&mut body, h.quantile(0.5));
            body.push_str(",\"p99_ns\":");
            push_f64(&mut body, h.quantile(0.99));
            body.push('}');
        }
        let cache_len = self.cache.len();
        body.push_str(&format!(
            "}},\"cache\":{{\"entries\":{cache_len},\"capacity\":{}}}}}",
            self.cache_capacity
        ));
        Response::json(200, body)
    }

    fn list_artifacts(&self) -> Response {
        let mut body = format!("{{\"count\":{},\"artifacts\":[", self.registry.len());
        for (i, artifact) in self.registry.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            let visited = artifact.mask.iter().filter(|&&v| v).count();
            body.push_str(&format!(
                "{{\"manifest\":{},\"num_bins\":{},\"visited_bins\":{visited},\"has_sro\":{},\"has_surrogate\":{}}}",
                artifact.manifest.to_json(),
                artifact.grid.num_bins(),
                artifact.sro.is_some(),
                artifact.surrogate_text.is_some()
            ));
        }
        body.push_str("]}");
        Response::json(200, body)
    }

    fn begin_shutdown(&self) -> Response {
        self.request_shutdown();
        Response::json(200, self.drain_summary())
    }

    /// The drain summary body: `"status":"draining"` plus a snapshot of
    /// the lifetime counters at the moment the drain began. The router
    /// collects one of these per shard and embeds them in its own
    /// fleet-wide summary.
    pub fn drain_summary(&self) -> String {
        let mut body = String::from("{\"status\":\"draining\"");
        for name in [
            "requests_total",
            "connections_admitted",
            "queue_rejections",
            "deadline_expired",
            "handler_panics",
            "thermo_cache_hits",
            "thermo_cache_misses",
        ] {
            body.push_str(&format!(",\"{name}\":{}", self.metrics.counter(name).get()));
        }
        body.push_str(",\"uptime_s\":");
        push_f64(&mut body, self.started.elapsed().as_secs_f64());
        body.push('}');
        body
    }

    fn thermo(&self, body: &[u8]) -> Response {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let artifact = match self.lookup_artifact(&v) {
            Ok(a) => a,
            Err(resp) => return resp,
        };
        let temps = match requested_temperatures(&v) {
            Ok(t) => t,
            Err(resp) => return resp,
        };

        // The curve is a pure function of (artifact, T-grid): key the
        // cache on the exact bit patterns so distinct grids never
        // collide and identical grids always hit.
        let mut key = artifact.manifest.id.clone();
        for t in &temps {
            key.push_str(&format!("|{:016x}", t.to_bits()));
        }
        // Single-flight fill: under a cold-key stampede, one caller
        // evaluates the curve while every concurrent twin parks on the
        // flight and shares the body — `thermo_evaluations` counts
        // actual evaluations, which the E14 gate pins to one per key.
        let (result, outcome) = self.cache.get_or_fill(&key, || {
            self.metrics.counter("thermo_evaluations").inc();
            let (energies, ln_g) = artifact.visited_dos();
            let curve = try_canonical_curve(&energies, &ln_g, &temps, KB_EV_PER_K)
                .map_err(|e| Response::error(422, &e.to_string()))?;
            Ok(thermo_body(&artifact.manifest.id, &curve))
        });
        let cache_state = match outcome {
            FillOutcome::Hit => {
                self.metrics.counter("thermo_cache_hits").inc();
                "hit"
            }
            FillOutcome::Miss => {
                self.metrics.counter("thermo_cache_misses").inc();
                "miss"
            }
            FillOutcome::Coalesced => {
                self.metrics.counter("thermo_coalesced").inc();
                "coalesced"
            }
        };
        match result {
            Ok(body) => {
                let mut resp = Response::json(200, body);
                resp.extra_headers
                    .push(("x-cache", cache_state.to_string()));
                resp
            }
            Err(resp) => resp,
        }
    }

    fn sro(&self, body: &[u8]) -> Response {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let artifact = match self.lookup_artifact(&v) {
            Ok(a) => a,
            Err(resp) => return resp,
        };
        let Some(sro) = &artifact.sro else {
            return Response::error(422, "artifact has no SRO accumulator");
        };
        let temps = match requested_temperatures(&v) {
            Ok(t) => t,
            Err(resp) => return resp,
        };
        let m = artifact.manifest.species.len();
        if m == 0 || sro.obs_dim() % (m * m) != 0 {
            return Response::error(
                422,
                "artifact SRO accumulator is not shaped num_shells x m x m",
            );
        }
        let num_shells = sro.obs_dim() / (m * m);
        let fractions = artifact.manifest.fractions();
        let (grid_energies, grid_ln_g) = artifact.grid_dos_masked();

        let mut body = String::from("{\"artifact\":");
        push_json_string(&mut body, &artifact.manifest.id);
        body.push_str(",\"species\":[");
        for (i, s) in artifact.manifest.species.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_json_string(&mut body, s);
        }
        body.push_str(&format!(
            "],\"num_species\":{m},\"num_shells\":{num_shells},\"temperatures\":["
        ));
        for (i, t) in temps.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_f64(&mut body, *t);
        }
        // Flat shell-major layout: index = shell*m*m + a*m + b.
        body.push_str("],\"pair_probabilities\":[");
        let mut alphas = String::new();
        for (ti, &t) in temps.iter().enumerate() {
            let beta = 1.0 / (KB_EV_PER_K * t);
            let mean = sro.canonical_average(&grid_energies, &grid_ln_g, beta);
            if ti > 0 {
                body.push(',');
                alphas.push(',');
            }
            body.push('[');
            alphas.push('[');
            for (i, &p) in mean.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                    alphas.push(',');
                }
                push_f64(&mut body, p);
                let (a, b) = ((i / m) % m, i % m);
                push_f64(&mut alphas, 1.0 - p / (fractions[a] * fractions[b]));
            }
            body.push(']');
            alphas.push(']');
        }
        body.push_str("],\"warren_cowley\":[");
        body.push_str(&alphas);
        body.push_str("]}");
        Response::json(200, body)
    }

    fn predict(&self, body: &[u8]) -> Response {
        let v = match parse_body(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let artifact = match self.lookup_artifact(&v) {
            Ok(a) => a,
            Err(resp) => return resp,
        };
        let Some(model) = self.surrogates.get(&artifact.manifest.id) else {
            return Response::error(422, "artifact has no surrogate model");
        };
        let dim = model.descriptor().dim();
        let Some(rows) = v.get("features").and_then(JsonValue::as_array) else {
            return Response::error(400, "missing \"features\" array of feature rows");
        };
        if rows.is_empty() {
            return Response::error(422, "\"features\" must be non-empty");
        }
        if rows.len() > MAX_PREDICT_ROWS {
            return Response::error(
                422,
                &format!("at most {MAX_PREDICT_ROWS} feature rows per request"),
            );
        }
        let mut features = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            let Some(row) = row.as_array() else {
                return Response::error(422, &format!("feature row {i} is not an array"));
            };
            if row.len() != dim {
                return Response::error(
                    422,
                    &format!(
                        "feature row {i} has {} values, descriptor needs {dim}",
                        row.len()
                    ),
                );
            }
            for value in row {
                match value.as_f64().filter(|x| x.is_finite()) {
                    Some(x) => features.push(x),
                    None => {
                        return Response::error(
                            422,
                            &format!("feature row {i} contains a non-finite value"),
                        )
                    }
                }
            }
        }
        // One batched forward over every requested row through the same
        // batch-first `Mlp::forward_into` surface the samplers use, so a
        // request is a single rows×dim matmul chain regardless of count.
        let mut scratch = model.forward_scratch(rows.len());
        let mut preds = Vec::with_capacity(rows.len());
        model.predict_rows_with(&features, rows.len(), &mut scratch, &mut preds);
        self.metrics
            .counter("predict_rows_total")
            .add(preds.len() as u64);

        let mut body = String::from("{\"artifact\":");
        push_json_string(&mut body, &artifact.manifest.id);
        body.push_str(&format!(",\"count\":{},\"per_site_energy\":[", preds.len()));
        for (i, p) in preds.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            push_f64(&mut body, *p);
        }
        body.push_str("]}");
        Response::json(200, body)
    }

    fn lookup_artifact(&self, v: &JsonValue) -> Result<&Artifact, Response> {
        let id = v
            .get("artifact")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| Response::error(400, "missing string field \"artifact\""))?;
        self.registry
            .get(id)
            .ok_or_else(|| Response::error(404, &format!("unknown artifact {id:?}")))
    }
}

fn latency_name(endpoint: &str) -> &'static str {
    match endpoint {
        "healthz" => "latency_healthz_ns",
        "metrics" => "latency_metrics_ns",
        "artifacts" => "latency_artifacts_ns",
        "thermo" => "latency_thermo_ns",
        "sro" => "latency_sro_ns",
        "predict" => "latency_predict_ns",
        "shutdown" => "latency_shutdown_ns",
        _ => "latency_other_ns",
    }
}

fn parse_body(body: &[u8]) -> Result<JsonValue, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    parse_json(text).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

/// The request's temperature grid: an explicit `"temperatures"` array,
/// or `t_min`/`t_max`/`num_t` expanded exactly like the CLI does (so a
/// served curve matches an offline `temperature_grid` evaluation
/// bit-for-bit).
fn requested_temperatures(v: &JsonValue) -> Result<Vec<f64>, Response> {
    if let Some(arr) = v.get("temperatures").and_then(JsonValue::as_array) {
        if arr.is_empty() {
            return Err(Response::error(422, "\"temperatures\" must be non-empty"));
        }
        if arr.len() > MAX_TEMPERATURES {
            return Err(Response::error(
                422,
                &format!("at most {MAX_TEMPERATURES} temperatures per request"),
            ));
        }
        arr.iter()
            .map(|e| {
                e.as_f64()
                    .filter(|t| t.is_finite() && *t > 0.0)
                    .ok_or_else(|| {
                        Response::error(422, "temperatures must be positive finite numbers")
                    })
            })
            .collect()
    } else {
        let num = |key: &str| {
            v.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                Response::error(
                    400,
                    &format!("missing numeric \"{key}\" (or a \"temperatures\" array)"),
                )
            })
        };
        let t_min = num("t_min")?;
        let t_max = num("t_max")?;
        let n = v.get("num_t").and_then(JsonValue::as_u64).ok_or_else(|| {
            Response::error(
                400,
                "missing integer \"num_t\" (or a \"temperatures\" array)",
            )
        })? as usize;
        if n > MAX_TEMPERATURES {
            return Err(Response::error(
                422,
                &format!("at most {MAX_TEMPERATURES} temperatures per request"),
            ));
        }
        dt_thermo::try_temperature_grid(t_min, t_max, n)
            .map_err(|e| Response::error(422, &e.to_string()))
    }
}

/// Serialize a thermo curve. `f64` values are written in Rust's
/// shortest-round-trip form, so a client parsing them with a correct
/// `f64` parser recovers the exact bits `canonical_curve` produced.
fn thermo_body(id: &str, curve: &[ThermoPoint]) -> String {
    let mut body = String::from("{\"artifact\":");
    push_json_string(&mut body, id);
    body.push_str(",\"kb_ev_per_k\":");
    push_f64(&mut body, KB_EV_PER_K);
    let series = |out: &mut String, name: &str, get: fn(&ThermoPoint) -> f64| {
        out.push_str(",\"");
        out.push_str(name);
        out.push_str("\":[");
        for (i, p) in curve.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(out, get(p));
        }
        out.push(']');
    };
    series(&mut body, "temperatures", |p| p.t);
    series(&mut body, "u", |p| p.u);
    series(&mut body, "cv", |p| p.cv);
    series(&mut body, "f", |p| p.f);
    series(&mut body, "s", |p| p.s);
    body.push('}');
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::fixture_artifact;

    fn state() -> AppState {
        let mut registry = ArtifactRegistry::new();
        registry.insert(fixture_artifact("api"));
        AppState::new(registry, 32).unwrap()
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".into(),
            target: target.into(),
            http11: true,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            target: target.into(),
            http11: true,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn header<'a>(resp: &'a Response, name: &str) -> Option<&'a str> {
        resp.extra_headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn healthz_and_artifacts_are_valid_json() {
        let st = state();
        let resp = st.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        let v = parse_json(&resp.body).unwrap();
        assert_eq!(v.get("status").and_then(JsonValue::as_str), Some("ok"));
        assert_eq!(v.get("artifacts").and_then(JsonValue::as_u64), Some(1));

        let resp = st.handle(&get("/v1/artifacts"));
        assert_eq!(resp.status, 200);
        let v = parse_json(&resp.body).unwrap();
        let arts = v.get("artifacts").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arts.len(), 1);
        let manifest = arts[0].get("manifest").unwrap();
        assert_eq!(
            manifest.get("id").and_then(JsonValue::as_str),
            Some("fixture-api")
        );
        assert_eq!(
            arts[0].get("has_sro").and_then(JsonValue::as_bool),
            Some(true)
        );
    }

    #[test]
    fn thermo_curve_is_bit_identical_to_direct_evaluation() {
        let st = state();
        let resp = st.handle(&post(
            "/v1/thermo",
            "{\"artifact\":\"fixture-api\",\"t_min\":300,\"t_max\":3000,\"num_t\":20}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(header(&resp, "x-cache"), Some("miss"));
        let v = parse_json(&resp.body).unwrap();

        let art = fixture_artifact("api");
        let (e, lg) = art.visited_dos();
        let temps = dt_thermo::temperature_grid(300.0, 3000.0, 20);
        let direct = dt_thermo::canonical_curve(&e, &lg, &temps, KB_EV_PER_K);

        let series = |name: &str| -> Vec<u64> {
            v.get(name)
                .and_then(JsonValue::as_array)
                .unwrap()
                .iter()
                .map(|x| x.as_f64().unwrap().to_bits())
                .collect()
        };
        let bits = |get: fn(&ThermoPoint) -> f64| -> Vec<u64> {
            direct.iter().map(|p| get(p).to_bits()).collect()
        };
        assert_eq!(series("temperatures"), bits(|p| p.t));
        assert_eq!(series("u"), bits(|p| p.u));
        assert_eq!(series("cv"), bits(|p| p.cv));
        assert_eq!(series("f"), bits(|p| p.f));
        assert_eq!(series("s"), bits(|p| p.s));
    }

    #[test]
    fn thermo_cache_hits_serve_identical_bodies() {
        let st = state();
        let req = post(
            "/v1/thermo",
            "{\"artifact\":\"fixture-api\",\"temperatures\":[500,1000,1500]}",
        );
        let miss = st.handle(&req);
        assert_eq!(header(&miss, "x-cache"), Some("miss"));
        let hit = st.handle(&req);
        assert_eq!(header(&hit, "x-cache"), Some("hit"));
        assert_eq!(miss.body, hit.body, "cache must not alter the body");
        // A different grid is a different cache key.
        let other = st.handle(&post(
            "/v1/thermo",
            "{\"artifact\":\"fixture-api\",\"temperatures\":[500,1000,1501]}",
        ));
        assert_eq!(header(&other, "x-cache"), Some("miss"));
        assert_eq!(st.metrics.counter("thermo_cache_hits").get(), 1);
        assert_eq!(st.metrics.counter("thermo_cache_misses").get(), 2);
    }

    #[test]
    fn sro_reports_pair_probabilities_and_warren_cowley() {
        let st = state();
        let resp = st.handle(&post(
            "/v1/sro",
            "{\"artifact\":\"fixture-api\",\"temperatures\":[800,1600]}",
        ));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = parse_json(&resp.body).unwrap();
        assert_eq!(v.get("num_species").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("num_shells").and_then(JsonValue::as_u64), Some(2));
        let probs = v
            .get("pair_probabilities")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(probs.len(), 2);
        let row = probs[0].as_array().unwrap();
        assert_eq!(row.len(), 2 * 16);
        let total: f64 = row[..16].iter().map(|x| x.as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9, "shell probabilities sum to 1");
        let wc = v
            .get("warren_cowley")
            .and_then(JsonValue::as_array)
            .unwrap();
        // The fixture orders Mo–Ta at low T: alpha(Mo,Ta) < 0 in shell 0.
        let alpha_mo_ta = wc[0].as_array().unwrap()[6].as_f64().unwrap();
        assert!(alpha_mo_ta < 0.0, "alpha(Mo,Ta) = {alpha_mo_ta}");
    }

    #[test]
    fn predict_batches_through_the_surrogate() {
        let st = state();
        let art = fixture_artifact("api");
        let model = SurrogateModel::load(art.surrogate_text.as_deref().unwrap()).unwrap();
        let dim = model.descriptor().dim();
        let row: Vec<String> = (0..dim).map(|i| format!("{}", 0.1 * i as f64)).collect();
        let body = format!(
            "{{\"artifact\":\"fixture-api\",\"features\":[[{r}],[{r}]]}}",
            r = row.join(",")
        );
        let resp = st.handle(&post("/v1/predict", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = parse_json(&resp.body).unwrap();
        let preds = v
            .get("per_site_energy")
            .and_then(JsonValue::as_array)
            .unwrap();
        assert_eq!(preds.len(), 2);
        let features: Vec<f64> = (0..dim).map(|i| 0.1 * i as f64).collect();
        let direct = model.predict_features(&features);
        assert_eq!(preds[0].as_f64().unwrap().to_bits(), direct.to_bits());
        assert_eq!(preds[1].as_f64().unwrap().to_bits(), direct.to_bits());
        assert_eq!(st.metrics.counter("predict_rows_total").get(), 2);
    }

    #[test]
    fn client_errors_are_4xx_never_panics() {
        let st = state();
        let cases = [
            (post("/v1/thermo", "not json at all"), 400),
            (post("/v1/thermo", "{\"artifact\":\"fixture-api\"}"), 400),
            (
                post(
                    "/v1/thermo",
                    "{\"artifact\":\"nope\",\"temperatures\":[500]}",
                ),
                404,
            ),
            (
                post(
                    "/v1/thermo",
                    "{\"artifact\":\"fixture-api\",\"temperatures\":[]}",
                ),
                422,
            ),
            (
                post(
                    "/v1/thermo",
                    "{\"artifact\":\"fixture-api\",\"temperatures\":[-5]}",
                ),
                422,
            ),
            (
                post(
                    "/v1/thermo",
                    "{\"artifact\":\"fixture-api\",\"t_min\":900,\"t_max\":300,\"num_t\":5}",
                ),
                422,
            ),
            (
                post(
                    "/v1/predict",
                    "{\"artifact\":\"fixture-api\",\"features\":[[1]]}",
                ),
                422,
            ),
            (
                post(
                    "/v1/predict",
                    "{\"artifact\":\"fixture-api\",\"features\":[]}",
                ),
                422,
            ),
            (get("/nope"), 404),
            (post("/healthz", ""), 405),
            (get("/v1/thermo"), 405),
        ];
        for (req, want) in cases {
            let resp = st.handle(&req);
            assert_eq!(
                resp.status, want,
                "{} {} -> {}",
                req.method, req.target, resp.body
            );
            let v = parse_json(&resp.body).unwrap();
            assert!(v.get("error").is_some(), "error body: {}", resp.body);
        }
        assert_eq!(st.metrics.counter("responses_5xx").get(), 0);
    }

    #[test]
    fn metrics_snapshot_is_valid_json_with_latency() {
        let st = state();
        st.handle(&get("/healthz"));
        st.handle(&post(
            "/v1/thermo",
            "{\"artifact\":\"fixture-api\",\"temperatures\":[1000]}",
        ));
        let resp = st.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        let v = parse_json(&resp.body).unwrap();
        let counters = v.get("counters").unwrap();
        assert!(counters.get("requests_total").and_then(JsonValue::as_u64) >= Some(2));
        let latency = v.get("latency").unwrap();
        let thermo = latency.get("latency_thermo_ns").unwrap();
        assert_eq!(thermo.get("count").and_then(JsonValue::as_u64), Some(1));
        assert!(v.get("cache").unwrap().get("capacity").is_some());
    }

    #[test]
    fn shutdown_endpoint_flips_the_drain_flag() {
        let st = state();
        assert!(!st.shutdown_requested());
        let resp = st.handle(&post("/v1/shutdown", ""));
        assert_eq!(resp.status, 200);
        assert!(st.shutdown_requested());
        let health = st.handle(&get("/healthz"));
        let v = parse_json(&health.body).unwrap();
        assert_eq!(
            v.get("status").and_then(JsonValue::as_str),
            Some("draining")
        );
    }

    #[test]
    fn shutdown_returns_a_drain_summary_body() {
        let st = state();
        st.handle(&post(
            "/v1/thermo",
            "{\"artifact\":\"fixture-api\",\"temperatures\":[1000]}",
        ));
        let resp = st.handle(&post("/v1/shutdown", ""));
        assert_eq!(resp.status, 200);
        let v = parse_json(&resp.body).unwrap();
        assert_eq!(
            v.get("status").and_then(JsonValue::as_str),
            Some("draining")
        );
        // The summary snapshots the lifetime counters at drain start.
        assert!(v.get("requests_total").and_then(JsonValue::as_u64) >= Some(1));
        assert_eq!(
            v.get("thermo_cache_misses").and_then(JsonValue::as_u64),
            Some(1)
        );
        assert!(v.get("uptime_s").and_then(JsonValue::as_f64).is_some());
    }

    #[test]
    fn cold_key_stampede_evaluates_exactly_once() {
        use std::sync::{Arc, Barrier};
        const REQUESTERS: usize = 64;
        let st = Arc::new(state());
        let start = Arc::new(Barrier::new(REQUESTERS));
        let handles: Vec<_> = (0..REQUESTERS)
            .map(|_| {
                let st = Arc::clone(&st);
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    start.wait();
                    st.handle(&post(
                        "/v1/thermo",
                        "{\"artifact\":\"fixture-api\",\"t_min\":300,\"t_max\":3000,\"num_t\":512}",
                    ))
                })
            })
            .collect();
        let mut bodies = std::collections::HashSet::new();
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.status, 200);
            bodies.insert(resp.body);
        }
        assert_eq!(bodies.len(), 1, "every requester got the same body");
        // The single-flight gate: one evaluation, no matter how many
        // concurrent cold requesters.
        assert_eq!(st.metrics.counter("thermo_evaluations").get(), 1);
        assert_eq!(
            st.metrics.counter("thermo_cache_misses").get()
                + st.metrics.counter("thermo_cache_hits").get()
                + st.metrics.counter("thermo_coalesced").get(),
            REQUESTERS as u64
        );
    }
}
