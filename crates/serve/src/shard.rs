//! A shard process: one slice of the registry served over the dt-hpc
//! mesh.
//!
//! The fleet reuses the cluster transport instead of inventing a second
//! RPC stack: the router is rank 0 and every shard is a rank `1..=N` of
//! an `(N+1)`-size [`TcpTransport`] bootstrapped through the same
//! [`dt_hpc::TcpRendezvous`] the REWL driver uses. Shard registration
//! *is* rendezvous (the mesh forms when all ranks connect), liveness
//! *is* the transport's EOF/heartbeat detection, and the router→shard
//! hop rides the existing framed wire codec.
//!
//! On startup a shard loads the full registry directory, builds the
//! same [`HashRing`] as the router, and retains only the artifacts the
//! ring assigns to it — shard `i` is rank `i+1` and owns exactly the
//! ids with `ring.shard_for(id) == i`, so the fleet partitions the
//! registry with no coordination beyond the shard count.
//!
//! The RPC protocol is deliberately small:
//!
//! * request — tag `TAG_REQ` (bit 62), payload
//!   `[req_id:u64][op:u8][raw]`, where `op` is `OP_HTTP` (raw = a
//!   serialized HTTP request) or `OP_DRAIN` (raw empty);
//! * response — tag `req_id`, payload an encoded [`Response`]. Request
//!   ids stay below bit 62, so they can never collide with `TAG_REQ`
//!   or the transport's collective tag bit.

use std::io::Read;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dt_hpc::{CommError, TcpTransport, Transport};

use crate::api::AppState;
use crate::artifact::ArtifactRegistry;
use crate::http::{try_parse_request, Response};
use crate::ring::HashRing;
use crate::ServeError;

/// Tag carrying router→shard requests. Sits below the transport's
/// collective bit (`1 << 63`) and above every request id.
pub(crate) const TAG_REQ: u64 = 1 << 62;
/// Request op: the payload tail is a serialized HTTP request.
pub(crate) const OP_HTTP: u8 = 0;
/// Request op: drain — finish queued work, reply with a drain summary,
/// exit.
pub(crate) const OP_DRAIN: u8 = 1;

/// Frame a router→shard request.
pub(crate) fn encode_rpc(req_id: u64, op: u8, raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + raw.len());
    out.extend_from_slice(&req_id.to_le_bytes());
    out.push(op);
    out.extend_from_slice(raw);
    out
}

/// Split a router→shard request frame into `(req_id, op, raw)`.
pub(crate) fn decode_rpc(payload: &[u8]) -> Option<(u64, u8, &[u8])> {
    if payload.len() < 9 {
        return None;
    }
    let req_id = u64::from_le_bytes(payload[..8].try_into().ok()?);
    Some((req_id, payload[8], &payload[9..]))
}

/// Encode a [`Response`] for the shard→router hop:
/// `[status:u16][ct_len:u16][ct][n_extra:u16]([k_len:u16][k][v_len:u16][v])*[body]`.
pub(crate) fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + resp.body.len());
    out.extend_from_slice(&resp.status.to_le_bytes());
    let ct = resp.content_type.as_bytes();
    out.extend_from_slice(&(ct.len() as u16).to_le_bytes());
    out.extend_from_slice(ct);
    out.extend_from_slice(&(resp.extra_headers.len() as u16).to_le_bytes());
    for (k, v) in &resp.extra_headers {
        out.extend_from_slice(&(k.len() as u16).to_le_bytes());
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(&(v.len() as u16).to_le_bytes());
        out.extend_from_slice(v.as_bytes());
    }
    out.extend_from_slice(resp.body.as_bytes());
    out
}

/// [`Response`] carries `&'static` names; map decoded strings back onto
/// the fixed vocabulary this service actually emits. Unknown names fall
/// back to a safe default (content type) or are dropped (headers).
fn intern_content_type(ct: &str) -> &'static str {
    match ct {
        "application/json" => "application/json",
        _ => "text/plain",
    }
}

fn intern_header_key(k: &str) -> Option<&'static str> {
    match k {
        "x-cache" => Some("x-cache"),
        "x-shard" => Some("x-shard"),
        "retry-after" => Some("retry-after"),
        _ => None,
    }
}

/// Decode a shard→router response frame; `None` when truncated.
pub(crate) fn decode_response(payload: &[u8]) -> Option<Response> {
    fn take_u16(cur: &mut &[u8]) -> Option<usize> {
        let mut b = [0u8; 2];
        cur.read_exact(&mut b).ok()?;
        Some(usize::from(u16::from_le_bytes(b)))
    }
    fn take_str(cur: &mut &[u8], len: usize) -> Option<String> {
        let mut b = vec![0u8; len];
        cur.read_exact(&mut b).ok()?;
        String::from_utf8(b).ok()
    }
    let mut cur = payload;
    let status = take_u16(&mut cur)? as u16;
    let ct_len = take_u16(&mut cur)?;
    let ct = take_str(&mut cur, ct_len)?;
    let n_extra = take_u16(&mut cur)?;
    let mut extra_headers = Vec::new();
    for _ in 0..n_extra {
        let k_len = take_u16(&mut cur)?;
        let k = take_str(&mut cur, k_len)?;
        let v_len = take_u16(&mut cur)?;
        let v = take_str(&mut cur, v_len)?;
        if let Some(k) = intern_header_key(&k) {
            extra_headers.push((k, v));
        }
    }
    Some(Response {
        status,
        body: String::from_utf8(cur.to_vec()).ok()?,
        content_type: intern_content_type(&ct),
        extra_headers,
    })
}

/// Tuning for one shard process.
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Worker threads evaluating requests (default 2).
    pub workers: usize,
    /// `/v1/thermo` response cache capacity (default 256).
    pub cache_capacity: usize,
    /// Largest accepted request body in bytes (default 1 MiB).
    pub max_body_bytes: usize,
    /// Chaos hook: when this flag flips, the dispatcher exits abruptly
    /// — no drain, no reply — as if the process were killed. The
    /// transport teardown is what the router's liveness then observes.
    pub kill: Option<Arc<AtomicBool>>,
}

impl ShardConfig {
    fn workers(&self) -> usize {
        if self.workers == 0 {
            2
        } else {
            self.workers
        }
    }
    fn cache_capacity(&self) -> usize {
        if self.cache_capacity == 0 {
            256
        } else {
            self.cache_capacity
        }
    }
    fn max_body_bytes(&self) -> usize {
        if self.max_body_bytes == 0 {
            1 << 20
        } else {
            self.max_body_bytes
        }
    }
}

/// What one shard did over its lifetime, reported when it exits.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Artifacts this shard owned (its ring slice of the registry).
    pub artifacts: usize,
    /// Requests handled to completion (any status).
    pub requests_handled: u64,
    /// Requests whose handler panicked (answered `500`).
    pub handler_panics: u64,
}

/// Serve this rank's slice of `registry` over `transport` until the
/// router drains us, dies, or the chaos kill flag flips.
///
/// `transport` must be a connected fleet mesh with this shard at rank
/// `>= 1`; rank 0 is the router. The full registry is passed in and
/// sliced here — every shard runs the identical deterministic
/// [`HashRing`], so the slices are disjoint and cover every id.
///
/// # Errors
/// [`ServeError::BadConfig`] when called on rank 0, or any
/// [`AppState::new`] error from the sliced registry.
pub fn run_shard(
    transport: TcpTransport,
    mut registry: ArtifactRegistry,
    config: &ShardConfig,
) -> Result<ShardStats, ServeError> {
    let rank = transport.rank();
    if rank == 0 {
        return Err(ServeError::BadConfig(
            "rank 0 is the router, not a shard".into(),
        ));
    }
    let shards = transport.size() - 1;
    let ring = HashRing::new(shards);
    let shard_index = rank - 1;
    registry.retain(|id| ring.shard_for(id) == shard_index);
    let owned = registry.len();

    let state = Arc::new(AppState::new(registry, config.cache_capacity())?);
    let transport = Arc::new(transport);
    let max_body = config.max_body_bytes();

    // Same worker-pool shape as the HTTP engine, minus the sockets: the
    // dispatcher feeds parsed-enough jobs to workers, workers answer
    // straight onto the transport (sends are thread-safe and buffered).
    let (tx, rx) = crossbeam::channel::bounded::<(u64, Vec<u8>)>(1024);
    let mut workers = Vec::with_capacity(config.workers());
    for _ in 0..config.workers() {
        let rx = rx.clone();
        let state = Arc::clone(&state);
        let transport = Arc::clone(&transport);
        workers.push(std::thread::spawn(move || {
            while let Ok((req_id, raw)) = rx.recv() {
                let resp = answer(&state, &raw, max_body);
                transport.send(0, req_id, encode_response(&resp), None);
            }
        }));
    }
    drop(rx);

    loop {
        if let Some(kill) = &config.kill {
            if kill.load(Ordering::SeqCst) {
                // Abrupt death: drop everything without replying. The
                // workers exit on channel disconnect; dropping the last
                // transport handle tears the sockets down, which is how
                // the router learns this slice is gone.
                drop(tx);
                for w in workers {
                    let _ = w.join();
                }
                break;
            }
        }
        match transport.recv_timeout(0, TAG_REQ, Duration::from_millis(100)) {
            Ok(payload) => {
                let Some((req_id, op, raw)) = decode_rpc(&payload) else {
                    continue; // undecodable frame: drop it
                };
                match op {
                    OP_DRAIN => {
                        state.request_shutdown();
                        drop(tx);
                        // Everything already queued is answered first;
                        // the drain summary is the last frame out.
                        for w in workers {
                            let _ = w.join();
                        }
                        let summary = Response::json(200, state.drain_summary());
                        transport.send(0, req_id, encode_response(&summary), None);
                        break;
                    }
                    _ => {
                        let _ = tx.send((req_id, raw.to_vec()));
                    }
                }
            }
            // Quiet interval: keep serving while the router lives.
            Err(CommError::Timeout { .. }) if transport.is_alive(0) => continue,
            // Router gone (EOF or heartbeat miss): nothing left to serve.
            Err(_) => {
                drop(tx);
                for w in workers {
                    let _ = w.join();
                }
                break;
            }
        }
    }

    Ok(ShardStats {
        artifacts: owned,
        requests_handled: state.metrics.counter("requests_total").get(),
        handler_panics: state.metrics.counter("handler_panics").get(),
    })
}

/// Parse the forwarded wire bytes and run the handler, mapping parse
/// failures and panics to error responses exactly like the HTTP engine.
fn answer(state: &Arc<AppState>, raw: &[u8], max_body: usize) -> Response {
    let req = match try_parse_request(raw, max_body) {
        Ok(Some((req, _))) => req,
        Ok(None) => return Response::error(400, "truncated forwarded request"),
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let state2 = Arc::clone(state);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || state2.handle(&req))) {
        Ok(resp) => resp,
        Err(_) => {
            state.metrics.counter("handler_panics").inc();
            Response::error(500, "handler panicked")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_frames_round_trip() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let frame = encode_rpc(42, OP_HTTP, raw);
        let (id, op, body) = decode_rpc(&frame).unwrap();
        assert_eq!((id, op), (42, OP_HTTP));
        assert_eq!(body, raw);
        assert_eq!(decode_rpc(&frame[..5]), None);
    }

    #[test]
    fn responses_round_trip_with_interned_names() {
        let mut resp = Response::json(200, "{\"ok\":true}");
        resp.extra_headers.push(("x-cache", "hit".to_string()));
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.body, "{\"ok\":true}");
        assert_eq!(back.content_type, "application/json");
        assert_eq!(back.extra_headers, vec![("x-cache", "hit".to_string())]);
    }

    #[test]
    fn unknown_header_names_are_dropped_not_corrupted() {
        // Hand-build a frame carrying a header name this build does not
        // intern; the decoder must drop it and keep the rest intact.
        let mut wire = Vec::new();
        wire.extend_from_slice(&503u16.to_le_bytes());
        let ct = b"application/json";
        wire.extend_from_slice(&(ct.len() as u16).to_le_bytes());
        wire.extend_from_slice(ct);
        wire.extend_from_slice(&1u16.to_le_bytes());
        let (k, v) = (b"x-mystery".as_slice(), b"1".as_slice());
        wire.extend_from_slice(&(k.len() as u16).to_le_bytes());
        wire.extend_from_slice(k);
        wire.extend_from_slice(&(v.len() as u16).to_le_bytes());
        wire.extend_from_slice(v);
        wire.extend_from_slice(b"{}");
        let back = decode_response(&wire).unwrap();
        assert_eq!(back.status, 503);
        assert!(back.extra_headers.is_empty());
        assert_eq!(back.body, "{}");
        // And truncation decodes to None, never a panic.
        for cut in 0..4 {
            assert!(decode_response(&wire[..cut]).is_none());
        }
    }
}
