//! The on-disk artifact registry.
//!
//! One artifact is one converged sampling run, stored as a directory:
//!
//! ```text
//! <registry>/<artifact-id>/
//!   manifest.json      # identity + provenance (human-readable)
//!   dos.dat            # "dtdos v1": energy grid + per-bin ln g and mask
//!   sro.dat            # "dtsro v1": microcanonical accumulator (optional)
//!   surrogate.dtsur    # serialized SurrogateModel (optional)
//! ```
//!
//! Floating-point payloads in `dos.dat` / `sro.dat` are written as
//! hexadecimal `f64` bit patterns — decimal round-tripping is *almost*
//! exact in Rust, but the registry's contract is stronger: a thermo
//! curve served from a loaded artifact must be **bit-identical** to one
//! evaluated on the producing run's in-memory data. The manifest stays
//! plain JSON because humans read it.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use dt_telemetry::{parse_json, push_json_string, JsonValue};
use dt_thermo::MicrocanonicalAccumulator;
use dt_wanglandau::EnergyGrid;

use crate::ServeError;

/// Identity and provenance of one converged run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactManifest {
    /// Registry key, e.g. `"nbmotaw-l3-seed2023"`.
    pub id: String,
    /// Material name, e.g. `"NbMoTaW"`.
    pub material: String,
    /// Material-registry key of the producing run (e.g. `"nbmotaw"`,
    /// `"crconi"`), so one serving fleet can host several alloys side by
    /// side and clients can filter `/v1/artifacts` by system. Empty for
    /// artifacts written before the material layer existed.
    pub material_key: String,
    /// Lattice structure name: `"bcc"`, `"fcc"`, or `"sc"`.
    pub structure: String,
    /// Supercell edge length (unit cells).
    pub l: usize,
    /// Number of lattice sites.
    pub num_sites: usize,
    /// Species names, index-aligned with the run's species set.
    pub species: Vec<String>,
    /// Per-species site counts (fractions follow by division).
    pub counts: Vec<usize>,
    /// Master RNG seed of the producing run.
    pub seed: u64,
    /// Neighbor shells the energy model used.
    pub num_shells: usize,
    /// Sweeps per walker the run executed.
    pub sweeps: u64,
    /// Whether every walker converged.
    pub converged: bool,
}

impl ArtifactManifest {
    /// The conventional registry key for a run: `material-lN-seedS`,
    /// lowercased.
    pub fn conventional_id(material: &str, l: usize, seed: u64) -> String {
        format!("{}-l{l}-seed{seed}", material.to_lowercase())
    }

    /// Per-species fractions.
    pub fn fractions(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.num_sites.max(1) as f64)
            .collect()
    }

    /// Serialize as a JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let field = |out: &mut String, key: &str, first: bool| {
            if !first {
                out.push(',');
            }
            push_json_string(out, key);
            out.push(':');
        };
        field(&mut s, "id", true);
        push_json_string(&mut s, &self.id);
        field(&mut s, "material", false);
        push_json_string(&mut s, &self.material);
        field(&mut s, "material_key", false);
        push_json_string(&mut s, &self.material_key);
        field(&mut s, "structure", false);
        push_json_string(&mut s, &self.structure);
        field(&mut s, "l", false);
        s.push_str(&self.l.to_string());
        field(&mut s, "num_sites", false);
        s.push_str(&self.num_sites.to_string());
        field(&mut s, "species", false);
        s.push('[');
        for (i, name) in self.species.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_json_string(&mut s, name);
        }
        s.push(']');
        field(&mut s, "counts", false);
        s.push('[');
        for (i, c) in self.counts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push(']');
        field(&mut s, "seed", false);
        s.push_str(&self.seed.to_string());
        field(&mut s, "num_shells", false);
        s.push_str(&self.num_shells.to_string());
        field(&mut s, "sweeps", false);
        s.push_str(&self.sweeps.to_string());
        field(&mut s, "converged", false);
        s.push_str(if self.converged { "true" } else { "false" });
        s.push('}');
        s
    }

    /// Parse a manifest written by [`ArtifactManifest::to_json`].
    ///
    /// # Errors
    /// A human-readable description of the first missing or mistyped
    /// field.
    pub fn from_json(text: &str) -> Result<ArtifactManifest, String> {
        let v = parse_json(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let int_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        let species = v
            .get("species")
            .and_then(JsonValue::as_array)
            .ok_or("missing species array")?
            .iter()
            .map(|e| e.as_str().map(str::to_string).ok_or("non-string species"))
            .collect::<Result<Vec<_>, _>>()?;
        let counts = v
            .get("counts")
            .and_then(JsonValue::as_array)
            .ok_or("missing counts array")?
            .iter()
            .map(|e| {
                e.as_u64()
                    .map(|c| c as usize)
                    .ok_or("non-integer species count")
            })
            .collect::<Result<Vec<_>, _>>()?;
        if species.len() != counts.len() {
            return Err(format!(
                "species/counts length mismatch ({} vs {})",
                species.len(),
                counts.len()
            ));
        }
        Ok(ArtifactManifest {
            id: str_field("id")?,
            material: str_field("material")?,
            // Optional for artifacts written before the material layer.
            material_key: v
                .get("material_key")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
            structure: str_field("structure")?,
            l: int_field("l")? as usize,
            num_sites: int_field("num_sites")? as usize,
            species,
            counts,
            seed: int_field("seed")?,
            num_shells: int_field("num_shells")? as usize,
            sweeps: int_field("sweeps")?,
            converged: v
                .get("converged")
                .and_then(JsonValue::as_bool)
                .ok_or("missing or non-boolean field \"converged\"")?,
        })
    }
}

/// One converged run, loaded for serving: the manifest plus every
/// derived view the endpoints need precomputed.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Identity and provenance.
    pub manifest: ArtifactManifest,
    /// The energy grid the DOS is binned on.
    pub grid: EnergyGrid,
    /// Per-bin `ln g` over the full grid (unvisited bins hold whatever
    /// the producing run left there; consult `mask`).
    pub ln_g: Vec<f64>,
    /// Ever-visited mask, bin-aligned with `ln_g`.
    pub mask: Vec<bool>,
    /// Microcanonical SRO accumulator, when the run recorded one.
    pub sro: Option<MicrocanonicalAccumulator>,
    /// Serialized surrogate model text (`dtsur v1`), when present.
    pub surrogate_text: Option<String>,
}

impl Artifact {
    /// Visited `(energies, ln_g)` pairs — the exact inputs
    /// `DeepThermo::evaluate` feeds `canonical_curve`.
    pub fn visited_dos(&self) -> (Vec<f64>, Vec<f64>) {
        let mut energies = Vec::new();
        let mut ln_g = Vec::new();
        for (bin, &vis) in self.mask.iter().enumerate() {
            if vis {
                energies.push(self.grid.center(bin));
                ln_g.push(self.ln_g[bin]);
            }
        }
        (energies, ln_g)
    }

    /// Full-grid `(energies, ln_g)` with unvisited bins at `-inf` — the
    /// exact inputs the pipeline feeds `canonical_average` for SRO.
    pub fn grid_dos_masked(&self) -> (Vec<f64>, Vec<f64>) {
        let energies: Vec<f64> = (0..self.grid.num_bins())
            .map(|b| self.grid.center(b))
            .collect();
        let ln_g: Vec<f64> = (0..self.grid.num_bins())
            .map(|b| {
                if self.mask[b] {
                    self.ln_g[b]
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        (energies, ln_g)
    }

    /// Write this artifact into `registry_dir/<id>/`, creating or
    /// overwriting the directory. Returns the artifact directory.
    ///
    /// # Errors
    /// [`ServeError::Io`] when any file cannot be written.
    pub fn save(&self, registry_dir: impl AsRef<Path>) -> Result<PathBuf, ServeError> {
        let dir = registry_dir.as_ref().join(&self.manifest.id);
        let io_err = |path: &Path, e: std::io::Error| ServeError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;

        let manifest_path = dir.join("manifest.json");
        std::fs::write(&manifest_path, self.manifest.to_json())
            .map_err(|e| io_err(&manifest_path, e))?;

        let mut dos = String::from("dtdos v1\n");
        dos.push_str(&format!(
            "grid {:016x} {:016x} {}\n",
            self.grid.e_min().to_bits(),
            self.grid.e_max().to_bits(),
            self.grid.num_bins()
        ));
        for (bin, &lg) in self.ln_g.iter().enumerate() {
            dos.push_str(&format!(
                "{:016x} {}\n",
                lg.to_bits(),
                u8::from(self.mask[bin])
            ));
        }
        let dos_path = dir.join("dos.dat");
        std::fs::write(&dos_path, dos).map_err(|e| io_err(&dos_path, e))?;

        if let Some(sro) = &self.sro {
            let mut text = String::from("dtsro v1\n");
            text.push_str(&format!("shape {} {}\n", sro.num_bins(), sro.obs_dim()));
            for bin in 0..sro.num_bins() {
                let (sums, count) = sro.bin_data(bin);
                text.push_str(&count.to_string());
                for s in sums {
                    text.push_str(&format!(" {:016x}", s.to_bits()));
                }
                text.push('\n');
            }
            let sro_path = dir.join("sro.dat");
            std::fs::write(&sro_path, text).map_err(|e| io_err(&sro_path, e))?;
        }

        if let Some(text) = &self.surrogate_text {
            let sur_path = dir.join("surrogate.dtsur");
            std::fs::write(&sur_path, text).map_err(|e| io_err(&sur_path, e))?;
        }
        Ok(dir)
    }

    /// Load an artifact directory written by [`Artifact::save`].
    ///
    /// # Errors
    /// [`ServeError::Io`] for unreadable files, [`ServeError::BadArtifact`]
    /// for structurally invalid contents.
    pub fn load(dir: impl AsRef<Path>) -> Result<Artifact, ServeError> {
        let dir = dir.as_ref();
        let read = |name: &str| -> Result<String, ServeError> {
            let path = dir.join(name);
            std::fs::read_to_string(&path).map_err(|e| ServeError::Io {
                path,
                message: e.to_string(),
            })
        };
        let bad = |name: &str, what: String| ServeError::BadArtifact {
            path: dir.join(name),
            what,
        };

        let manifest = ArtifactManifest::from_json(&read("manifest.json")?)
            .map_err(|what| bad("manifest.json", what))?;

        let dos_text = read("dos.dat")?;
        let mut lines = dos_text.lines();
        if lines.next() != Some("dtdos v1") {
            return Err(bad("dos.dat", "bad header (want \"dtdos v1\")".into()));
        }
        let grid_line = lines
            .next()
            .ok_or_else(|| bad("dos.dat", "missing grid line".into()))?;
        let mut g = grid_line
            .strip_prefix("grid ")
            .ok_or_else(|| bad("dos.dat", "malformed grid line".into()))?
            .split_whitespace();
        let bits = |tok: Option<&str>, what: &str| -> Result<f64, ServeError> {
            tok.and_then(|t| u64::from_str_radix(t, 16).ok())
                .map(f64::from_bits)
                .ok_or_else(|| bad("dos.dat", format!("unparseable {what}")))
        };
        let e_min = bits(g.next(), "grid e_min")?;
        let e_max = bits(g.next(), "grid e_max")?;
        let num_bins: usize = g
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("dos.dat", "unparseable bin count".into()))?;
        let grid_ordered = e_max.partial_cmp(&e_min) == Some(std::cmp::Ordering::Greater);
        if !grid_ordered || num_bins == 0 {
            return Err(bad(
                "dos.dat",
                format!("degenerate grid [{e_min}, {e_max}] with {num_bins} bins"),
            ));
        }
        let grid = EnergyGrid::new(e_min, e_max, num_bins);
        let mut ln_g = Vec::with_capacity(num_bins);
        let mut mask = Vec::with_capacity(num_bins);
        for line in lines {
            let mut toks = line.split_whitespace();
            let lg = bits(toks.next(), "ln g bits")?;
            match toks.next() {
                Some("0") => mask.push(false),
                Some("1") => mask.push(true),
                _ => return Err(bad("dos.dat", "missing mask flag".into())),
            }
            ln_g.push(lg);
        }
        if ln_g.len() != num_bins {
            return Err(bad(
                "dos.dat",
                format!("expected {num_bins} bins, found {}", ln_g.len()),
            ));
        }

        let sro = match std::fs::read_to_string(dir.join("sro.dat")) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                return Err(ServeError::Io {
                    path: dir.join("sro.dat"),
                    message: e.to_string(),
                })
            }
            Ok(text) => {
                let mut lines = text.lines();
                if lines.next() != Some("dtsro v1") {
                    return Err(bad("sro.dat", "bad header (want \"dtsro v1\")".into()));
                }
                let shape = lines
                    .next()
                    .and_then(|l| l.strip_prefix("shape "))
                    .ok_or_else(|| bad("sro.dat", "missing shape line".into()))?;
                let mut s = shape.split_whitespace();
                let parse_dim = |tok: Option<&str>, what: &str| -> Result<usize, ServeError> {
                    tok.and_then(|t| t.parse().ok())
                        .filter(|&d: &usize| d > 0)
                        .ok_or_else(|| bad("sro.dat", format!("unparseable {what}")))
                };
                let bins = parse_dim(s.next(), "bin count")?;
                let obs_dim = parse_dim(s.next(), "observable dimension")?;
                let mut acc = MicrocanonicalAccumulator::new(bins, obs_dim);
                let mut seen = 0usize;
                for (bin, line) in lines.enumerate() {
                    if bin >= bins {
                        return Err(bad("sro.dat", "more rows than bins".into()));
                    }
                    let mut toks = line.split_whitespace();
                    let count: u64 = toks
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("sro.dat", "unparseable bin count".into()))?;
                    let mut sums = Vec::with_capacity(obs_dim);
                    for _ in 0..obs_dim {
                        sums.push(
                            toks.next()
                                .and_then(|t| u64::from_str_radix(t, 16).ok())
                                .map(f64::from_bits)
                                .ok_or_else(|| bad("sro.dat", "unparseable sum bits".into()))?,
                        );
                    }
                    acc.record_sum(bin, &sums, count);
                    seen += 1;
                }
                if seen != bins {
                    return Err(bad(
                        "sro.dat",
                        format!("expected {bins} rows, found {seen}"),
                    ));
                }
                Some(acc)
            }
        };

        let surrogate_text = match std::fs::read_to_string(dir.join("surrogate.dtsur")) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => {
                return Err(ServeError::Io {
                    path: dir.join("surrogate.dtsur"),
                    message: e.to_string(),
                })
            }
            Ok(text) => {
                // Validate eagerly so a corrupt model is a load-time
                // error, not a 500 on the first /v1/predict.
                dt_surrogate::SurrogateModel::load(&text)
                    .map_err(|e| bad("surrogate.dtsur", e.to_string()))?;
                Some(text)
            }
        };

        Ok(Artifact {
            manifest,
            grid,
            ln_g,
            mask,
            sro,
            surrogate_text,
        })
    }
}

/// Every artifact under one registry directory, loaded into memory and
/// keyed by artifact id.
#[derive(Debug, Clone, Default)]
pub struct ArtifactRegistry {
    artifacts: BTreeMap<String, Artifact>,
}

impl ArtifactRegistry {
    /// An empty in-memory registry (tests, fixtures).
    pub fn new() -> Self {
        ArtifactRegistry::default()
    }

    /// Load every artifact subdirectory of `dir`. Entries without a
    /// `manifest.json` are skipped (scratch files, editor droppings); a
    /// directory *with* a manifest that fails to load is an error.
    ///
    /// # Errors
    /// [`ServeError::Io`] when `dir` is unreadable, or any artifact
    /// load error.
    pub fn open(dir: impl AsRef<Path>) -> Result<ArtifactRegistry, ServeError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| ServeError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let mut registry = ArtifactRegistry::new();
        for entry in entries {
            let entry = entry.map_err(|e| ServeError::Io {
                path: dir.to_path_buf(),
                message: e.to_string(),
            })?;
            let path = entry.path();
            if !path.is_dir() || !path.join("manifest.json").is_file() {
                continue;
            }
            let artifact = Artifact::load(&path)?;
            registry.insert(artifact);
        }
        Ok(registry)
    }

    /// Add (or replace) an artifact under its manifest id.
    pub fn insert(&mut self, artifact: Artifact) {
        self.artifacts
            .insert(artifact.manifest.id.clone(), artifact);
    }

    /// The artifact with this id.
    pub fn get(&self, id: &str) -> Option<&Artifact> {
        self.artifacts.get(id)
    }

    /// All artifact ids, sorted.
    pub fn ids(&self) -> Vec<&str> {
        self.artifacts.keys().map(String::as_str).collect()
    }

    /// All artifacts, in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Artifact> {
        self.artifacts.values()
    }

    /// Keep only the artifacts whose id satisfies `keep` — how a shard
    /// restricts a fully loaded registry to its hash-ring slice.
    pub fn retain(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.artifacts.retain(|id, _| keep(id));
    }

    /// Number of artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dtserve-artifact-{tag}-{}", std::process::id()))
    }

    #[test]
    fn manifest_json_round_trips() {
        let m = fixture::fixture_artifact("rt").manifest;
        let back = ArtifactManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        dt_telemetry::validate_json(&m.to_json()).unwrap();
    }

    #[test]
    fn manifest_rejects_missing_fields() {
        assert!(ArtifactManifest::from_json("{}").is_err());
        assert!(ArtifactManifest::from_json("not json").is_err());
        let m = fixture::fixture_artifact("rj").manifest;
        let broken = m.to_json().replace("\"seed\"", "\"sneed\"");
        assert!(ArtifactManifest::from_json(&broken)
            .unwrap_err()
            .contains("seed"));
    }

    #[test]
    fn artifact_save_load_round_trips_bit_exactly() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let art = fixture::fixture_artifact("roundtrip");
        art.save(&dir).unwrap();
        let back = Artifact::load(dir.join(&art.manifest.id)).unwrap();
        assert_eq!(back.manifest, art.manifest);
        assert_eq!(back.mask, art.mask);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.ln_g), bits(&art.ln_g));
        assert_eq!(back.grid.e_min().to_bits(), art.grid.e_min().to_bits());
        assert_eq!(back.grid.e_max().to_bits(), art.grid.e_max().to_bits());
        assert_eq!(back.grid.num_bins(), art.grid.num_bins());
        // Accumulator round-trips through record_sum bit-exactly.
        let (a, b) = (art.sro.as_ref().unwrap(), back.sro.as_ref().unwrap());
        assert_eq!(a.num_bins(), b.num_bins());
        for bin in 0..a.num_bins() {
            let (sa, ca) = a.bin_data(bin);
            let (sb, cb) = b.bin_data(bin);
            assert_eq!(ca, cb);
            assert_eq!(bits(sa), bits(sb));
        }
        assert_eq!(back.surrogate_text, art.surrogate_text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_scans_a_directory_and_skips_strays() {
        let dir = tmp("scan");
        let _ = std::fs::remove_dir_all(&dir);
        let a = fixture::fixture_artifact("scan-a");
        let b = fixture::fixture_artifact("scan-b");
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        // Stray entries a registry must tolerate.
        std::fs::create_dir_all(dir.join("not-an-artifact")).unwrap();
        std::fs::write(dir.join("README.txt"), "scratch").unwrap();
        let reg = ArtifactRegistry::open(&dir).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get(&a.manifest.id).is_some());
        assert!(reg.get(&b.manifest.id).is_some());
        assert!(reg.get("unknown").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_artifacts_are_load_errors_not_panics() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let art = fixture::fixture_artifact("corrupt");
        let adir = art.save(&dir).unwrap();

        // Truncated DOS: bin count disagrees with rows.
        let dos = std::fs::read_to_string(adir.join("dos.dat")).unwrap();
        let truncated: Vec<&str> = dos.lines().take(5).collect();
        std::fs::write(adir.join("dos.dat"), truncated.join("\n")).unwrap();
        assert!(matches!(
            Artifact::load(&adir),
            Err(ServeError::BadArtifact { .. })
        ));

        // Bad header.
        std::fs::write(adir.join("dos.dat"), "nonsense\n").unwrap();
        assert!(matches!(
            Artifact::load(&adir),
            Err(ServeError::BadArtifact { .. })
        ));

        // A registry containing the corrupt artifact refuses to open.
        assert!(ArtifactRegistry::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
